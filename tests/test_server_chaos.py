"""Chaos tests for the analysis daemon over a real worker process pool.

The contract under fire: **every request gets a verdict or a typed error**
— never a hang, never a dropped connection, never an untyped traceback —
and every verdict the service produces is **identical to the offline batch
path** (``run_batch``), no matter which fault fired on the way: a worker
killed mid-request (failover retry), a deadline storm (typed exhaustion,
sessions stay usable), memory pressure forcing pool eviction (cold re-solve,
same answer), a program that crashes its worker on every attempt (circuit
breaker quarantines that hash while its neighbours keep being served).

These tests use ``workers >= 1`` throughout: real processes, real pipes,
real kills.  Driver-only daemon logic is covered in ``tests/test_service.py``.
"""

from __future__ import annotations

import asyncio
import json
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.algorithms import run_batch
from repro.parallel import BatchQuery
from repro.service import AnalysisDaemon, DaemonConfig
from repro.testing import FaultPlan, faults

POSITIVE = """
decl g;
main() begin
  g := T;
  if (g) then target: skip; fi
end
"""

NEGATIVE = """
decl g;
main() begin
  g := F;
  if (g) then target: skip; fi
end
"""

# A third distinct program so eviction scenarios have something to evict.
THIRD = """
decl g, h;
main() begin
  g := T;
  h := !g;
  if (h) then target: skip; fi
end
"""

PROGRAMS = {"pos": POSITIVE, "neg": NEGATIVE, "third": THIRD}


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    yield
    faults.clear()


def offline_verdicts():
    """The ground truth every service answer is compared against."""
    report = run_batch(
        [
            BatchQuery(name=name, program=source, target="main:target")
            for name, source in PROGRAMS.items()
        ],
        jobs=1,
    )
    assert not report.failures()
    return report.verdicts()


def query(name, **fields):
    request = {
        "op": "query",
        "program": PROGRAMS[name],
        "target": "main:target",
        "name": name,
    }
    request.update(fields)
    return request


async def _with_daemon(config, scenario):
    daemon = AnalysisDaemon(config)
    await daemon.start()
    try:
        return await scenario(daemon)
    finally:
        await daemon.shutdown(drain=False)


class TestWorkerKillFailover:
    def test_kill_mid_request_is_retried_with_identical_verdict(self, tmp_path):
        expected = offline_verdicts()
        plan = FaultPlan(kill_query="pos", once_token=str(tmp_path / "latch"))

        async def scenario(daemon):
            killed = await daemon.handle_request(query("pos"))
            sibling = await daemon.handle_request(query("neg"))
            return killed, sibling, daemon.metrics(), daemon.health()

        config = DaemonConfig(workers=2, fault_plan=plan, retry_backoff=0.01)
        killed, sibling, metrics, health = asyncio.run(
            _with_daemon(config, scenario)
        )
        # The worker died mid-request; the pool rebuilt it and re-ran the
        # query — the response records the retry and the verdict is exactly
        # the offline answer.
        assert killed["status"] == "retried"
        assert killed["ok"] is True
        assert killed["retries"] == 1
        assert killed["reachable"] == expected["pos"]
        assert sibling["ok"] and sibling["reachable"] == expected["neg"]
        assert health["workers"]["restarts"] >= 1
        assert metrics["counters"]["retried"] == 1

    def test_persistent_crasher_is_circuit_broken_others_served(self):
        expected = offline_verdicts()
        plan = FaultPlan(kill_query="pos")  # no latch: kills every attempt

        async def scenario(daemon):
            crashes = [
                await daemon.handle_request(query("pos", id=i)) for i in range(2)
            ]
            quarantined = await daemon.handle_request(query("pos", id="after"))
            survivors = [
                await daemon.handle_request(query("neg")),
                await daemon.handle_request(query("third")),
            ]
            return crashes, quarantined, survivors, daemon.metrics()

        config = DaemonConfig(
            workers=2, fault_plan=plan, breaker_threshold=2, retry_backoff=0.01
        )
        crashes, quarantined, survivors, metrics = asyncio.run(
            _with_daemon(config, scenario)
        )
        # Every attempt on the poisoned hash burned a worker twice (initial
        # + failover) and came back as a typed crash, not an exception.
        for response in crashes:
            assert response["status"] == "crashed"
            assert response["error"]["type"] == "WorkerCrashed"
        # Strike threshold reached: the hash is quarantined up front...
        assert quarantined["status"] == "circuit-open"
        assert quarantined["error"]["retry_after_seconds"] > 0
        # ...while other programs are served with offline-identical verdicts.
        assert survivors[0]["reachable"] == expected["neg"]
        assert survivors[1]["reachable"] == expected["third"]
        assert metrics["breaker"]["trips"] == 1


class TestDeadlineStorm:
    def test_storm_yields_typed_errors_and_sessions_stay_usable(self):
        expected = offline_verdicts()

        async def scenario(daemon):
            storm = await asyncio.gather(
                *[
                    daemon.handle_request(
                        query(name, deadline_seconds=0.0, id=f"storm-{name}-{i}")
                    )
                    for i in range(2)
                    for name in ("pos", "neg")
                ]
            )
            # The storm is over; the very same programs must answer
            # normally — exhaustion never poisons a pooled session.
            after = {
                name: await daemon.handle_request(query(name))
                for name in PROGRAMS
            }
            return storm, after

        # The breaker must not convict innocent programs for a
        # client-imposed zero deadline storm: threshold above storm size.
        config = DaemonConfig(workers=2, breaker_threshold=100)
        storm, after = asyncio.run(_with_daemon(config, scenario))
        for response in storm:
            assert response["ok"] is False
            assert response["status"] == "timeout"
            assert response["error"]["type"] == "AnalysisTimeout"
            assert response["error"]["resource"] == "wall-clock"
        for name, response in after.items():
            assert response["ok"] is True
            assert response["reachable"] == expected[name]


class TestMemoryPressure:
    def test_forced_eviction_preserves_verdicts(self):
        expected = offline_verdicts()

        async def scenario(daemon):
            first_pass = {
                name: await daemon.handle_request(query(name))
                for name in PROGRAMS
            }
            # Clamp the budget below the current pool so the next request
            # must evict (the worker closes real sessions, frees real nodes).
            total = daemon.pool_index.total_live_nodes()
            daemon.pool_index.memory_budget_nodes = max(1, total // 2)
            trigger = await daemon.handle_request(query("pos", id="trigger"))
            # The freed-node confirmation arrives asynchronously on the
            # worker's pipe; wait for it before sampling the counters.
            for _ in range(200):
                if daemon.counters["evicted_nodes"] > 0:
                    break
                await asyncio.sleep(0.02)
            metrics = daemon.metrics()
            second_pass = {
                name: await daemon.handle_request(query(name, id=f"again-{name}"))
                for name in PROGRAMS
            }
            return first_pass, trigger, second_pass, metrics

        config = DaemonConfig(workers=2, memory_budget_nodes=None)
        first_pass, trigger, second_pass, metrics = asyncio.run(
            _with_daemon(config, scenario)
        )
        assert trigger["ok"]
        assert metrics["counters"]["evictions"] >= 1
        assert metrics["counters"]["evicted_nodes"] > 0
        # Evicted sessions re-open cold and answer identically.
        for name in PROGRAMS:
            assert first_pass[name]["reachable"] == expected[name]
            assert second_pass[name]["reachable"] == expected[name]


class TestGracefulDrain:
    def test_shutdown_answers_inflight_before_stopping_workers(self):
        plan = FaultPlan(delay_query="slowpoke", delay_seconds=0.4)

        async def wrapper():
            daemon = AnalysisDaemon(
                DaemonConfig(workers=1, fault_plan=plan, drain_timeout=10.0)
            )
            await daemon.start()
            inflight = asyncio.ensure_future(
                daemon.handle_request({**query("pos"), "name": "slowpoke"})
            )
            await asyncio.sleep(0.1)
            await daemon.shutdown()  # drains: waits for the in-flight query
            response = await inflight
            late = await daemon.handle_request(query("neg"))
            return response, late, daemon

        response, late, daemon = asyncio.run(wrapper())
        assert response["ok"] is True and response["reachable"] is True
        assert late["status"] == "draining"
        assert daemon._pool.alive_count() == 0


class TestStdioServer:
    """End-to-end over the real transport: subprocess, pipes, signals."""

    def _spawn(self, *extra):
        repo = Path(__file__).resolve().parent.parent
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.frontends.server",
                "--stdio",
                "--workers",
                "1",
                *extra,
            ],
            cwd=repo,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    def _ask(self, server, request):
        server.stdin.write(json.dumps(request) + "\n")
        server.stdin.flush()
        line = server.stdout.readline()
        assert line, "server closed stdout unexpectedly"
        return json.loads(line)

    def test_query_health_and_eof_drain(self):
        server = self._spawn()
        try:
            response = self._ask(
                server,
                {"id": 1, "program": POSITIVE, "target": "main:target"},
            )
            assert response["id"] == 1
            assert response["ok"] is True and response["reachable"] is True
            health = self._ask(server, {"id": 2, "op": "health"})
            assert health["ok"] and health["workers"]["alive"] == 1
            bad = self._ask(server, {"id": 3, "program": ""})
            assert bad["status"] == "error" and bad["error"]["type"] == "BadRequest"
            server.stdin.close()  # EOF: drain and exit cleanly
            assert server.wait(timeout=30) == 0
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=10)
            for stream in (server.stdin, server.stdout, server.stderr):
                if stream is not None:
                    stream.close()

    def test_sigterm_drains_cleanly(self):
        server = self._spawn()
        try:
            response = self._ask(
                server,
                {"id": 1, "program": NEGATIVE, "target": "main:target"},
            )
            assert response["reachable"] is False
            server.send_signal(signal.SIGTERM)
            deadline = time.monotonic() + 30
            while server.poll() is None and time.monotonic() < deadline:
                time.sleep(0.05)
            assert server.poll() == 0, "server did not drain on SIGTERM"
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=10)
            for stream in (server.stdin, server.stdout, server.stderr):
                if stream is not None:
                    stream.close()
