"""Property tests: every analysis pass is semantics-preserving in isolation.

Each pass is applied *directly* (not through :func:`repro.analysis.optimize`)
to randomly generated programs from the benchgen fuzzer, and the reachability
verdict of the rewritten program is compared against the explicit BEBOP
replay of the original.  Structural passes additionally re-run the static
checker to prove they emit well-formed programs.

This is deliberately redundant with the composed-pipeline differential in
``test_optimize.py``: when the composition breaks, these tests name the
single pass that did it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    PassReport,
    eliminate_dead,
    fold_constants,
    fold_expr,
    optimize,
    prune_branches,
    prune_unreachable,
    slice_to_targets,
)
from repro.baselines import run_bebop
from repro.benchgen import random_program
from repro.boolprog import BinOp, Lit, NotE, VarRef, check_program
from repro.frontends import resolve_target

TARGET = "main:target"

PASSES = {
    "fold_constants": lambda program, report: fold_constants(program, report),
    "eliminate_dead": lambda program, report: eliminate_dead(program, report),
    "prune_branches": lambda program, report: prune_branches(program, report),
    "slice_to_targets": lambda program, report: slice_to_targets(
        program, (TARGET,), report
    ),
    "prune_unreachable": lambda program, report: prune_unreachable(
        program, (TARGET,), report
    ),
}

# One verdict per seed, shared across all pass checks for that seed.
_baseline_cache = {}


def baseline(seed):
    if seed not in _baseline_cache:
        program = random_program(seed)
        verdict = run_bebop(program, resolve_target(program, TARGET)).reachable
        _baseline_cache[seed] = (program, verdict)
    return _baseline_cache[seed]


@pytest.mark.parametrize("pass_name", sorted(PASSES))
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=400))
def test_single_pass_preserves_verdict(pass_name, seed):
    program, expected = baseline(seed)
    report = PassReport(level=2)
    rewritten = PASSES[pass_name](program, report)
    check_program(rewritten)
    got = run_bebop(rewritten, resolve_target(rewritten, TARGET)).reachable
    assert got == expected, f"{pass_name} flipped seed {seed}"


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=400), level=st.sampled_from([1, 2]))
def test_pipeline_preserves_verdict(seed, level):
    program, expected = baseline(seed)
    targets = TARGET if level == 2 else None
    rewritten, report = optimize(program, targets=targets, level=level)
    check_program(rewritten)
    got = run_bebop(rewritten, resolve_target(rewritten, TARGET)).reachable
    assert got == expected, f"-O{level} flipped seed {seed}"
    if level == 1:
        assert report.pc_stable


# ----------------------------------------------------------------------
# fold_expr agrees with a brute-force evaluator over deterministic
# expressions (nondeterministic leaves are excluded: `*` has no single
# truth value, and fold_expr must not equate two occurrences of it).
# ----------------------------------------------------------------------
VAR_NAMES = ("a", "b", "c")


def expr_strategy():
    leaves = st.one_of(
        st.sampled_from([VarRef(name) for name in VAR_NAMES]),
        st.booleans().map(Lit),
    )

    def extend(children):
        return st.one_of(
            children.map(NotE),
            st.tuples(
                st.sampled_from(["&", "|", "^", "==", "!="]), children, children
            ).map(lambda t: BinOp(t[0], t[1], t[2])),
        )

    return st.recursive(leaves, extend, max_leaves=16)


def eval_expr(expression, env):
    if isinstance(expression, Lit):
        return expression.value
    if isinstance(expression, VarRef):
        return env[expression.name]
    if isinstance(expression, NotE):
        return not eval_expr(expression.operand, env)
    op, left, right = (
        expression.op,
        eval_expr(expression.left, env),
        eval_expr(expression.right, env),
    )
    if op == "&":
        return left and right
    if op == "|":
        return left or right
    if op in ("^", "!="):
        return left != right
    return left == right


@settings(max_examples=200, deadline=None)
@given(expression=expr_strategy())
def test_fold_expr_is_truth_table_exact(expression):
    folded = fold_expr(expression)
    for bits in range(1 << len(VAR_NAMES)):
        env = {
            name: bool(bits >> position & 1)
            for position, name in enumerate(VAR_NAMES)
        }
        assert eval_expr(folded, env) == eval_expr(expression, env)
