"""Tests for the static pre-analysis subsystem (:mod:`repro.analysis`).

Three layers:

* **Unit oracles per pass** — each rewrite (constant folding, liveness /
  dead-store elimination, branch pruning, target-directed slicing,
  unreachable-procedure pruning) has tests pinning exactly what it may and
  may not remove, and that pc-stability is reported truthfully.
* **Differential gate** — the composed pipeline at ``-O1``/``-O2`` must
  preserve the verdict of every algorithm against the explicit BEBOP
  replay over the fuzz corpus (the CI ``optimize-smoke`` runs the same gate
  over 200 seeds and the full benchgen corpus).
* **Stack integration** — sessions compile the optimized program and guard
  target resolution (numeric targets vs renumbered pcs, sliced sessions vs
  foreign targets, no freeze of sliced sessions), shard groups cap levels
  soundly, the daemon protocol validates ``optimize`` and keys the pool per
  level, and the CLI exposes ``-O``.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    PassReport,
    eliminate_dead,
    fold_constants,
    fold_expr,
    normalise_slice_targets,
    optimize,
    prune_branches,
    prune_unreachable,
    slice_to_targets,
)
from repro.api import AnalysisSession
from repro.api.session import SessionSpec
from repro.baselines import run_bebop
from repro.benchgen import DriverSpec, make_driver, random_program
from repro.boolprog import (
    BinOp,
    Lit,
    NotE,
    VarRef,
    build_cfg,
    check_program,
    parse_program,
)
from repro.frontends import resolve_target
from repro.frontends.cli import main as cli_main
from repro.frontends.getafix import check_reachability
from repro.parallel import BatchQuery, run_shards
from repro.service.protocol import ProtocolError, content_hash, parse_request

ALGORITHMS = ("summary", "ef", "ef-opt")

DEAD_CODE = """
decl g, unused;
main() begin
  decl x, trace;
  x := *;
  trace := x;
  call helper(x);
  if (g) then target: skip; fi
end
helper(v) begin
  g := v;
end
orphan(w) begin
  unused := w;
end
"""

CONSTANT_BRANCH = """
decl g;
main() begin
  decl x;
  x := *;
  if (g) then
    x := !x;
    x := !x;
  fi
  if (x) then target: skip; fi
end
"""


def expect(source: str, target: str = "target") -> bool:
    program = parse_program(source) if isinstance(source, str) else source
    spec = target if ":" in target else f"main:{target}"
    return run_bebop(program, resolve_target(program, spec)).reachable


# ----------------------------------------------------------------------
# Unit oracles
# ----------------------------------------------------------------------
class TestFoldExpr:
    def test_literal_algebra(self):
        x = VarRef("x")
        assert fold_expr(BinOp("&", x, Lit(True))) == x
        assert fold_expr(BinOp("&", x, Lit(False))) == Lit(False)
        assert fold_expr(BinOp("|", x, Lit(False))) == x
        assert fold_expr(BinOp("|", x, Lit(True))) == Lit(True)
        assert fold_expr(NotE(Lit(True))) == Lit(False)
        assert fold_expr(NotE(NotE(x))) == x

    def test_identical_subtree_rules(self):
        x = VarRef("x")
        assert fold_expr(BinOp("&", x, x)) == x
        assert fold_expr(BinOp("^", x, x)) == Lit(False)
        assert fold_expr(BinOp("==", x, x)) == Lit(True)


class TestFoldConstants:
    def test_never_assigned_global_folds_false(self):
        program = parse_program(CONSTANT_BRANCH)
        report = PassReport(level=1)
        folded = fold_constants(program, report)
        check_program(folded)
        # `g` is never assigned, so it is False on every path: the guard
        # folds to a literal, but the If skeleton survives (pc-stable) until
        # the structural pass removes it.
        assert report.statements_simplified > 0
        assert report.structural_changes == 0  # pc-stable

    def test_verdict_preserved(self):
        program = parse_program(CONSTANT_BRANCH)
        folded = fold_constants(program, PassReport(level=1))
        assert expect(folded) == expect(CONSTANT_BRANCH) == True  # noqa: E712


class TestEliminateDead:
    def test_drops_dead_variables_and_keeps_live_ones(self):
        program = parse_program(DEAD_CODE)
        report = PassReport(level=1)
        slim = eliminate_dead(program, report)
        check_program(slim)
        assert "main:trace" in report.variables_removed
        assert "unused" in report.variables_removed
        assert "g" in slim.globals
        assert "x" in slim.procedure("main").locals
        assert report.structural_changes == 0

    def test_verdict_preserved(self):
        program = parse_program(DEAD_CODE)
        slim = eliminate_dead(program, PassReport(level=1))
        assert expect(slim) == expect(DEAD_CODE) == True  # noqa: E712


class TestPruneBranches:
    def test_contradiction_branch_removed(self):
        program = fold_constants(parse_program(CONSTANT_BRANCH), PassReport(level=1))
        report = PassReport(level=2)
        pruned = prune_branches(program, report)
        check_program(pruned)
        assert report.branches_pruned > 0
        assert report.structural_changes > 0
        assert not report.pc_stable
        assert expect(pruned) is True


class TestSliceAndPrune:
    def test_uncalled_procedure_dropped(self):
        program = parse_program(DEAD_CODE)
        report = PassReport(level=2)
        kept = prune_unreachable(program, None, report)
        check_program(kept)
        assert "orphan" in report.procedures_dropped
        assert "orphan" not in kept.procedures

    def test_slice_records_pedigree_and_preserves_verdict(self):
        program = parse_program(DEAD_CODE)
        report = PassReport(level=2)
        sliced = slice_to_targets(program, ("main:target",), report)
        check_program(sliced)
        assert report.sliced_for == ("main:target",)
        assert expect(sliced) is True


class TestNormaliseSliceTargets:
    def test_shapes(self):
        assert normalise_slice_targets("error") == ("error",)
        assert normalise_slice_targets(["a:l", "b:m", "a:l"]) == ("a:l", "b:m")
        assert normalise_slice_targets([(0, 3)]) is None
        assert normalise_slice_targets([("a:l"), (0, 3)]) is None
        assert normalise_slice_targets(None) is None


class TestOptimizeDriver:
    def test_level_zero_is_identity(self):
        program = parse_program(DEAD_CODE)
        result, report = optimize(program, level=0)
        assert result is program
        assert report.level == 0 and not report.changes()

    def test_level_one_is_pc_stable(self):
        _, report = optimize(parse_program(DEAD_CODE), level=1)
        assert report.pc_stable
        assert report.variables_removed

    def test_numeric_targets_cap_level(self):
        _, report = optimize(parse_program(DEAD_CODE), targets=[(0, 3)], level=2)
        assert report.level == 1
        assert report.pc_stable

    def test_report_round_trips_to_dict(self):
        _, report = optimize(
            parse_program(DEAD_CODE), targets="main:target", level=2
        )
        payload = report.to_dict()
        assert payload["level"] == 2
        assert payload["sliced_for"] == ["main:target"]
        assert payload["pc_stable"] is False

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            optimize(parse_program(DEAD_CODE), level=3)


# ----------------------------------------------------------------------
# Differential gate (fuzz corpus; CI runs the full 200-seed sweep)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(30))
def test_fuzz_differential_all_levels(seed):
    program = random_program(seed)
    expected = expect(program, "main:target")
    for level in (1, 2):
        for algorithm in ALGORITHMS:
            got = check_reachability(
                program, target="main:target", algorithm=algorithm, optimize=level
            ).reachable
            assert got == expected, f"seed {seed} -O{level} {algorithm}"


def test_driver_corpus_differential_with_reduction():
    for positive in (True, False):
        spec = DriverSpec("t", handlers=3, positive=positive)
        program = make_driver(spec)
        raw = check_reachability(program, optimize=0)
        opt = check_reachability(program, optimize=2)
        assert raw.reachable == opt.reachable == positive
        report = opt.stats["optimize"]
        assert len(report["variables_removed"]) >= spec.flags + spec.handlers
        assert opt.stats["manager"]["vars"] < raw.stats["manager"]["vars"]


# ----------------------------------------------------------------------
# Stack integration
# ----------------------------------------------------------------------
class TestSessionIntegration:
    def test_session_reports_and_preserves(self):
        session = AnalysisSession(DEAD_CODE, optimize=1)
        try:
            result = session.check("main:target")
            assert result.reachable is True
            assert result.stats["optimize"]["level"] == 1
            assert result.stats["optimize"]["variables_removed"]
        finally:
            session.close()

    def test_numeric_target_rejected_after_structural_pass(self):
        program = parse_program(CONSTANT_BRANCH)
        locations = resolve_target(program, "main:target")
        session = AnalysisSession(program, optimize=2)
        try:
            assert session.check("main:target").reachable is True
            with pytest.raises(ValueError, match="numeric"):
                session.check(list(locations))
        finally:
            session.close()

    def test_numeric_target_fine_at_level_one(self):
        program = parse_program(CONSTANT_BRANCH)
        locations = resolve_target(program, "main:target")
        session = AnalysisSession(program, optimize=1)
        try:
            assert session.check(list(locations)).reachable is True
        finally:
            session.close()

    def test_sliced_session_rejects_foreign_targets(self):
        session = AnalysisSession(
            DEAD_CODE, optimize=2, slice_targets=["main:target"]
        )
        try:
            assert session.check("main:target").reachable is True
            with pytest.raises(ValueError, match="sliced"):
                session.check("error")
        finally:
            session.close()

    def test_sliced_session_refuses_freeze(self):
        session = AnalysisSession(
            DEAD_CODE, optimize=2, slice_targets=["main:target"]
        )
        try:
            session.solve("ef-opt")
            with pytest.raises(RuntimeError, match="sliced"):
                session.freeze("ef-opt")
        finally:
            session.close()

    def test_numeric_slice_targets_rejected_up_front(self):
        with pytest.raises(ValueError):
            AnalysisSession(DEAD_CODE, optimize=2, slice_targets=[(0, 3)])

    def test_session_spec_round_trip(self):
        spec = SessionSpec(
            program=DEAD_CODE, optimize=2, slice_targets=("main:target",)
        )
        session = spec.open()
        try:
            assert session.optimize_level == 2
            assert session.check("main:target").reachable is True
        finally:
            session.close()

    def test_failed_pipeline_degrades_to_raw(self, monkeypatch):
        import repro.api.session as session_mod

        def boom(program, targets=None, level=1):
            raise RuntimeError("injected pass failure")

        monkeypatch.setattr(session_mod, "optimize_program", boom)
        session = AnalysisSession(DEAD_CODE, optimize=2)
        try:
            assert session.optimize_report.failed
            assert session.check("main:target").reachable is True
        finally:
            session.close()


class TestShardIntegration:
    UNREACHABLE = """
decl g;
main() begin
  if (g) then target: skip; fi
end
"""

    def test_string_targets_slice_per_group(self):
        queries = [
            BatchQuery(name="pos", program=DEAD_CODE, target="main:target", optimize=2),
            BatchQuery(
                name="neg", program=self.UNREACHABLE, target="main:target", optimize=2
            ),
        ]
        shards, _, _ = run_shards(queries, jobs=1)
        assert all(s.ok for s in shards), [s.error for s in shards]
        assert [s.result.reachable for s in shards] == [True, False]

    def test_numeric_targets_cap_group_level(self):
        program = parse_program(DEAD_CODE)
        locations = tuple(resolve_target(program, "main:target"))
        queries = [
            BatchQuery(
                name="num", program=DEAD_CODE, target=locations, optimize=2
            ),
            BatchQuery(
                name="str", program=DEAD_CODE, target="main:target", optimize=2
            ),
        ]
        shards, _, _ = run_shards(queries, jobs=1)
        assert all(s.ok for s in shards), [s.error for s in shards]
        assert [s.result.reachable for s in shards] == [True, True]


class TestProtocol:
    def request(self, **fields):
        request = {"program": DEAD_CODE, "target": "main:target"}
        request.update(fields)
        return request

    def test_optimize_levels_key_the_pool_hash(self):
        raw = parse_request(self.request(), job_id="a")
        fast = parse_request(self.request(optimize=2), job_id="b")
        assert raw.program_hash == content_hash(DEAD_CODE)
        assert fast.program_hash == f"{content_hash(DEAD_CODE)}:O2"
        assert fast.optimize == 2
        assert raw.coalesce_key() != fast.coalesce_key()

    @pytest.mark.parametrize("bad", [-1, 3, True, "2", 1.5])
    def test_bad_optimize_rejected(self, bad):
        with pytest.raises(ProtocolError):
            parse_request(self.request(optimize=bad), job_id="x")

    def test_concurrent_plus_optimize_rejected(self):
        with pytest.raises(ProtocolError, match="concurrent"):
            parse_request(
                self.request(concurrent=True, optimize=1), job_id="x"
            )

    def test_numeric_target_at_level_two_rejected(self):
        with pytest.raises(ProtocolError, match="renumbers"):
            parse_request(
                self.request(target=[[0, 3]], optimize=2), job_id="x"
            )
        # ...but stays valid at the pc-stable level.
        job = parse_request(self.request(target=[[0, 3]], optimize=1), job_id="x")
        assert job.optimize == 1


class TestCliIntegration:
    def test_optimize_flag_preserves_verdict(self, tmp_path, capsys):
        path = tmp_path / "prog.bp"
        path.write_text(DEAD_CODE)
        raw = cli_main([str(path), "--target", "main:target", "-O0"])
        fast = cli_main([str(path), "--target", "main:target", "-O2"])
        assert raw == fast == 1  # reachable -> exit 1
        capsys.readouterr()

    def test_concurrent_conflicts_with_optimize(self, tmp_path, capsys):
        path = tmp_path / "prog.bp"
        path.write_text(DEAD_CODE)
        status = cli_main([str(path), "--concurrent", "-O1"])
        assert status == 2
        capsys.readouterr()
