"""Tests for the bounded context-switching algorithm (symbolic and explicit)."""

import pytest

from repro.algorithms import run_concurrent
from repro.baselines import run_concurrent_explicit
from repro.boolprog import parse_concurrent_program
from repro.encode.concurrent import ConcurrentEncoder
from repro.frontends import check_concurrent_reachability

HANDOFF = """
shared decl a, b;
init a := F, b := F;
thread ping begin
  main() begin
    a := T;
    if (b) then
      hit: skip;
    fi
  end
end
thread pong begin
  main() begin
    if (a) then b := T; fi
  end
end
"""

LOCKED = """
shared decl lock, stopped;
init lock := F, stopped := F;
thread worker begin
  main() begin
    call acquire();
    assert(!stopped);
    call release();
  end
  acquire() begin assume(!lock); lock := T; end
  release() begin lock := F; end
end
thread killer begin
  main() begin stopped := T; end
end
"""


def locations(program, target="error"):
    encoder = ConcurrentEncoder(program)
    if target == "error":
        return encoder.error_locations()
    thread, procedure, label = target.split(":")
    return [encoder.label_location(thread, procedure, label)]


class TestSymbolicAgainstExplicit:
    @pytest.mark.parametrize("switches", [0, 1, 2, 3])
    def test_handoff_agreement(self, switches):
        program = parse_concurrent_program(HANDOFF)
        locs = locations(program, "ping:main:hit")
        symbolic = run_concurrent(program, locs, context_switches=switches)
        explicit = run_concurrent_explicit(program, locs, context_switches=switches)
        assert symbolic.reachable == explicit.reachable
        # The hand-off needs ping -> pong -> ping, i.e. two switches.
        assert symbolic.reachable == (switches >= 2)

    @pytest.mark.parametrize("switches", [0, 1, 2])
    def test_locked_agreement(self, switches):
        program = parse_concurrent_program(LOCKED)
        locs = locations(program)
        symbolic = run_concurrent(program, locs, context_switches=switches)
        explicit = run_concurrent_explicit(program, locs, context_switches=switches)
        assert symbolic.reachable == explicit.reachable
        assert symbolic.reachable == (switches >= 1)


class TestReachabilityStructure:
    def test_monotone_in_context_bound(self):
        program = parse_concurrent_program(HANDOFF)
        locs = locations(program, "ping:main:hit")
        verdicts = [
            run_concurrent(program, locs, context_switches=k).reachable for k in range(4)
        ]
        # Once reachable, more context switches keep it reachable.
        assert verdicts == sorted(verdicts)

    def test_init_section_matters(self):
        # Without the init section `b` may start True, making the target
        # reachable without any context switch.
        source = HANDOFF.replace("init a := F, b := F;\n", "")
        program = parse_concurrent_program(source)
        locs = locations(program, "ping:main:hit")
        with_init = parse_concurrent_program(HANDOFF)
        assert not run_concurrent(
            with_init, locations(with_init, "ping:main:hit"), context_switches=0
        ).reachable
        # Globals still default to False, so dropping the init section does
        # not change the verdict in this particular program.
        assert not run_concurrent(program, locs, context_switches=0).reachable

    def test_count_states_reported(self):
        program = parse_concurrent_program(LOCKED)
        result = run_concurrent(
            program, locations(program), context_switches=1, count_states=True
        )
        assert result.summary_states is not None and result.summary_states > 0

    def test_frontend_target_resolution(self):
        result = check_concurrent_reachability(
            HANDOFF, target="ping:main:hit", context_switches=2
        )
        assert result.reachable
        with pytest.raises(ValueError):
            check_concurrent_reachability(HANDOFF, target="not-a-target", context_switches=1)

    def test_negative_bound_rejected(self):
        program = parse_concurrent_program(HANDOFF)
        with pytest.raises(ValueError):
            run_concurrent(program, locations(program, "ping:main:hit"), context_switches=-1)


class TestExplicitSolverDetails:
    def test_explicit_detects_recursion_guard(self):
        source = """
        shared decl flag;
        thread looper begin
          main() begin
            call spin();
          end
          spin() begin
            call spin();
          end
        end
        thread other begin
          main() begin flag := T; end
        end
        """
        program = parse_concurrent_program(source)
        encoder = ConcurrentEncoder(program)
        locs = [encoder.label_location("other", "main", "end_label")] if False else [(0, 1)]
        with pytest.raises(RecursionError):
            run_concurrent_explicit(program, locs, context_switches=1)

    def test_explicit_configuration_count_grows_with_bound(self):
        program = parse_concurrent_program(HANDOFF)
        locs = locations(program, "ping:main:hit")
        small = run_concurrent_explicit(program, locs, context_switches=0, early_stop=False)
        large = run_concurrent_explicit(program, locs, context_switches=3, early_stop=False)
        assert large.details["configurations"] > small.details["configurations"]
