"""Unit tests for the ROBDD manager."""

import pytest

from repro.bdd import BddError, BddManager


@pytest.fixture()
def mgr():
    return BddManager(["a", "b", "c", "d"])


class TestVariables:
    def test_declared_names(self, mgr):
        assert mgr.var_names == ("a", "b", "c", "d")
        assert mgr.num_vars == 4

    def test_var_index_roundtrip(self, mgr):
        for index, name in enumerate("abcd"):
            assert mgr.var_index(name) == index
            assert mgr.var_name(index) == name

    def test_unknown_variable_raises(self, mgr):
        with pytest.raises(BddError):
            mgr.var_index("zzz")

    def test_duplicate_declaration_raises(self, mgr):
        with pytest.raises(BddError):
            mgr.add_var("a")

    def test_add_var_appends_level(self, mgr):
        index = mgr.add_var("e")
        assert index == 4
        assert mgr.var_name(4) == "e"


class TestBasicOperations:
    def test_terminals(self, mgr):
        assert mgr.TRUE == 1
        assert mgr.FALSE == 0
        assert mgr.is_terminal(mgr.TRUE)
        assert not mgr.is_terminal(mgr.var("a"))

    def test_var_and_negation(self, mgr):
        a = mgr.var("a")
        assert mgr.not_(a) == mgr.nvar("a")
        assert mgr.not_(mgr.not_(a)) == a

    def test_and_or_identities(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert mgr.and_(a, mgr.TRUE) == a
        assert mgr.and_(a, mgr.FALSE) == mgr.FALSE
        assert mgr.or_(a, mgr.FALSE) == a
        assert mgr.or_(a, mgr.TRUE) == mgr.TRUE
        assert mgr.and_(a, b) == mgr.and_(b, a)

    def test_excluded_middle_and_contradiction(self, mgr):
        a = mgr.var("a")
        assert mgr.or_(a, mgr.not_(a)) == mgr.TRUE
        assert mgr.and_(a, mgr.not_(a)) == mgr.FALSE

    def test_xor_iff_duality(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert mgr.not_(mgr.xor(a, b)) == mgr.iff(a, b)

    def test_implies(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert mgr.implies(a, b) == mgr.or_(mgr.not_(a), b)

    def test_ite_canonical(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = mgr.ite(a, b, c)
        g = mgr.or_(mgr.and_(a, b), mgr.and_(mgr.not_(a), c))
        assert f == g

    def test_conjoin_disjoin(self, mgr):
        literals = [mgr.var("a"), mgr.var("b"), mgr.var("c")]
        assert mgr.conjoin([]) == mgr.TRUE
        assert mgr.disjoin([]) == mgr.FALSE
        assert mgr.conjoin(literals) == mgr.and_(literals[0], mgr.and_(literals[1], literals[2]))
        assert mgr.disjoin(literals) == mgr.or_(literals[0], mgr.or_(literals[1], literals[2]))

    def test_hash_consing_shares_nodes(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f1 = mgr.and_(a, b)
        f2 = mgr.and_(a, b)
        assert f1 == f2


class TestQuantification:
    def test_exists_removes_variable(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.and_(a, b)
        assert mgr.exists(f, ["a"]) == b
        assert mgr.exists(f, ["a", "b"]) == mgr.TRUE

    def test_forall(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.or_(a, b)
        assert mgr.forall(f, ["a"]) == b
        assert mgr.forall(mgr.and_(a, b), ["a"]) == mgr.FALSE

    def test_exists_is_disjunction_of_cofactors(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = mgr.ite(a, b, c)
        expected = mgr.or_(
            mgr.restrict(f, {"a": True}), mgr.restrict(f, {"a": False})
        )
        assert mgr.exists(f, ["a"]) == expected

    def test_and_exists_matches_two_step(self, mgr):
        a, b, c, d = (mgr.var(name) for name in "abcd")
        f = mgr.or_(mgr.and_(a, b), c)
        g = mgr.or_(mgr.and_(b, d), mgr.not_(c))
        direct = mgr.and_exists(f, g, ["b", "c"])
        two_step = mgr.exists(mgr.and_(f, g), ["b", "c"])
        assert direct == two_step

    def test_quantify_nothing(self, mgr):
        a = mgr.var("a")
        assert mgr.exists(a, []) == a
        assert mgr.forall(a, []) == a


class TestRenameRestrict:
    def test_rename_simple(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.and_(a, mgr.not_(b))
        g = mgr.rename(f, {"a": "c", "b": "d"})
        assert g == mgr.and_(mgr.var("c"), mgr.not_(mgr.var("d")))

    def test_rename_against_order(self, mgr):
        # Renaming a low variable to a high one and vice versa must still work.
        c, d = mgr.var("c"), mgr.var("d")
        f = mgr.and_(c, d)
        g = mgr.rename(f, {"c": "a", "d": "b"})
        assert g == mgr.and_(mgr.var("a"), mgr.var("b"))

    def test_rename_non_injective_raises(self, mgr):
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        with pytest.raises(BddError):
            mgr.rename(f, {"a": "c", "b": "c"})

    def test_rename_clash_raises(self, mgr):
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        with pytest.raises(BddError):
            mgr.rename(f, {"a": "b"})

    def test_rename_swap_is_allowed(self, mgr):
        f = mgr.and_(mgr.var("a"), mgr.not_(mgr.var("b")))
        g = mgr.rename(f, {"a": "b", "b": "a"})
        assert g == mgr.and_(mgr.var("b"), mgr.not_(mgr.var("a")))

    def test_restrict(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.ite(a, b, mgr.not_(b))
        assert mgr.restrict(f, {"a": True}) == b
        assert mgr.restrict(f, {"a": False}) == mgr.not_(b)
        assert mgr.restrict(f, {"a": True, "b": True}) == mgr.TRUE

    def test_compose(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = mgr.or_(a, b)
        g = mgr.compose(f, "a", mgr.and_(b, c))
        assert g == mgr.or_(mgr.and_(b, c), b)


class TestInspection:
    def test_support(self, mgr):
        f = mgr.and_(mgr.var("a"), mgr.or_(mgr.var("c"), mgr.var("d")))
        assert mgr.support_names(f) == {"a", "c", "d"}
        assert mgr.support(mgr.TRUE) == set()

    def test_node_count(self, mgr):
        assert mgr.node_count(mgr.TRUE) == 0
        assert mgr.node_count(mgr.var("a")) == 1
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        assert mgr.node_count(f) == 2

    def test_count_sat_full_space(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.or_(a, b)
        # Over all 4 declared vars: 3 * 4 assignments of c,d.
        assert mgr.count_sat(f) == 12
        assert mgr.count_sat(f, ["a", "b"]) == 3
        assert mgr.count_sat(mgr.TRUE, ["a"]) == 2
        assert mgr.count_sat(mgr.FALSE, ["a", "b"]) == 0

    def test_count_sat_missing_support_raises(self, mgr):
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        with pytest.raises(BddError):
            mgr.count_sat(f, ["a"])

    def test_count_sat_negation_heavy(self):
        """count_sat on complement-edge-rich formulas (signed-edge memo).

        Every arrival at a complemented edge must hit the same memo as the
        regular polarity; the regression builds formulas where shared signed
        subgraphs are reached under different variable gaps and checks the
        counts against brute-force enumeration, in both polarities.
        """
        names = ["a", "b", "c", "d", "e", "f"]
        mgr = BddManager(names)
        v = {name: mgr.var(name) for name in names}
        # XOR chains are maximally complement-edge-shared.
        xor_chain = mgr.xor(v["a"], mgr.xor(v["b"], mgr.xor(v["c"], v["d"])))
        # A shared negated subformula reached under different gap positions.
        shared = mgr.not_(mgr.xor(v["e"], v["f"]))
        formulas = [
            xor_chain,
            mgr.not_(xor_chain),
            mgr.or_(mgr.and_(v["a"], shared), mgr.and_(mgr.not_(v["c"]), shared)),
            mgr.iff(mgr.not_(mgr.and_(v["a"], v["b"])), mgr.not_(mgr.or_(v["d"], shared))),
            mgr.not_(mgr.implies(mgr.not_(v["b"]), mgr.not_(shared))),
        ]
        total = 1 << len(names)
        for formula in formulas:
            expected = 0
            for bits in range(total):
                env = {name: bool((bits >> k) & 1) for k, name in enumerate(names)}
                if mgr.eval(formula, env):
                    expected += 1
            assert mgr.count_sat(formula, names) == expected
            # The two polarities must partition the space exactly.
            assert mgr.count_sat(mgr.not_(formula), names) == total - expected

    def test_count_sat_negation_memo_is_polarity_shared(self):
        """A wide disjunction of negated shared xors stays cheap: the memo
        must serve complemented arrivals, not redo the subtraction walk."""
        names = [f"x{i}" for i in range(16)]
        mgr = BddManager(names)
        parity = mgr.var(names[0])
        for name in names[1:]:
            parity = mgr.xor(parity, mgr.var(name))
        # Parity of 16 variables is satisfied by exactly half the space.
        assert mgr.count_sat(parity, names) == 1 << 15
        assert mgr.count_sat(mgr.not_(parity), names) == 1 << 15

    def test_sat_one(self, mgr):
        f = mgr.and_(mgr.var("a"), mgr.not_(mgr.var("c")))
        model = mgr.sat_one(f)
        assert model is not None
        assert mgr.eval(f, {**{"b": False, "d": False}, **{mgr.var_name(k): v for k, v in model.items()}})
        assert mgr.sat_one(mgr.FALSE) is None

    def test_sat_all(self, mgr):
        f = mgr.xor(mgr.var("a"), mgr.var("b"))
        models = list(mgr.sat_all(f, ["a", "b"]))
        assert len(models) == 2
        values = {tuple(sorted(m.items())) for m in models}
        a_idx, b_idx = mgr.var_index("a"), mgr.var_index("b")
        assert ((a_idx, False), (b_idx, True)) in values
        assert ((a_idx, True), (b_idx, False)) in values

    def test_eval(self, mgr):
        f = mgr.ite(mgr.var("a"), mgr.var("b"), mgr.var("c"))
        assert mgr.eval(f, {"a": True, "b": True, "c": False})
        assert not mgr.eval(f, {"a": False, "b": True, "c": False})

    def test_cube(self, mgr):
        f = mgr.cube({"a": True, "b": False})
        assert f == mgr.and_(mgr.var("a"), mgr.not_(mgr.var("b")))

    def test_to_expr_smoke(self, mgr):
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        text = mgr.to_expr(f)
        assert "a" in text and "b" in text
        assert mgr.to_expr(mgr.TRUE) == "TRUE"

    def test_clear_caches_preserves_results(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.and_(a, b)
        mgr.clear_caches()
        assert mgr.and_(a, b) == f
