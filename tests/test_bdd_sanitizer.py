"""Tests for the BDD kernel sanitizer (``BddManager(debug_checks=True)``).

Two directions, over both node-store layouts:

* **Clean paths stay clean** — formula construction, explicit and triggered
  collection, rename/restrict/quantify and the snapshot-overlay attach all
  pass validation at every GC safe point; verdict-bearing workloads behave
  identically with the sanitizer armed.
* **Corruption is caught** — each invariant the sanitizer guards (live
  counter, free-list purity, unique-table/node-vector agreement, the
  regular then-edge canonical form, external-reference liveness, op-cache
  edge liveness) has a test that injects exactly that corruption and
  asserts :class:`BddError` names it.
"""

from __future__ import annotations

import pytest

from repro.bdd import BddManager, SnapshotOverlayManager, SnapshotView
from repro.bdd import snapshot as bdd_snapshot
from repro.bdd._array import EDGE_BITS
from repro.bdd.manager import BddError

STORES = ["dict", "array"]

VARS = [f"v{i}" for i in range(8)]


def make_manager(store, **kwargs):
    kwargs.setdefault("debug_checks", True)
    return BddManager(VARS, store=store, **kwargs)


def churn(mgr, rounds=6):
    """Build and drop structure so sweeps have something to reclaim."""
    f = mgr.TRUE
    for i in range(rounds):
        f = mgr.and_(f, mgr.xor(mgr.var(i % 8), mgr.nvar((i + 3) % 8)))
        mgr.or_(f, mgr.var((i + 1) % 8))
    return f


# ----------------------------------------------------------------------
# Clean paths
# ----------------------------------------------------------------------
@pytest.mark.parametrize("store", STORES)
def test_clean_lifecycle_validates(store):
    mgr = make_manager(store, gc_threshold=8)
    kept = mgr.ref(churn(mgr))
    assert mgr.collect_garbage([]) >= 0  # validates at the safe point
    assert not mgr.maybe_collect([kept]) or True  # either branch validates
    g = mgr.exists(kept, [0, 1])
    mgr.restrict(g, {2: True})
    mgr.collect_garbage([kept])
    mgr.deref(kept)
    mgr.collect_garbage([])
    assert mgr.stats()["debug_checks"] is True


@pytest.mark.parametrize("store", STORES)
def test_triggered_collection_validates(store):
    mgr = make_manager(store, gc_threshold=4, gc_growth=1.0)
    for _ in range(4):
        churn(mgr)
        assert mgr.maybe_collect([]) in (True, False)


def test_env_variable_enables_checks(monkeypatch):
    monkeypatch.setenv("REPRO_DEBUG_CHECKS", "1")
    assert BddManager(["a"])._debug_checks is True
    monkeypatch.setenv("REPRO_DEBUG_CHECKS", "0")
    assert BddManager(["a"])._debug_checks is False
    monkeypatch.delenv("REPRO_DEBUG_CHECKS")
    assert BddManager(["a"])._debug_checks is False
    # An explicit argument wins over the environment.
    monkeypatch.setenv("REPRO_DEBUG_CHECKS", "1")
    assert BddManager(["a"], debug_checks=False)._debug_checks is False


# ----------------------------------------------------------------------
# Corruption detection
# ----------------------------------------------------------------------
@pytest.mark.parametrize("store", STORES)
def test_detects_free_list_corruption(store):
    mgr = make_manager(store)
    node = mgr.and_(mgr.var(0), mgr.var(1))
    mgr._free.append(node >> 1)  # a live slot on the free list
    with pytest.raises(BddError, match="free list"):
        mgr._debug_validate()


@pytest.mark.parametrize("store", STORES)
def test_detects_live_counter_drift(store):
    mgr = make_manager(store)
    mgr.and_(mgr.var(0), mgr.var(1))
    mgr._live += 1
    with pytest.raises(BddError, match="live counter"):
        mgr._debug_validate()


@pytest.mark.parametrize("store", STORES)
def test_detects_unique_table_mismatch(store):
    mgr = make_manager(store)
    mgr.and_(mgr.var(0), mgr.var(1))
    key = next(iter(mgr._unique))
    mgr._unique[key] = mgr._unique[key] + 1 if len(mgr._level) > 2 else 1
    with pytest.raises(BddError, match="unique"):
        mgr._debug_validate()


@pytest.mark.parametrize("store", STORES)
def test_detects_complemented_then_edge(store):
    mgr = make_manager(store)
    node = mgr.and_(mgr.var(0), mgr.var(1))
    mgr._hi[node >> 1] ^= 1  # break the attributed-edge canonical form
    with pytest.raises(BddError):
        mgr._debug_validate()


@pytest.mark.parametrize("store", STORES)
def test_detects_dangling_external_reference(store):
    mgr = make_manager(store)
    mgr._extref[len(mgr._level) + 3] = 1
    with pytest.raises(BddError, match="external reference"):
        mgr._debug_validate()


@pytest.mark.parametrize("store", STORES)
def test_detects_stale_cache_edge(store):
    mgr = make_manager(store, debug_checks=False)
    keep = mgr.ref(mgr.var(2))
    dead = mgr.and_(mgr.var(0), mgr.var(1))
    mgr.collect_garbage([])  # reclaims `dead`; `keep` pins its own slot
    if store == "dict":
        mgr._and_cache[(dead, keep)] = keep
    else:
        mgr._and_cache[(dead << EDGE_BITS) | keep] = keep
    mgr._debug_checks = True
    with pytest.raises(BddError, match="cache mentions dead edge"):
        mgr._debug_validate()


# ----------------------------------------------------------------------
# Snapshot overlay
# ----------------------------------------------------------------------
def test_overlay_validates_clean_and_corrupt():
    mgr = BddManager(VARS, store="array", debug_checks=True)
    f = mgr.ref(churn(mgr))
    mgr.collect_garbage([])
    name = bdd_snapshot.freeze(mgr)
    try:
        view = SnapshotView(name)
        overlay = SnapshotOverlayManager(view, debug_checks=True)
        # Rebuild a frozen function (base hits) and fresh tail structure.
        rebuilt = overlay.ref(churn(overlay))
        assert rebuilt == f  # canonicity across the base/tail boundary
        tail_only = overlay.ref(
            overlay.and_(overlay.xor(overlay.var(0), overlay.var(7)), rebuilt)
        )
        overlay.collect_garbage([])  # validates the overlay invariants
        overlay.deref(tail_only)
        overlay.collect_garbage([])
        overlay._free.append(0)  # terminal slot can never be free
        with pytest.raises(BddError, match="overlay free list"):
            overlay._debug_validate()
        overlay._free.pop()
        overlay.detach()
    finally:
        bdd_snapshot.unlink(name)
