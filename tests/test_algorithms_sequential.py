"""Tests for the three sequential Getafix algorithms and the engine wiring."""

import pytest

from repro.algorithms import SEQUENTIAL_ALGORITHMS, run_sequential
from repro.boolprog import parse_program
from repro.frontends import check_reachability, resolve_target

ALGORITHMS = sorted(SEQUENTIAL_ALGORITHMS)

POSITIVE = """
decl g;
main() begin
  decl x, y;
  x, y := T, *;
  if (x & !g) then
    x := negate(y);
  fi
  call set_global(x);
  if (g) then
    target: skip;
  fi
end
negate(a) begin return !a; end
set_global(p) begin g := p; end
"""

NEGATIVE = """
decl g;
main() begin
  decl x;
  x := F;
  call maybe_set(x);
  if (g) then
    target: skip;
  fi
end
maybe_set(v) begin
  if (v) then g := T; fi
end
"""

RECURSIVE = """
main() begin
  decl r;
  r := descend(*);
  if (!r) then
    impossible: skip;
  fi
end
descend(d) begin
  decl r;
  if (d) then
    r := descend(*);
    return r;
  fi
  return T;
end
"""

MUTUAL_RECURSION = """
decl parity;
main() begin
  call even_steps();
  if (parity) then
    odd_seen: skip;
  fi
end
even_steps() begin
  if (*) then
    call odd_steps();
  fi
end
odd_steps() begin
  parity := !parity;
  if (*) then
    call even_steps();
  fi
end
"""


class TestVerdicts:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_positive_program(self, algorithm):
        result = check_reachability(POSITIVE, target="main:target", algorithm=algorithm)
        assert result.reachable
        assert result.algorithm == f"getafix-{'summary' if algorithm == 'summary' else algorithm}"

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_negative_program(self, algorithm):
        result = check_reachability(NEGATIVE, target="main:target", algorithm=algorithm)
        assert not result.reachable

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_recursive_descend_always_returns_true(self, algorithm):
        # descend always eventually returns T, so `!r` is unreachable.
        result = check_reachability(RECURSIVE, target="main:impossible", algorithm=algorithm)
        assert not result.reachable

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_mutual_recursion(self, algorithm):
        result = check_reachability(MUTUAL_RECURSION, target="main:odd_seen", algorithm=algorithm)
        assert result.reachable

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_assert_target(self, algorithm):
        source = """
        decl ready;
        main() begin
          call start();
          call start();
        end
        start() begin
          assert(!ready);
          ready := T;
        end
        """
        assert check_reachability(source, target="error", algorithm=algorithm).reachable

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_assume_blocks_path(self, algorithm):
        source = """
        main() begin
          decl x;
          x := *;
          assume(x & !x);
          unreachable: skip;
        end
        """
        assert not check_reachability(source, target="main:unreachable", algorithm=algorithm).reachable


class TestStatistics:
    def test_result_fields_populated(self):
        result = check_reachability(POSITIVE, target="main:target", algorithm="ef")
        assert result.iterations > 0
        assert result.equation_evaluations >= result.iterations
        assert result.summary_nodes > 0
        assert result.total_seconds >= result.elapsed_seconds >= 0
        assert result.details["bdd_variables"] > 0
        assert result.verdict() == "Yes"

    def test_early_stop_versus_full_fixpoint(self):
        program = parse_program(POSITIVE)
        locations = resolve_target(program, "main:target")
        eager = run_sequential(program, locations, algorithm="ef", early_stop=True)
        full = run_sequential(program, locations, algorithm="ef", early_stop=False)
        assert eager.reachable and full.reachable
        assert eager.stopped_early
        assert not full.stopped_early
        assert eager.iterations <= full.iterations

    def test_ef_and_ef_opt_share_the_summary_semantics(self):
        # Theorem 2 / Theorem 3: both algorithms compute the reachable
        # summaries, so their verdicts agree on negative programs where early
        # termination never fires.
        program = parse_program(NEGATIVE)
        locations = resolve_target(program, "main:target")
        ef = run_sequential(program, locations, algorithm="ef", early_stop=False)
        ef_opt = run_sequential(program, locations, algorithm="ef-opt", early_stop=False)
        assert not ef.reachable and not ef_opt.reachable

    def test_unknown_algorithm_rejected(self):
        program = parse_program(NEGATIVE)
        with pytest.raises(ValueError):
            run_sequential(program, [(0, 1)], algorithm="made-up")

    def test_targets_outside_main(self):
        source = """
        decl g;
        main() begin
          call helper(T);
        end
        helper(v) begin
          if (v) then
            deep: skip;
          fi
        end
        """
        for algorithm in ALGORITHMS:
            result = check_reachability(source, target="helper:deep", algorithm=algorithm)
            assert result.reachable, algorithm
