"""Tests for the benchmark generators (the synthetic benchmark suites)."""

import pytest

from repro.baselines import run_bebop, run_concurrent_explicit
from repro.benchgen import (
    BLUETOOTH_CONFIGURATIONS,
    TEMPLATE_NAMES,
    driver_suite,
    make_bluetooth,
    make_driver,
    make_terminator,
    random_program,
    regression_case,
    regression_suite,
    terminator_suite,
)
from repro.boolprog import check_concurrent_program, check_program
from repro.encode.concurrent import ConcurrentEncoder
from repro.frontends import check_reachability, resolve_target


class TestRegressionSuite:
    @pytest.mark.parametrize("template", TEMPLATE_NAMES)
    @pytest.mark.parametrize("positive", [True, False])
    def test_case_is_valid_and_has_expected_verdict(self, template, positive):
        case = regression_case(template, positive)
        check_program(case.program)
        locations = resolve_target(case.program, case.target)
        assert run_bebop(case.program, locations).reachable == case.expected

    def test_suite_cycles_templates(self):
        cases = regression_suite(positive=True, count=len(TEMPLATE_NAMES) + 3)
        assert len(cases) == len(TEMPLATE_NAMES) + 3
        assert cases[0].name != cases[1].name

    def test_unknown_template_rejected(self):
        with pytest.raises(KeyError):
            regression_case("no-such-template", True)


class TestDriverSuite:
    @pytest.mark.parametrize("positive", [True, False])
    def test_generated_driver_verdict(self, positive):
        spec = driver_suite(positive, sizes=[2])[0]
        program = make_driver(spec)
        check_program(program)
        locations = resolve_target(program, spec.target)
        assert run_bebop(program, locations).reachable == positive

    def test_driver_scales_with_handlers(self):
        small = make_driver(driver_suite(True, sizes=[2])[0])
        large = make_driver(driver_suite(True, sizes=[4])[0])
        assert len(large.procedures) > len(small.procedures)

    def test_driver_getafix_agrees(self):
        spec = driver_suite(True, sizes=[2])[0]
        program = make_driver(spec)
        result = check_reachability(program, target=spec.target, algorithm="ef-opt")
        assert result.reachable


class TestTerminatorSuite:
    @pytest.mark.parametrize("variant", ["iterative", "schoose"])
    @pytest.mark.parametrize("positive", [True, False])
    def test_generated_terminator_verdict(self, variant, positive):
        specs = [
            spec
            for spec in terminator_suite(counter_bits=[2], positive=positive)
            if spec.variant == variant
        ]
        spec = specs[0]
        program = make_terminator(spec)
        check_program(program)
        locations = resolve_target(program, spec.target)
        assert run_bebop(program, locations).reachable == positive

    def test_both_variants_generated(self):
        variants = {spec.variant for spec in terminator_suite(counter_bits=[2])}
        assert variants == {"iterative", "schoose"}


class TestBluetooth:
    def test_model_is_well_formed(self):
        for adders, stoppers in BLUETOOTH_CONFIGURATIONS.values():
            program = make_bluetooth(adders, stoppers)
            check_concurrent_program(program)
            assert program.num_threads == adders + stoppers

    def test_figure3_bug_pattern_explicit(self):
        """The qualitative Figure 3 pattern, checked with the explicit engine."""
        expectations = {
            (1, 1): {k: False for k in range(7)},
            (1, 2): {2: False, 3: True, 6: True},
            (2, 1): {3: False, 4: True},
            (2, 2): {2: False, 3: True},
        }
        for (adders, stoppers), by_bound in expectations.items():
            program = make_bluetooth(adders, stoppers)
            encoder = ConcurrentEncoder(program)
            locations = encoder.error_locations()
            for bound, expected in by_bound.items():
                result = run_concurrent_explicit(program, locations, context_switches=bound)
                assert result.reachable == expected, (adders, stoppers, bound)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            make_bluetooth(0, 1)


class TestRandomPrograms:
    def test_deterministic_per_seed(self):
        first = random_program(7)
        second = random_program(7)
        assert first.procedures.keys() == second.procedures.keys()

    @pytest.mark.parametrize("seed", range(5))
    def test_random_programs_are_well_formed(self, seed):
        program = random_program(seed)
        check_program(program)
        assert "main" in program.procedures
