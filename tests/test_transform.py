"""Tests for program transformations (renaming and thread merging)."""

import pytest

from repro.boolprog import (
    Assign,
    Call,
    CallAssign,
    NotE,
    VarRef,
    parse_concurrent_program,
    parse_expression,
    parse_program,
    check_program,
)
from repro.boolprog.transform import merge_threads, rename_in_expr, rename_in_stmt, rename_procedure

CONCURRENT = """
shared decl flag;

thread left begin
  decl mine;
  main() begin
    mine := T;
    call push(mine);
  end
  push(v) begin
    flag := v;
  end
end

thread right begin
  main() begin
    decl seen;
    seen := flag;
  end
end
"""


class TestRenaming:
    def test_rename_in_expr(self):
        expression = parse_expression("a & (b | !a)")
        renamed = rename_in_expr(expression, {"a": "x"})
        assert renamed.variables() == {"x", "b"}

    def test_rename_preserves_structure(self):
        expression = parse_expression("a ^ b")
        renamed = rename_in_expr(expression, {})
        assert renamed == expression

    def test_rename_in_stmt_assign_and_calls(self):
        program = parse_program(
            """
            decl g;
            main() begin
              decl x;
              x := g;
              call helper(x);
              x := helper2(g);
            end
            helper(v) begin skip; end
            helper2(v) begin return v; end
            """
        )
        body = program.procedure("main").body
        variables = {"g": "G", "x": "x"}
        calls = {"helper": "left__helper", "helper2": "left__helper2"}
        assign = rename_in_stmt(body[0], variables, calls)
        assert isinstance(assign, Assign) and assign.values[0] == VarRef("G")
        call = rename_in_stmt(body[1], variables, calls)
        assert isinstance(call, Call) and call.callee == "left__helper"
        call_assign = rename_in_stmt(body[2], variables, calls)
        assert isinstance(call_assign, CallAssign) and call_assign.callee == "left__helper2"

    def test_rename_procedure_respects_local_shadowing(self):
        program = parse_program(
            """
            decl cache;
            main() begin
              decl cache;
              cache := T;
              call use(cache);
            end
            use(v) begin
              cache := v;
            end
            """
        )
        variables = {"cache": "left__cache"}
        shadowing = rename_procedure(
            program.procedure("main"), "left__main", variables, {}
        )
        # `main` redeclares `cache`, so its body must keep the local name.
        assert isinstance(shadowing.body[0], Assign)
        assert shadowing.body[0].targets == ["cache"]
        assert shadowing.body[1].args[0] == VarRef("cache")
        # `use` does not shadow: its write goes to the renamed global.
        plain = rename_procedure(program.procedure("use"), "left__use", variables, {})
        assert plain.body[0].targets == ["left__cache"]

    def test_rename_procedure_respects_param_shadowing(self):
        program = parse_program(
            """
            decl v;
            main() begin
              call use(v);
            end
            use(v) begin
              v := !v;
            end
            """
        )
        variables = {"v": "left__v"}
        plain = rename_procedure(program.procedure("main"), "m", variables, {})
        assert plain.body[0].args[0] == VarRef("left__v")
        shadowing = rename_procedure(program.procedure("use"), "u", variables, {})
        assert shadowing.body[0].targets == ["v"]
        assert shadowing.body[0].values[0] == NotE(VarRef("v"))

    def test_rename_procedure_keeps_labels(self):
        program = parse_program(
            """
            main() begin
              L: skip;
              goto L;
            end
            """
        )
        renamed = rename_procedure(program.procedure("main"), "thread__main", {}, {})
        assert renamed.name == "thread__main"
        assert renamed.body[0].label == "L"


class TestMergeThreads:
    def test_merge_produces_valid_sequential_program(self):
        program = parse_concurrent_program(CONCURRENT)
        merged, mains = merge_threads(program)
        check_program(merged)
        assert mains == ["left__main", "right__main"]
        assert set(merged.procedures) == {
            "left__main",
            "left__push",
            "right__main",
        }

    def test_shared_globals_kept_private_globals_prefixed(self):
        program = parse_concurrent_program(CONCURRENT)
        merged, _ = merge_threads(program)
        assert "flag" in merged.globals
        assert "left__mine" in merged.globals
        assert "mine" not in merged.globals

    def test_calls_rewritten_within_thread(self):
        program = parse_concurrent_program(CONCURRENT)
        merged, _ = merge_threads(program)
        main_body = merged.procedure("left__main").body
        call = main_body[1]
        assert isinstance(call, Call) and call.callee == "left__push"

    def test_merge_respects_local_shadowing_of_private_globals(self):
        # Regression: `poke` redeclares the thread-private global `cache`.
        # Renaming its uses (but not the declaration) would make the F-write
        # hit the merged global and flip the verdict to unreachable.
        source = """
        shared decl flag;

        thread left begin
          decl cache;
          main() begin
            cache := T;
            call poke();
            if (cache) then target: skip; fi
          end
          poke() begin
            decl cache;
            cache := F;
          end
        end
        """
        merged, mains = merge_threads(parse_concurrent_program(source))
        check_program(merged)
        assert mains == ["left__main"]
        poke = merged.procedure("left__poke")
        assert poke.locals == ["cache"]
        assert poke.body[-1].targets == ["cache"]

        from repro.baselines import run_bebop
        from repro.frontends import resolve_target

        verdict = run_bebop(merged, resolve_target(merged, "left__main:target"))
        assert verdict.reachable is True
