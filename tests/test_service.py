"""Tests for the analysis service stack (:mod:`repro.service`).

Unit coverage of the daemon's robustness machinery, mostly on the
in-process backend (``workers=0`` — same execution path, no process pool):
protocol validation with typed error payloads, the live-node-priced LRU
pool index, the per-program circuit breaker, admission control with
shed-to-ladder semantics, request coalescing, per-request limits, graceful
drain.  Process-pool failover is covered end to end in
``tests/test_server_chaos.py``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.limits import ResourceLimits
from repro.service import (
    AnalysisDaemon,
    CircuitBreaker,
    DaemonConfig,
    ProtocolError,
    SessionPoolIndex,
    content_hash,
    parse_request,
)
from repro.testing import FaultPlan, faults

POSITIVE = """
decl g;
main() begin
  g := T;
  if (g) then target: skip; fi
end
"""

NEGATIVE = """
decl g;
main() begin
  g := F;
  if (g) then target: skip; fi
end
"""


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    yield
    faults.clear()


def run(coro):
    return asyncio.run(coro)


async def _with_daemon(config, scenario):
    daemon = AnalysisDaemon(config)
    await daemon.start()
    try:
        return await scenario(daemon)
    finally:
        await daemon.shutdown(drain=False)


def query(program=POSITIVE, **fields):
    request = {"op": "query", "program": program, "target": "main:target"}
    request.update(fields)
    return request


class TestProtocol:
    def test_content_hash_is_stable_text_identity(self):
        assert content_hash(POSITIVE) == content_hash(POSITIVE)
        assert content_hash(POSITIVE) != content_hash(NEGATIVE)
        assert len(content_hash("")) == 64

    def test_parse_request_builds_a_job(self):
        job = parse_request(query(), job_id="q1")
        assert job.program_hash == content_hash(POSITIVE)
        assert job.algorithm == "ef-opt"
        assert job.target == "main:target"
        assert job.limits is None

    def test_missing_program_is_a_typed_rejection(self):
        with pytest.raises(ProtocolError) as info:
            parse_request({"op": "query"}, job_id="q1")
        assert info.value.payload["type"] == "BadRequest"
        assert "program" in info.value.payload["message"]

    def test_unknown_algorithm_is_rejected(self):
        with pytest.raises(ProtocolError, match="algorithm"):
            parse_request(query(algorithm="magic"), job_id="q1")

    def test_bad_target_is_rejected(self):
        with pytest.raises(ProtocolError, match="target"):
            parse_request(query(target=42), job_id="q1")

    def test_request_limits_override_daemon_defaults(self):
        defaults = ResourceLimits(deadline_seconds=10.0, node_budget=1000)
        job = parse_request(
            query(deadline_seconds=0.5), job_id="q1", default_limits=defaults
        )
        assert job.limits.deadline_seconds == 0.5
        assert job.limits.node_budget == 1000  # untouched default

    def test_invalid_request_limits_are_typed(self):
        with pytest.raises(ProtocolError, match="limits"):
            parse_request(query(node_budget=-5), job_id="q1")

    def test_coalesce_key_separates_algorithms_and_limits(self):
        base = parse_request(query(), job_id="a")
        same = parse_request(query(), job_id="b")
        other_algorithm = parse_request(query(algorithm="summary"), job_id="c")
        other_limits = parse_request(query(deadline_seconds=1.0), job_id="d")
        assert base.coalesce_key() == same.coalesce_key()
        assert base.coalesce_key() != other_algorithm.coalesce_key()
        assert base.coalesce_key() != other_limits.coalesce_key()


class TestSessionPoolIndex:
    def test_lru_eviction_under_budget(self):
        index = SessionPoolIndex(memory_budget_nodes=1000)
        index.touch("aaa", 0, 600)
        index.touch("bbb", 1, 600)
        victims = index.evictions(busy=set())
        assert victims == [("aaa", 0)]
        assert "aaa" not in index and "bbb" in index

    def test_touch_refreshes_recency(self):
        index = SessionPoolIndex(memory_budget_nodes=1000)
        index.touch("aaa", 0, 600)
        index.touch("bbb", 1, 600)
        index.touch("aaa", 0, 600)  # aaa is now the most recent
        assert index.evictions(busy=set()) == [("bbb", 1)]

    def test_busy_sessions_are_spared(self):
        index = SessionPoolIndex(memory_budget_nodes=1000)
        index.touch("aaa", 0, 600)
        index.touch("bbb", 1, 600)
        index.touch("ccc", 0, 600)
        victims = index.evictions(busy={"aaa"})
        assert ("aaa", 0) not in victims
        assert ("bbb", 1) in victims

    def test_most_recent_session_is_never_evicted(self):
        index = SessionPoolIndex(memory_budget_nodes=100)
        index.touch("aaa", 0, 600)  # alone and over budget: still spared
        assert index.evictions(busy=set()) == []

    def test_unbounded_pool_never_evicts(self):
        index = SessionPoolIndex(memory_budget_nodes=None)
        for i in range(10):
            index.touch(f"h{i}", 0, 10_000)
        assert index.evictions(busy=set()) == []

    def test_gc_delta_accounting(self):
        index = SessionPoolIndex()
        assert index.touch("aaa", 0, 100, gc_collections=2) == 2
        assert index.touch("aaa", 0, 100, gc_collections=5) == 3
        assert index.touch("aaa", 0, 100, gc_collections=5) == 0


class TestCircuitBreaker:
    def _clock(self):
        state = {"now": 0.0}

        def clock():
            return state["now"]

        return state, clock

    def test_opens_after_threshold_and_admits_probe_after_cooldown(self):
        state, clock = self._clock()
        breaker = CircuitBreaker(threshold=3, cooldown_seconds=10.0, clock=clock)
        for _ in range(3):
            breaker.record("h", "crashed")
        allowed, retry_after = breaker.allow("h")
        assert not allowed and retry_after > 0
        assert breaker.trips == 1
        state["now"] = 11.0
        allowed, _ = breaker.allow("h")  # half-open probe
        assert allowed
        # ... and the circuit stays armed for everyone else until the probe
        # reports back.
        allowed, _ = breaker.allow("h")
        assert not allowed

    def test_success_heals(self):
        state, clock = self._clock()
        breaker = CircuitBreaker(threshold=2, cooldown_seconds=10.0, clock=clock)
        breaker.record("h", "timeout")
        breaker.record("h", "ok")
        breaker.record("h", "resource")
        assert breaker.allow("h")[0]  # never reached the threshold in a row
        assert breaker.strikes("h") == 1

    def test_user_errors_neither_strike_nor_heal(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record("h", "crashed")
        breaker.record("h", "error")  # a parse error says nothing
        assert breaker.strikes("h") == 1
        breaker.record("h", "crashed")
        assert not breaker.allow("h")[0]

    def test_hashes_are_independent(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record("bad", "crashed")
        assert not breaker.allow("bad")[0]
        assert breaker.allow("good")[0]


class TestDaemonQueries:
    def test_query_and_warm_repeat(self):
        async def scenario(daemon):
            first = await daemon.handle_request(query(id=1))
            second = await daemon.handle_request(query(id=2))
            return first, second

        first, second = run(
            _with_daemon(DaemonConfig(workers=0), scenario)
        )
        assert first["ok"] and first["reachable"] is True
        assert "warm" not in first
        assert second["ok"] and second["reachable"] is True
        assert second["warm"] is True

    def test_typed_error_for_malformed_request(self):
        async def scenario(daemon):
            return (
                await daemon.handle_request({"op": "query"}),
                await daemon.handle_request({"op": "wat"}),
                await daemon.handle_request("not a dict"),
            )

        missing, unknown_op, not_dict = run(
            _with_daemon(DaemonConfig(workers=0), scenario)
        )
        for response in (missing, unknown_op, not_dict):
            assert response["ok"] is False
            assert response["status"] == "error"
            assert response["error"]["type"] == "BadRequest"

    def test_user_error_in_program_is_typed_not_a_crash(self):
        async def scenario(daemon):
            return await daemon.handle_request(query(program="main( begin oops"))

        response = run(_with_daemon(DaemonConfig(workers=0), scenario))
        assert response["status"] == "error"
        assert "message" in response["error"]

    def test_per_request_deadline_is_typed_and_session_survives(self):
        async def scenario(daemon):
            starved = await daemon.handle_request(query(deadline_seconds=0.0))
            healthy = await daemon.handle_request(query())
            return starved, healthy

        starved, healthy = run(_with_daemon(DaemonConfig(workers=0), scenario))
        assert starved["status"] == "timeout"
        assert starved["error"]["resource"] == "wall-clock"
        # Exhaustion left the pooled session usable: the next request on the
        # same program answers normally.
        assert healthy["ok"] and healthy["reachable"] is True

    def test_per_request_node_budget_is_typed(self):
        async def scenario(daemon):
            return await daemon.handle_request(query(node_budget=2))

        response = run(_with_daemon(DaemonConfig(workers=0), scenario))
        assert response["status"] == "resource"
        assert response["error"]["resource"] == "bdd-nodes"

    def test_coalescing_shares_one_execution(self):
        async def scenario(daemon):
            responses = await asyncio.gather(
                *[daemon.handle_request(query(id=i)) for i in range(4)]
            )
            return responses, daemon.metrics()

        config = DaemonConfig(workers=0, shed_threshold=64, max_pending=64)
        responses, metrics = run(_with_daemon(config, scenario))
        assert all(r["ok"] and r["reachable"] is True for r in responses)
        assert metrics["counters"]["coalesced"] >= 1
        # One solve served every request: at most one execution was real.
        assert metrics["counters"]["answered"] == 1

    def test_draining_daemon_rejects_with_typed_status(self):
        async def scenario(daemon):
            await daemon.shutdown(drain=False)
            return await daemon.handle_request(query())

        async def wrapper():
            daemon = AnalysisDaemon(DaemonConfig(workers=0))
            await daemon.start()
            return await scenario(daemon)

        response = run(wrapper())
        assert response["status"] == "draining"
        assert response["error"]["type"] == "ServiceDraining"

    def test_health_and_metrics_ops(self):
        async def scenario(daemon):
            await daemon.handle_request(query())
            health = await daemon.handle_request({"op": "health", "id": "h"})
            metrics = await daemon.handle_request({"op": "metrics"})
            return health, metrics

        health, metrics = run(_with_daemon(DaemonConfig(workers=0), scenario))
        assert health["ok"] and health["status"] == "ok" and health["id"] == "h"
        assert health["pool"]["sessions"] == 1
        assert health["pool"]["live_nodes"] > 0
        assert metrics["counters"]["solves"] == 1
        assert metrics["queries_per_solve"] >= 1.0
        assert metrics["statuses"]["ok"] == 1


class TestAdmissionControl:
    def test_overload_sheds_to_ladder_then_rejects(self):
        # shed_threshold=1, max_pending=2: with one slow request in flight, a
        # second is shed to the cheaper algorithm; with two in flight, a
        # third is rejected outright with a typed Overloaded payload.
        plan = FaultPlan(delay_query="slow", delay_seconds=0.6)

        async def scenario(daemon):
            slow_task = asyncio.ensure_future(
                daemon.handle_request(query(name="slow"))
            )
            await asyncio.sleep(0.15)  # the slow request is now in flight
            # Admitted while pending == 1 >= shed_threshold: shed to the
            # ladder.  It stays in flight behind the slow request (single
            # inline executor), holding pending at 2.
            shed_task = asyncio.ensure_future(
                daemon.handle_request(query(NEGATIVE, name="shed-me"))
            )
            await asyncio.sleep(0.05)
            rejected = await daemon.handle_request(query(NEGATIVE, name="reject-me"))
            slow, shed = await asyncio.gather(slow_task, shed_task)
            return slow, shed, rejected, daemon.metrics()

        config = DaemonConfig(
            workers=0, shed_threshold=1, max_pending=2, fault_plan=plan
        )
        slow, shed, rejected, metrics = run(_with_daemon(config, scenario))
        assert slow["ok"]
        # Shed to the ladder: answered NOW by the cheaper algorithm, verdict
        # preserved (all sequential algorithms agree by construction).
        assert shed["ok"] and shed["reachable"] is False
        assert shed["shed"] is True
        assert shed["shed_from"] == "ef-opt"
        assert shed["algorithm"] == "getafix-summary"
        # Past the hard cap: typed rejection, nothing queued, nothing dropped.
        assert rejected["ok"] is False
        assert rejected["status"] == "shed"
        assert rejected["error"]["type"] == "Overloaded"
        assert metrics["counters"]["shed_ladder"] >= 1
        assert metrics["counters"]["shed_rejected"] >= 1

    def test_summary_requests_cannot_shed_further(self):
        # The ladder has no rung below summary: an overloaded summary query
        # is simply admitted (still bounded by max_pending).
        plan = FaultPlan(delay_query="slow", delay_seconds=0.4)

        async def scenario(daemon):
            slow_task = asyncio.ensure_future(
                daemon.handle_request(query(name="slow"))
            )
            await asyncio.sleep(0.1)
            summary = await daemon.handle_request(
                query(NEGATIVE, algorithm="summary")
            )
            await slow_task
            return summary

        config = DaemonConfig(
            workers=0, shed_threshold=1, max_pending=8, fault_plan=plan
        )
        summary = run(_with_daemon(config, scenario))
        assert summary["ok"] and "shed" not in summary


class TestCircuitBreakerIntegration:
    def test_crashing_program_is_quarantined_others_served(self):
        plan = FaultPlan(fail_query="boom")  # crashes on every attempt

        async def scenario(daemon):
            responses = [
                await daemon.handle_request(query(name="boom", id=i))
                for i in range(3)
            ]
            opened = await daemon.handle_request(query(name="boom", id="after"))
            healthy = await daemon.handle_request(query(NEGATIVE, name="fine"))
            return responses, opened, healthy, daemon.metrics()

        config = DaemonConfig(workers=0, breaker_threshold=3, fault_plan=plan)
        responses, opened, healthy, metrics = run(_with_daemon(config, scenario))
        assert all(r["status"] == "crashed" for r in responses)
        assert opened["status"] == "circuit-open"
        assert opened["error"]["type"] == "CircuitOpen"
        assert opened["error"]["retry_after_seconds"] > 0
        # The quarantine is per program hash: other programs keep being served.
        assert healthy["ok"] and healthy["reachable"] is False
        assert metrics["breaker"]["trips"] == 1
        assert metrics["counters"]["circuit_open_rejections"] == 1


class TestPoolEviction:
    def test_memory_pressure_evicts_lru_session(self):
        async def scenario(daemon):
            first = await daemon.handle_request(query(POSITIVE))
            # Tighten the budget below one session so serving a second
            # program must evict the first (LRU, not busy, not most recent).
            total = daemon.pool_index.total_live_nodes()
            daemon.pool_index.memory_budget_nodes = total - 1
            second = await daemon.handle_request(query(NEGATIVE))
            metrics = daemon.metrics()
            # The evicted program still answers (a fresh session, cold).
            third = await daemon.handle_request(query(POSITIVE))
            return first, second, third, metrics

        config = DaemonConfig(workers=0, memory_budget_nodes=None)
        first, second, third, metrics = run(_with_daemon(config, scenario))
        assert first["ok"] and second["ok"] and third["ok"]
        assert metrics["counters"]["evictions"] >= 1
        assert metrics["counters"]["evicted_nodes"] > 0
        assert metrics["pool"]["sessions"] == 1
        assert "warm" not in third  # its session was evicted: cold again


class TestDaemonConfigValidation:
    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            DaemonConfig(workers=-1)
        with pytest.raises(ValueError):
            DaemonConfig(max_pending=0)
        with pytest.raises(ValueError):
            DaemonConfig(shed_threshold=0)
        with pytest.raises(ValueError):
            DaemonConfig(shed_threshold=10, max_pending=5)


class TestServerCliValidation:
    @pytest.mark.parametrize(
        "flags,named",
        [
            (["--workers", "-1"], "--workers"),
            (["--max-pending", "0"], "--max-pending"),
            (["--shed-threshold", "0"], "--shed-threshold"),
            (["--shed-threshold", "9", "--max-pending", "3"], "--shed-threshold"),
            (["--breaker-threshold", "0"], "--breaker-threshold"),
            (["--deadline", "-1"], "--deadline"),
            (["--node-budget", "0"], "--node-budget"),
            (["--max-iterations", "-2"], "--max-iterations"),
            (["--drain-timeout", "-1"], "--drain-timeout"),
            (["--port", "70000"], "--port"),
        ],
    )
    def test_bad_flags_exit_two(self, capsys, flags, named):
        from repro.frontends.server import main

        status = main(flags)
        captured = capsys.readouterr()
        assert status == 2
        assert named in captured.err
        assert "Traceback" not in captured.err
