"""Tests for control-flow-graph construction."""

import pytest

from repro.boolprog import StaticError, build_cfg, parse_program
from repro.boolprog.cfg import ENTRY_PC, ERROR_PC, EXIT_PC, RETURN_SLOT_PREFIX


def cfg_of(source: str):
    return build_cfg(parse_program(source))


class TestProcedureCfg:
    def test_reserved_pcs(self):
        cfg = cfg_of("main() begin skip; end")
        main = cfg.procedure_cfg("main")
        assert main.entry == ENTRY_PC == 0
        assert main.exit == EXIT_PC == 1
        assert main.error == ERROR_PC == 2
        assert main.num_pcs >= 4

    def test_straightline_edges(self):
        cfg = cfg_of(
            """
            decl g;
            main() begin
              decl x;
              x := T;
              g := x;
            end
            """
        )
        main = cfg.procedure_cfg("main")
        # entry -> assign -> assign -> fall-off-end edge to exit.
        assert len(main.internal_edges) == 3
        assert main.internal_edges[0].source == ENTRY_PC
        assert main.internal_edges[-1].target == EXIT_PC

    def test_if_produces_two_guarded_edges(self):
        cfg = cfg_of(
            """
            main() begin
              decl x;
              if (x) then skip; else skip; fi
            end
            """
        )
        main = cfg.procedure_cfg("main")
        guards = [edge for edge in main.internal_edges if edge.guard is not None]
        assert len(guards) == 2

    def test_while_produces_back_edge(self):
        cfg = cfg_of(
            """
            main() begin
              decl x;
              while (x) do x := *; od
            end
            """
        )
        main = cfg.procedure_cfg("main")
        assert any(edge.target == ENTRY_PC or edge.target < edge.source for edge in main.internal_edges)

    def test_call_edges(self):
        cfg = cfg_of(
            """
            main() begin
              decl x;
              x := f(T);
              call g_proc(x);
            end
            f(a) begin return a; end
            g_proc(b) begin skip; end
            """
        )
        main = cfg.procedure_cfg("main")
        assert len(main.call_edges) == 2
        first, second = main.call_edges
        assert first.callee == "f" and first.targets == ["x"]
        assert second.callee == "g_proc" and second.targets == []

    def test_return_slots(self):
        cfg = cfg_of(
            """
            main() begin skip; end
            pair(a) begin return a, !a; end
            """
        )
        pair = cfg.procedure_cfg("pair")
        assert f"{RETURN_SLOT_PREFIX}0" in pair.slot_of
        assert f"{RETURN_SLOT_PREFIX}1" in pair.slot_of
        return_edges = [edge for edge in pair.internal_edges if edge.target == EXIT_PC and edge.assigns]
        assert return_edges and set(return_edges[0].assigns) == {"__ret0", "__ret1"}

    def test_assert_creates_error_edge(self):
        cfg = cfg_of(
            """
            decl g;
            main() begin assert(!g); end
            """
        )
        main = cfg.procedure_cfg("main")
        assert main.has_asserts
        assert any(edge.target == ERROR_PC for edge in main.internal_edges)
        assert cfg.error_locations() == [(cfg.module_of("main"), ERROR_PC)]

    def test_labels_and_goto(self):
        cfg = cfg_of(
            """
            main() begin
              decl x;
              top: x := *;
              goto top;
            end
            """
        )
        main = cfg.procedure_cfg("main")
        label_pc = main.label_pc("top")
        assert any(edge.target == label_pc and not edge.assigns for edge in main.internal_edges)
        module, pc = cfg.label_location("main", "top")
        assert module == cfg.module_of("main") and pc == label_pc

    def test_unknown_goto_target_raises(self):
        with pytest.raises(StaticError):
            cfg_of("main() begin goto nowhere; end")

    def test_duplicate_label_raises(self):
        with pytest.raises(StaticError):
            cfg_of("main() begin L: skip; L: skip; end")


class TestProgramCfg:
    def test_module_numbering(self):
        cfg = cfg_of(
            """
            main() begin skip; end
            helper() begin skip; end
            """
        )
        assert cfg.module_of("main") == 0
        assert cfg.module_of("helper") == 1
        assert cfg.max_pc >= 4

    def test_max_slots_counts_params_locals_and_returns(self):
        cfg = cfg_of(
            """
            main() begin skip; end
            wide(a, b) begin decl c, d; return a, b; end
            """
        )
        # a, b, c, d plus two return slots.
        assert cfg.max_slots == 6
