"""Property tests for the deterministic cube-picking kernel.

``pick_cube`` is the witness subsystem's only source of concrete values, so
its contract is load-bearing:

* **Soundness** — the picked cube evaluates the function to TRUE.
* **Totality and minimality** — the cube assigns every requested variable,
  and is the lexicographically smallest satisfying total assignment in
  level order with False < True.
* **Store independence** — the dict store, the array store and a
  snapshot-overlay manager all pick the *identical* cube for the same
  function, so traces extracted from a pooled session, a shard worker or a
  snapshot attach are byte-for-byte equal.
* **Complement edges** — picking through a negated (complement-edge) root
  is just as sound; ``sat_one`` (the greedy seed) shares these properties
  on its restricted (partial-assignment) contract.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager, SnapshotOverlayManager, SnapshotView
from repro.bdd import snapshot as bdd_snapshot
from repro.bdd.manager import BddError

from test_bdd_properties import (
    VAR_NAMES,
    all_envs,
    build_bdd,
    eval_concrete,
    expr_strategy,
)


def _named(mgr, cube):
    """A pick_cube result keyed by variable name (store-comparable form)."""
    return {mgr.var_name(index): value for index, value in cube.items()}


def _lex_smallest(expr):
    """Brute-force reference: first satisfying env in False<True level order."""
    for values in itertools.product([False, True], repeat=len(VAR_NAMES)):
        env = dict(zip(VAR_NAMES, values))
        if eval_concrete(expr, env):
            return env
    return None


@settings(max_examples=150, deadline=None)
@given(expr_strategy())
def test_pick_cube_satisfies_and_is_lex_smallest(expr):
    mgr = BddManager(VAR_NAMES)
    node = build_bdd(expr, mgr)
    cube = mgr.pick_cube(node, VAR_NAMES)
    expected = _lex_smallest(expr)
    if expected is None:
        assert cube is None
        return
    assert cube is not None
    named = _named(mgr, cube)
    assert set(named) == set(VAR_NAMES)
    assert mgr.eval(node, named) is True
    assert named == expected


@settings(max_examples=150, deadline=None)
@given(expr_strategy())
def test_pick_cube_deterministic_across_stores(expr):
    array_mgr = BddManager(VAR_NAMES)
    dict_mgr = BddManager(VAR_NAMES, store="dict")
    array_node = build_bdd(expr, array_mgr)
    dict_node = build_bdd(expr, dict_mgr)
    array_cube = array_mgr.pick_cube(array_node, VAR_NAMES)
    dict_cube = dict_mgr.pick_cube(dict_node, VAR_NAMES)
    if array_cube is None:
        assert dict_cube is None
        return
    assert _named(array_mgr, array_cube) == _named(dict_mgr, dict_cube)


@settings(max_examples=100, deadline=None)
@given(expr_strategy())
def test_pick_cube_complement_edge(expr):
    mgr = BddManager(VAR_NAMES)
    node = mgr.not_(build_bdd(expr, mgr))
    cube = mgr.pick_cube(node, VAR_NAMES)
    if cube is None:
        assert node == mgr.FALSE
        return
    assert mgr.eval(node, _named(mgr, cube)) is True


@settings(max_examples=100, deadline=None)
@given(expr_strategy())
def test_sat_one_satisfies_on_its_support(expr):
    mgr = BddManager(VAR_NAMES)
    node = build_bdd(expr, mgr)
    assignment = mgr.sat_one(node)
    if assignment is None:
        assert node == mgr.FALSE
        return
    # sat_one is partial (support only); unmentioned variables are free.
    named = {mgr.var_name(index): value for index, value in assignment.items()}
    env = {name: named.get(name, False) for name in VAR_NAMES}
    assert mgr.eval(node, env) is True
    assert set(assignment) <= mgr.support(node)


def test_pick_cube_terminals_and_defaults():
    mgr = BddManager(VAR_NAMES)
    assert mgr.pick_cube(mgr.FALSE) is None
    assert mgr.pick_cube(mgr.FALSE, VAR_NAMES) is None
    # TRUE has empty support: without variables the cube is empty, with
    # variables it is the all-False assignment.
    assert mgr.pick_cube(mgr.TRUE) == {}
    cube = mgr.pick_cube(mgr.TRUE, VAR_NAMES)
    assert _named(mgr, cube) == {name: False for name in VAR_NAMES}


def test_pick_cube_requires_support_coverage():
    mgr = BddManager(VAR_NAMES)
    node = mgr.and_(mgr.var("p"), mgr.var("q"))
    with pytest.raises(BddError, match="support"):
        mgr.pick_cube(node, ["p"])


def test_pick_cube_matches_snapshot_overlay():
    mgr = BddManager(VAR_NAMES)
    node = mgr.ref(
        mgr.or_(
            mgr.and_(mgr.var("p"), mgr.not_(mgr.var("r"))),
            mgr.and_(mgr.var("q"), mgr.var("s")),
        )
    )
    baseline = mgr.pick_cube(node, VAR_NAMES)
    mgr.collect_garbage()
    name = bdd_snapshot.freeze(mgr)
    try:
        with SnapshotView(name) as view:
            overlay = SnapshotOverlayManager(view)
            # The frozen root is the same signed edge in the overlay; the
            # pick must be identical, and an overlay-built negation must
            # still pick a sound cube.
            assert overlay.pick_cube(node, VAR_NAMES) == baseline
            negated = overlay.not_(node)
            cube = overlay.pick_cube(negated, VAR_NAMES)
            assert cube is not None
            assert overlay.eval(negated, _named(overlay, cube)) is True
    finally:
        bdd_snapshot.unlink(name)


def test_pick_cube_exhaustive_three_vars():
    """Every 3-variable function: cube satisfies and matches brute force."""
    names = VAR_NAMES[:3]
    envs = list(itertools.product([False, True], repeat=3))
    for truth_table in range(1 << 8):
        mgr = BddManager(names)
        node = mgr.FALSE
        for i, values in enumerate(envs):
            if truth_table >> i & 1:
                cube_node = mgr.TRUE
                for name, value in zip(names, values):
                    literal = mgr.var(name) if value else mgr.not_(mgr.var(name))
                    cube_node = mgr.and_(cube_node, literal)
                node = mgr.or_(node, cube_node)
        cube = mgr.pick_cube(node, names)
        satisfying = [values for i, values in enumerate(envs) if truth_table >> i & 1]
        if not satisfying:
            assert cube is None
            continue
        named = _named(mgr, cube)
        assert tuple(named[name] for name in names) == min(satisfying)
