"""Tests for the resource-governed execution envelope.

The contract under test (see :mod:`repro.limits` and :mod:`repro.errors`):
every budget — wall-clock deadline, live-node cap, iteration bound, the
baselines' exploration caps — trips as a *typed* :class:`ResourceExhausted`
subclass carrying consumed-vs-budget context; enforcement is cooperative
(allocation checkpoints and GC safe points) and never corrupts the manager,
so a session that blew its envelope stays usable and still closes back to
the empty baseline; the CLI turns exhaustion into exit status 3; the batch
layer classifies it as ``resource``/``timeout`` rather than ``crashed``.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.algorithms import run_batch, run_sequential
from repro.api import AnalysisSession
from repro.bdd import BddManager
from repro.errors import (
    AnalysisTimeout,
    ExplorationBudgetExceeded,
    NodeBudgetExceeded,
    ResourceExhausted,
)
from repro.fixedpoint.evaluator import EvaluationError
from repro.frontends import check_reachability, main
from repro.limits import DEGRADATION_LADDER, ResourceLimits
from repro.parallel import BatchQuery, run_shards
from repro.testing import FaultPlan, faults

VAR_NAMES = ["a", "b", "c", "d"]

POSITIVE = """
decl g;
main() begin
  g := T;
  if (g) then target: skip; fi
end
"""

NEGATIVE = """
decl g;
main() begin
  g := F;
  if (g) then target: skip; fi
end
"""


class TestTypedErrors:
    def test_hierarchy_and_detail(self):
        exc = NodeBudgetExceeded(consumed=1500, budget=1000)
        assert isinstance(exc, ResourceExhausted)
        assert exc.resource == "bdd-nodes"
        assert exc.detail() == {
            "type": "NodeBudgetExceeded",
            "resource": "bdd-nodes",
            "consumed": 1500,
            "budget": 1000,
        }
        assert "1500" in str(exc) and "1000" in str(exc)

    def test_timeout_message_and_fields(self):
        exc = AnalysisTimeout(consumed=2.5, budget=2.0)
        assert exc.resource == "wall-clock"
        assert "2.500s" in str(exc) and "2.000s" in str(exc)

    def test_evaluation_error_is_resource_exhausted(self):
        # The evaluator's iteration-budget error predates the envelope; it
        # now participates in the taxonomy instead of being a bare Exception.
        exc = EvaluationError("no fixpoint", consumed=7, budget=7)
        assert isinstance(exc, ResourceExhausted)
        assert exc.resource == "iterations"

    def test_errors_survive_pickling(self):
        # Shard workers ship these across the pool boundary inside results.
        for exc in (
            AnalysisTimeout(consumed=1.0, budget=0.5),
            NodeBudgetExceeded(consumed=10, budget=5),
            ExplorationBudgetExceeded("boom", resource="transitions", consumed=9, budget=8),
        ):
            clone = pickle.loads(pickle.dumps(exc))
            assert type(clone) is type(exc)
            assert clone.detail() == exc.detail()


class TestResourceLimitsSpec:
    def test_validation(self):
        assert ResourceLimits(deadline_seconds=0.0).bounded  # 0 is a valid deadline
        with pytest.raises(ValueError):
            ResourceLimits(deadline_seconds=-1.0)
        with pytest.raises(ValueError):
            ResourceLimits(node_budget=0)
        with pytest.raises(ValueError):
            ResourceLimits(max_iterations=0)
        assert not ResourceLimits().bounded
        assert not ResourceLimits(degrade=True).bounded

    def test_hashable_and_picklable(self):
        # Limits ride inside BatchQuery across process boundaries and
        # participate in shard group keys, so both properties are load-bearing.
        limits = ResourceLimits(deadline_seconds=1.5, node_budget=1000)
        assert pickle.loads(pickle.dumps(limits)) == limits
        assert len({limits, ResourceLimits(deadline_seconds=1.5, node_budget=1000)}) == 1

    def test_ladder_bottoms_out_at_summary(self):
        assert DEGRADATION_LADDER == {"ef-opt": "summary", "ef": "summary"}
        assert "summary" not in DEGRADATION_LADDER  # exhaustion there is final


class TestManagerEnforcement:
    def test_node_budget_trips_at_allocation(self):
        mgr = BddManager(VAR_NAMES)
        mgr.set_node_budget(2)
        mgr.var("a")  # terminal + one node: at the budget, not over it
        with pytest.raises(NodeBudgetExceeded) as info:
            mgr.and_(mgr.var("a"), mgr.var("b"))
        assert info.value.budget == 2
        assert info.value.consumed > 2

    def test_budget_respects_reclaimable_garbage(self):
        # The kernel pulls the GC trigger under the budget, so transient
        # garbage is swept before the hard bound trips.
        mgr = BddManager(VAR_NAMES, gc_threshold=4)
        mgr.set_node_budget(64)
        for i in range(30):
            mgr.xor(mgr.var("a"), mgr.var("b"))
            mgr.maybe_collect()
        assert len(mgr) <= 64

    def test_zero_deadline_trips_on_first_allocation(self):
        mgr = BddManager(VAR_NAMES)
        mgr.set_deadline(0.0)
        with pytest.raises(AnalysisTimeout) as info:
            mgr.var("a")
        assert info.value.budget == 0.0
        assert info.value.consumed >= 0.0

    def test_deadline_checked_at_safe_points(self):
        mgr = BddManager(VAR_NAMES)
        mgr.var("a")
        mgr.set_deadline(0.0)
        mgr._deadline_countdown = 10**9  # allocation checks disarmed
        with pytest.raises(AnalysisTimeout):
            mgr.maybe_collect()

    def test_clear_deadline_restores_service(self):
        mgr = BddManager(VAR_NAMES)
        mgr.set_deadline(0.0)
        with pytest.raises(AnalysisTimeout):
            mgr.var("a")
        mgr.clear_deadline()
        edge = mgr.and_(mgr.var("a"), mgr.var("b"))
        assert mgr.eval(edge, {"a": True, "b": True, "c": False, "d": False})

    def test_stats_report_the_armed_envelope(self):
        mgr = BddManager(VAR_NAMES)
        assert mgr.stats()["limits"] == {"node_budget": None, "deadline_armed": False}
        mgr.set_node_budget(100)
        mgr.set_deadline(60.0)
        assert mgr.stats()["limits"] == {"node_budget": 100, "deadline_armed": True}


class TestSessionGovernance:
    @pytest.mark.parametrize("algorithm", ["summary", "ef", "ef-opt"])
    def test_iteration_budget_is_typed_for_every_algorithm(self, algorithm):
        with pytest.raises(ResourceExhausted) as info:
            check_reachability(
                POSITIVE,
                target="main:target",
                algorithm=algorithm,
                limits=ResourceLimits(max_iterations=1),
            )
        assert info.value.resource == "iterations"
        assert info.value.budget == 1

    def test_deadline_zero_is_typed(self):
        with pytest.raises(AnalysisTimeout):
            check_reachability(
                POSITIVE,
                target="main:target",
                limits=ResourceLimits(deadline_seconds=0.0),
            )

    def test_session_survives_exhaustion_and_recovers(self):
        session = AnalysisSession(
            POSITIVE, default_algorithm="ef", limits=ResourceLimits(max_iterations=1)
        )
        with pytest.raises(ResourceExhausted):
            session.check("main:target")
        # Lifting the envelope makes the same session answer normally: the
        # compiled templates and plans survived the failed query.
        session.set_limits(None)
        result = session.check("main:target")
        assert result.reachable
        session.close()

    def test_session_deadline_disarms_between_queries(self):
        # The deadline is per query: a session with a generous envelope must
        # not accumulate elapsed time across queries.
        session = AnalysisSession(
            POSITIVE,
            default_algorithm="ef",
            limits=ResourceLimits(deadline_seconds=30.0),
        )
        try:
            for _ in range(3):
                assert session.check("main:target").reachable
            mgr = next(iter(session._states.values())).backend.manager
            assert mgr.stats()["limits"]["deadline_armed"] is False
        finally:
            session.close()

    def test_degradation_ladder_records_origin(self):
        # Deterministic exhaustion: the fault plan makes every ef-opt query
        # raise an injected budget error, so the ladder retries as summary.
        faults.install(FaultPlan(exhaust_algorithms=("ef-opt",)))
        try:
            result = check_reachability(
                POSITIVE,
                target="main:target",
                algorithm="ef-opt",
                limits=ResourceLimits(node_budget=10_000, degrade=True),
            )
        finally:
            faults.clear()
        assert result.reachable
        assert result.degraded_from == "ef-opt"
        assert result.algorithm == "getafix-summary"

    def test_exhaustion_without_degrade_reraises(self):
        faults.install(FaultPlan(exhaust_algorithms=("ef-opt",)))
        try:
            with pytest.raises(NodeBudgetExceeded):
                check_reachability(
                    POSITIVE,
                    target="main:target",
                    algorithm="ef-opt",
                    limits=ResourceLimits(node_budget=10_000),
                )
        finally:
            faults.clear()

    def test_summary_exhaustion_is_final_even_with_degrade(self):
        faults.install(FaultPlan(exhaust_algorithms=("summary",)))
        try:
            with pytest.raises(NodeBudgetExceeded):
                check_reachability(
                    POSITIVE,
                    target="main:target",
                    algorithm="summary",
                    limits=ResourceLimits(node_budget=10_000, degrade=True),
                )
        finally:
            faults.clear()


class TestBaselineBudgets:
    def _locations(self, source, target):
        from repro.boolprog import parse_program
        from repro.frontends import resolve_target

        program = parse_program(source)
        return program, resolve_target(program, target)

    def test_bebop_budget_is_typed(self):
        from repro.baselines import BebopSolver

        program, locations = self._locations(POSITIVE, "main:target")
        with pytest.raises(ExplorationBudgetExceeded) as info:
            BebopSolver(program).check(locations, max_path_edges=1)
        assert info.value.resource == "path-edges"
        assert info.value.budget == 1
        assert info.value.consumed > 1

    def test_moped_budget_is_typed(self):
        from repro.baselines import MopedSolver

        program, locations = self._locations(POSITIVE, "main:target")
        with pytest.raises(ExplorationBudgetExceeded) as info:
            MopedSolver(program).check(locations, max_transitions=1)
        assert info.value.resource == "transitions"

    def test_explicit_concurrent_budget_is_typed(self):
        from repro.baselines import ConcurrentExplicitSolver
        from repro.boolprog import parse_concurrent_program
        from repro.frontends.getafix import _resolve_concurrent_target

        source = """
        shared decl a;
        init a := F;
        thread one begin
          main() begin
            if (a) then hit: skip; fi
          end
        end
        thread two begin
          main() begin a := T; end
        end
        """
        program = parse_concurrent_program(source)
        locations = _resolve_concurrent_target(program, "one:main:hit")
        with pytest.raises(ExplorationBudgetExceeded) as info:
            ConcurrentExplicitSolver(program).check(
                locations, context_switches=2, max_configurations=1
            )
        assert info.value.resource == "configurations"


class TestBatchClassification:
    def test_resource_failures_are_not_crashes(self):
        queries = [
            BatchQuery(
                name="starved",
                program=POSITIVE,
                target="main:target",
                limits=ResourceLimits(max_iterations=1),
            ),
            BatchQuery(name="healthy", program=NEGATIVE, target="main:target"),
        ]
        results, mode, _ = run_shards(queries, jobs=1)
        by_name = {shard.name: shard for shard in results}
        assert by_name["starved"].status == "resource"
        assert by_name["starved"].error_detail["resource"] == "iterations"
        assert by_name["healthy"].status == "ok"
        assert by_name["healthy"].result.reachable is False

    def test_run_batch_applies_shared_limits_and_reports(self):
        report = run_batch(
            [
                BatchQuery(name="p", program=POSITIVE, target="main:target"),
                BatchQuery(name="n", program=NEGATIVE, target="main:target"),
            ],
            jobs=1,
            limits=ResourceLimits(deadline_seconds=0.0),
        )
        assert len(report.resource_failures()) == 2
        assert not report.crash_failures()
        assert report.status_counts() == {"timeout": 2}
        rows = report.rows()
        assert all(row["status"] == "timeout" for row in rows)
        assert all(row["error_detail"]["resource"] == "wall-clock" for row in rows)
        table = report.format_table()
        assert "ERROR[timeout]" in table and "statuses: timeout=2" in table

    def test_per_query_limits_shard_grouping(self):
        # Queries with different envelopes must not share a session group.
        limits = ResourceLimits(max_iterations=1)
        queries = [
            BatchQuery(name="tight", program=POSITIVE, target="main:target", limits=limits),
            BatchQuery(name="loose", program=POSITIVE, target="main:target"),
        ]
        results, _, _ = run_shards(queries, jobs=1)
        by_name = {shard.name: shard for shard in results}
        assert by_name["tight"].status == "resource"
        assert by_name["loose"].status == "ok"
        assert by_name["loose"].result.reachable


CONCURRENT_HANDOFF = """
shared decl a, b;
init a := F, b := F;
thread ping begin
  main() begin
    a := T;
    if (b) then
      hit: skip;
    fi
  end
end
thread pong begin
  main() begin
    if (a) then b := T; fi
  end
end
"""


class TestConcurrentEngineLimits:
    """The bounded context-switching engine honors the same envelope.

    ``run_concurrent`` arms the limits on its private manager: deadline and
    node-budget exhaustion trip as the typed errors, never corrupt shared
    state (an immediate re-run without limits answers normally), and the
    batch path classifies them as ``timeout``/``resource`` — not crashes.
    """

    def _program_and_locations(self):
        from repro.boolprog import parse_concurrent_program
        from repro.encode.concurrent import ConcurrentEncoder

        program = parse_concurrent_program(CONCURRENT_HANDOFF)
        encoder = ConcurrentEncoder(program)
        return program, [encoder.label_location("ping", "main", "hit")]

    def test_deadline_exhaustion_is_typed_and_recoverable(self):
        from repro.algorithms import run_concurrent

        program, locations = self._program_and_locations()
        with pytest.raises(AnalysisTimeout) as info:
            run_concurrent(
                program,
                locations,
                context_switches=2,
                limits=ResourceLimits(deadline_seconds=0.0),
            )
        assert info.value.resource == "wall-clock"
        # Exhaustion left nothing behind: the very next run, same program,
        # no envelope, answers normally.
        result = run_concurrent(program, locations, context_switches=2)
        assert result.reachable

    def test_node_budget_exhaustion_is_typed_and_recoverable(self):
        from repro.algorithms import run_concurrent

        program, locations = self._program_and_locations()
        with pytest.raises(NodeBudgetExceeded) as info:
            run_concurrent(
                program,
                locations,
                context_switches=2,
                limits=ResourceLimits(node_budget=2),
            )
        assert info.value.resource == "bdd-nodes"
        assert info.value.consumed > info.value.budget
        result = run_concurrent(program, locations, context_switches=2)
        assert result.reachable

    def test_iteration_budget_overrides_engine_default(self):
        from repro.algorithms import run_concurrent

        program, locations = self._program_and_locations()
        with pytest.raises(ResourceExhausted) as info:
            run_concurrent(
                program,
                locations,
                context_switches=2,
                limits=ResourceLimits(max_iterations=1),
            )
        assert info.value.resource == "iterations"

    def test_concurrent_batch_reports_resource_status(self):
        # The batch path classifies concurrent exhaustion exactly like
        # sequential exhaustion: status resource/timeout with the
        # consumed-vs-budget detail, siblings unaffected.
        queries = [
            BatchQuery(
                name="starved",
                program=CONCURRENT_HANDOFF,
                target="ping:main:hit",
                concurrent=True,
                context_switches=2,
                limits=ResourceLimits(node_budget=2),
            ),
            BatchQuery(
                name="healthy",
                program=CONCURRENT_HANDOFF,
                target="ping:main:hit",
                concurrent=True,
                context_switches=2,
            ),
        ]
        results, _, _ = run_shards(queries, jobs=1)
        by_name = {shard.name: shard for shard in results}
        assert by_name["starved"].status == "resource"
        assert by_name["starved"].error_detail["resource"] == "bdd-nodes"
        assert by_name["healthy"].status == "ok"
        assert by_name["healthy"].result.reachable

    def test_concurrent_batch_timeout_status(self):
        report = run_batch(
            [
                BatchQuery(
                    name="deadline",
                    program=CONCURRENT_HANDOFF,
                    target="ping:main:hit",
                    concurrent=True,
                    limits=ResourceLimits(deadline_seconds=0.0),
                )
            ],
            jobs=1,
        )
        assert report.status_counts() == {"timeout": 1}
        assert report.rows()[0]["error_detail"]["resource"] == "wall-clock"


class TestCliExitCodes:
    def _write(self, tmp_path, name, source):
        path = tmp_path / name
        path.write_text(source)
        return path

    def test_deadline_exhaustion_exits_three(self, tmp_path, capsys):
        path = self._write(tmp_path, "pos.bp", POSITIVE)
        status = main([str(path), "--target", "main:target", "--deadline", "0"])
        assert status == 3
        assert "deadline exceeded" in capsys.readouterr().err

    def test_node_budget_exhaustion_exits_three(self, tmp_path, capsys):
        path = self._write(tmp_path, "pos.bp", POSITIVE)
        status = main([str(path), "--target", "main:target", "--node-budget", "2"])
        assert status == 3
        assert "node budget" in capsys.readouterr().err

    def test_exhaustion_json_carries_detail(self, tmp_path, capsys):
        path = self._write(tmp_path, "pos.bp", POSITIVE)
        status = main(
            [str(path), "--target", "main:target", "--deadline", "0", "--json"]
        )
        assert status == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["type"] == "AnalysisTimeout"
        assert payload["resource"] == "wall-clock"

    def test_batch_resource_exhaustion_exits_three(self, tmp_path, capsys):
        pos = self._write(tmp_path, "pos.bp", POSITIVE)
        neg = self._write(tmp_path, "neg.bp", NEGATIVE)
        status = main(
            [str(pos), str(neg), "--target", "main:target", "--deadline", "0"]
        )
        assert status == 3
        captured = capsys.readouterr()
        assert "ERROR[timeout]" in captured.out

    def test_batch_crash_outranks_resource(self, tmp_path, capsys):
        pos = self._write(tmp_path, "pos.bp", POSITIVE)
        bad = self._write(tmp_path, "bad.bp", "main( begin oops")
        status = main(
            [str(pos), str(bad), "--target", "main:target", "--deadline", "0"]
        )
        assert status == 2  # a genuine error wins over budget exhaustion

    def test_invalid_limit_flag_exits_two(self, tmp_path, capsys):
        path = self._write(tmp_path, "pos.bp", POSITIVE)
        status = main([str(path), "--node-budget", "-5"])
        assert status == 2
        assert "--node-budget" in capsys.readouterr().err

    def test_unlimited_run_is_unchanged(self, tmp_path, capsys):
        path = self._write(tmp_path, "pos.bp", POSITIVE)
        status = main([str(path), "--target", "main:target"])
        assert status == 1
        assert "YES" in capsys.readouterr().out

    def test_degrade_flag_reports_fallback(self, tmp_path, capsys):
        path = self._write(tmp_path, "pos.bp", POSITIVE)
        faults.install(FaultPlan(exhaust_algorithms=("ef-opt",)))
        try:
            status = main(
                [str(path), "--target", "main:target", "--node-budget", "100000", "--degrade"]
            )
        finally:
            faults.clear()
        assert status == 1
        out = capsys.readouterr().out
        assert "summary fallback" in out
