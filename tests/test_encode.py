"""Tests for the symbolic encoder (state space, expressions, templates)."""

import pytest

from repro.boolprog import build_cfg, parse_program
from repro.encode import SequentialEncoder, StateSpace, affinity_order
from repro.encode.expressions import ChoicePool, VariableResolver, compile_expr
from repro.boolprog.parser import parse_expression
from repro.fixedpoint import Var
from repro.fixedpoint.symbolic import SymbolicBackend
from repro.fixedpoint.terms import Field
from repro.algorithms.entry_forward import build as build_ef


SOURCE = """
decl g0, g1;

main() begin
  decl x, y;
  x := T;
  y := x & g0;
  g1 := helper(y);
end

helper(a) begin
  decl t;
  t := !a;
  return t | g0;
end
"""


@pytest.fixture()
def encoder():
    program = parse_program(SOURCE)
    return SequentialEncoder(build_cfg(program))


@pytest.fixture()
def backend(encoder):
    spec = build_ef(encoder)
    return SymbolicBackend(spec.system)


class TestStateSpace:
    def test_dimensions(self, encoder):
        space = encoder.space
        assert space.module_sort.size() == 2
        assert space.globals_sort.field_names() == ["g0", "g1"]
        # main: x, y; helper: a, t, __ret0 -> 3 slots needed.
        assert space.num_slots >= 3
        assert space.state_bits == space.state_sort.width

    def test_build_without_globals(self):
        space = StateSpace.build(num_modules=1, max_pc=4, num_slots=0, global_names=[])
        assert space.globals_sort.width == 1  # dummy field
        assert space.locals_sort.width == 1

    def test_local_field_bounds(self, encoder):
        with pytest.raises(IndexError):
            encoder.space.local_field(encoder.space.locals_sort.width)

    def test_global_field_unknown(self, encoder):
        with pytest.raises(KeyError):
            encoder.space.global_field("missing")


class TestExpressionCompiler:
    def test_variable_resolution(self, encoder, backend):
        cfg = encoder.cfg
        resolver = VariableResolver(encoder.space, cfg.procedure_cfg("main").slot_of)
        x = Var("x", encoder.space.state_sort)
        assert resolver.bit_name(x, "g0") == "x.G.g0"
        assert resolver.bit_name(x, "x") == "x.L.l0"
        assert resolver.is_global("g0") and not resolver.is_global("x")
        with pytest.raises(KeyError):
            resolver.bit_name(x, "unknown")

    def test_expression_truth_table(self, encoder, backend):
        mgr = backend.manager
        cfg = encoder.cfg
        resolver = VariableResolver(encoder.space, cfg.procedure_cfg("main").slot_of)
        state = Var("x", encoder.space.state_sort)
        pool = ChoicePool(mgr)
        node = compile_expr(parse_expression("x & !g0"), state, resolver, mgr, pool)
        assert mgr.eval(node, {"x.L.l0": True, "x.G.g0": False})
        assert not mgr.eval(node, {"x.L.l0": True, "x.G.g0": True})

    def test_nondet_uses_choice_bits(self, encoder, backend):
        mgr = backend.manager
        cfg = encoder.cfg
        resolver = VariableResolver(encoder.space, cfg.procedure_cfg("main").slot_of)
        state = Var("x", encoder.space.state_sort)
        pool = ChoicePool(mgr)
        node = compile_expr(parse_expression("x & *"), state, resolver, mgr, pool)
        assert pool.active()
        # After quantifying the choice, the expression can be true whenever x is.
        quantified = pool.quantify(node)
        assert mgr.eval(quantified, {"x.L.l0": True})
        assert not mgr.eval(quantified, {"x.L.l0": False})

    def test_choice_pool_reuses_bits_between_edges(self, backend):
        pool = ChoicePool(backend.manager)
        first = pool.fresh()
        pool.reset()
        second = pool.fresh()
        assert first == second


class TestTemplates:
    def test_encode_produces_all_relations(self, encoder, backend):
        templates = encoder.encode(backend, [(0, 1)])
        for name in ("ProgramInt", "IntoCall", "Return", "Entry", "Exit", "Init", "Target"):
            assert name in templates.interpretations
        assert templates.main_module == encoder.cfg.module_of("main")

    def test_entry_and_exit_relations(self, encoder, backend):
        templates = encoder.encode(backend, [(0, 1)])
        entry = templates.interpretations["Entry"]
        models = list(backend.models(entry, templates.decl("Entry")))
        # Every module has exactly one entry (pc 0).
        assert sorted(models) == [(0, 0), (1, 0)]
        exits = list(backend.models(templates.interpretations["Exit"], templates.decl("Exit")))
        assert sorted(exits) == [(0, 1), (1, 1)]

    def test_init_relation_is_deterministic(self, encoder, backend):
        templates = encoder.encode(backend, [(0, 1)])
        init = templates.interpretations["Init"]
        models = list(backend.models(init, templates.decl("Init")))
        assert len(models) == 1
        (state,) = models[0]
        as_dict = encoder.space.state_sort.as_dict(encoder.space.state_sort.canonical(state))
        assert as_dict["mod"] == encoder.cfg.module_of("main")
        assert as_dict["pc"] == 0

    def test_program_int_respects_assignment(self, encoder, backend):
        templates = encoder.encode(backend, [(0, 1)])
        mgr = backend.manager
        program_int = templates.interpretations["ProgramInt"]
        # The first statement of main (pc 0 -> some pc) sets x (slot l0) to T.
        main_module = encoder.cfg.module_of("main")
        from_entry = mgr.and_(
            program_int,
            backend.context.encode_cube(Field(Var("x", encoder.space.state_sort), "pc"), 0),
        )
        from_entry = mgr.and_(
            from_entry,
            backend.context.encode_cube(Field(Var("x", encoder.space.state_sort), "mod"), main_module),
        )
        # In every model of that restriction the successor has l0 = True.
        assert mgr.and_(from_entry, mgr.nvar("v.L.l0")) == mgr.FALSE
        assert from_entry != mgr.FALSE

    def test_target_relation(self, encoder, backend):
        templates = encoder.encode(backend, [(1, 3), (0, 2)])
        models = set(backend.models(templates.interpretations["Target"], templates.decl("Target")))
        assert models == {(1, 3), (0, 2)}


class TestAllocation:
    def test_affinity_groups_related_globals(self):
        program = parse_program(
            """
            decl a, b, c, d;
            main() begin
              a := b;
              c := d;
            end
            """
        )
        order = affinity_order(program)
        assert set(order) == {"a", "b", "c", "d"}
        assert abs(order.index("a") - order.index("b")) == 1
        assert abs(order.index("c") - order.index("d")) == 1

    def test_affinity_order_handles_no_affinities(self):
        program = parse_program("decl a, b; main() begin skip; end")
        assert affinity_order(program) == ["a", "b"]
