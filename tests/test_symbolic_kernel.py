"""Guard tests for the fused symbolic kernel.

Covers the pieces the PR's kernel rework touches:

* the ``_rel_app`` rename fall-back (non-injective applications, clashing
  targets, and the staged-overlap case) against brute-force set semantics,
* ``and_exists`` vs ``exists(and_(...))`` on randomized BDDs,
* the order-preserving rename fast path vs the ite rebuild fall-back,
* the explicit-stack apply option,
* static-formula hoisting (compiled plans agree with direct evaluation),
* cache clearing and statistics plumbing.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager
from repro.fixedpoint import (
    And,
    EnumSort,
    Equation,
    EquationSystem,
    Exists,
    Or,
    RelationDecl,
    SymbolicBackend,
    Var,
    evaluate_nested,
)

E = EnumSort("E", 3)
VALUES = tuple(E.values())

pair_sets = st.sets(
    st.tuples(st.sampled_from(VALUES), st.sampled_from(VALUES)), max_size=9
)
triple_sets = st.sets(
    st.tuples(
        st.sampled_from(VALUES), st.sampled_from(VALUES), st.sampled_from(VALUES)
    ),
    max_size=12,
)


def _backend(decl, extra_names=("x",)):
    system = EquationSystem([], inputs=[decl])
    extra = [Var(name, E) for name in extra_names]
    return SymbolicBackend(system, extra_variables=extra)


def _interp(backend, decl, tuples):
    mgr = backend.manager
    return mgr.disjoin(
        mgr.conjoin(
            backend.context.encode_cube(var, value)
            for var, value in zip(decl.param_vars(), tup)
        )
        for tup in tuples
    )


def _holds(backend, node, assignment):
    """Evaluate ``node`` under typed-variable values given as {var: value}."""
    mgr = backend.manager
    bits = {}
    for var, value in assignment.items():
        bits.update(dict(zip(var.bit_names(), var.sort.encode(value))))
    return mgr.eval(node, bits)


class TestRelAppRenameFallback:
    """The relation-application paths against brute-force set semantics."""

    @settings(max_examples=60, deadline=None)
    @given(pair_sets)
    def test_non_injective_duplicate_argument(self, tuples):
        # R(x, x): both canonical parameters rename onto the same bits.
        R = RelationDecl("R", [("a", E), ("b", E)])
        backend = _backend(R)
        x = Var("x", E)
        node = backend.eval_formula(R(x, x), {"R": _interp(backend, R, tuples)})
        for i in VALUES:
            assert _holds(backend, node, {x: i}) == ((i, i) in tuples)

    @settings(max_examples=60, deadline=None)
    @given(pair_sets)
    def test_swapped_parameters(self, tuples):
        # R(b, a): an order-violating permutation of the canonical parameters.
        R = RelationDecl("R", [("a", E), ("b", E)])
        backend = _backend(R)
        a, b = Var("a", E), Var("b", E)
        node = backend.eval_formula(R(b, a), {"R": _interp(backend, R, tuples)})
        for i in VALUES:
            for j in VALUES:
                assert _holds(backend, node, {a: i, b: j}) == ((j, i) in tuples)

    @settings(max_examples=60, deadline=None)
    @given(pair_sets)
    def test_clashing_target_in_support(self, tuples):
        # R(b, b): the target bits are already in the interpretation's
        # support, forcing the equality-conjunction fall-back.
        R = RelationDecl("R", [("a", E), ("b", E)])
        backend = _backend(R)
        b = Var("b", E)
        node = backend.eval_formula(R(b, b), {"R": _interp(backend, R, tuples)})
        for j in VALUES:
            assert _holds(backend, node, {b: j}) == ((j, j) in tuples)

    @settings(max_examples=40, deadline=None)
    @given(triple_sets)
    def test_non_injective_with_source_target_overlap(self, tuples):
        # R3(b, a, a): non-injective and the sources overlap the targets, so
        # the fall-back must stage through temporary bits.
        R3 = RelationDecl("R3", [("a", E), ("b", E), ("c", E)])
        backend = _backend(R3)
        a, b = Var("a", E), Var("b", E)
        node = backend.eval_formula(R3(b, a, a), {"R3": _interp(backend, R3, tuples)})
        for i in VALUES:
            for j in VALUES:
                assert _holds(backend, node, {a: i, b: j}) == ((j, i, i) in tuples)

    @settings(max_examples=40, deadline=None)
    @given(pair_sets)
    def test_constant_and_variable_arguments(self, tuples):
        # R(1, x): a restrict plus a rename in the same application.
        R = RelationDecl("R", [("a", E), ("b", E)])
        backend = _backend(R)
        x = Var("x", E)
        node = backend.eval_formula(R(1, x), {"R": _interp(backend, R, tuples)})
        for j in VALUES:
            assert _holds(backend, node, {x: j}) == ((1, j) in tuples)


VAR8 = list("abcdefgh")

cube_lists = st.lists(
    st.dictionaries(st.sampled_from(VAR8), st.booleans(), min_size=1), max_size=6
)


def _random_bdd(mgr, cubes):
    return mgr.disjoin(mgr.cube(cube) for cube in cubes)


class TestAndExistsRandomized:
    @settings(max_examples=100, deadline=None)
    @given(cube_lists, cube_lists, st.sets(st.sampled_from(VAR8)))
    def test_and_exists_equals_two_step(self, cubes_f, cubes_g, qvars):
        mgr = BddManager(VAR8)
        f = _random_bdd(mgr, cubes_f)
        g = _random_bdd(mgr, cubes_g)
        assert mgr.and_exists(f, g, qvars) == mgr.exists(mgr.and_(f, g), qvars)

    @settings(max_examples=60, deadline=None)
    @given(cube_lists, cube_lists, st.sets(st.sampled_from(VAR8)))
    def test_and_exists_explicit_stack_agrees(self, cubes_f, cubes_g, qvars):
        recursive = BddManager(VAR8)
        iterative = BddManager(VAR8, explicit_stack=True)
        f_r = _random_bdd(recursive, cubes_f)
        g_r = _random_bdd(recursive, cubes_g)
        f_i = _random_bdd(iterative, cubes_f)
        g_i = _random_bdd(iterative, cubes_g)
        left = recursive.and_exists(f_r, g_r, qvars)
        right = iterative.and_exists(f_i, g_i, qvars)
        free = [name for name in VAR8 if name not in qvars]
        assert recursive.count_sat(left, VAR8) == iterative.count_sat(right, VAR8)
        # Structural equality across managers is meaningless; compare
        # semantically on every assignment of the free variables.
        for values in itertools.product([False, True], repeat=len(free)):
            env = dict(zip(free, values))
            assert recursive.eval(left, env) == iterative.eval(right, env)


class TestRenameFastPath:
    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.dictionaries(st.sampled_from(["a", "b", "c"]), st.booleans(), min_size=1),
            max_size=5,
        )
    )
    def test_order_preserving_shift(self, cubes):
        # a/b/c -> x/y/z preserves the support order: structural fast path.
        mgr = BddManager(["a", "b", "c", "x", "y", "z"])
        f = _random_bdd(mgr, cubes)
        before_fast = mgr.stats()["rename_fast_path"]
        g = mgr.rename(f, {"a": "x", "b": "y", "c": "z"})
        if mgr.support(f):
            assert mgr.stats()["rename_fast_path"] > before_fast
        for values in itertools.product([False, True], repeat=3):
            env_f = dict(zip(["a", "b", "c"], values))
            env_g = dict(zip(["x", "y", "z"], values))
            assert mgr.eval(f, env_f) == mgr.eval(g, env_g)
        assert mgr.rename(g, {"x": "a", "y": "b", "z": "c"}) == f

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.dictionaries(st.sampled_from(["a", "b", "c"]), st.booleans(), min_size=1),
            max_size=5,
        )
    )
    def test_order_reversing_fallback(self, cubes):
        # a/b/c -> z/y/x reverses the order: must take the ite rebuild and
        # still agree with the semantics.
        mgr = BddManager(["a", "b", "c", "x", "y", "z"])
        f = _random_bdd(mgr, cubes)
        g = mgr.rename(f, {"a": "z", "b": "y", "c": "x"})
        for values in itertools.product([False, True], repeat=3):
            env_f = dict(zip(["a", "b", "c"], values))
            env_g = dict(zip(["z", "y", "x"], values))
            assert mgr.eval(f, env_f) == mgr.eval(g, env_g)


class TestExplicitStackApply:
    @settings(max_examples=80, deadline=None)
    @given(cube_lists, cube_lists)
    def test_binary_connectives_agree(self, cubes_f, cubes_g):
        recursive = BddManager(VAR8)
        iterative = BddManager(VAR8, explicit_stack=True)
        for op in ("and_", "or_", "xor"):
            f_r = _random_bdd(recursive, cubes_f)
            g_r = _random_bdd(recursive, cubes_g)
            f_i = _random_bdd(iterative, cubes_f)
            g_i = _random_bdd(iterative, cubes_g)
            left = getattr(recursive, op)(f_r, g_r)
            right = getattr(iterative, op)(f_i, g_i)
            assert recursive.count_sat(left, VAR8) == iterative.count_sat(right, VAR8)

    def test_explicit_stack_survives_deep_chains(self):
        # A conjunction chain over many variables; the recursive path would
        # need ~n stack frames per apply.
        names = [f"v{i}" for i in range(600)]
        mgr = BddManager(names, explicit_stack=True)
        node = mgr.conjoin(mgr.var(name) for name in names)
        assert mgr.count_sat(node, names) == 1

    def test_explicit_stack_survives_deep_ite(self):
        # A genuinely 3-operand ite spanning ~1500 levels (no 2-operand
        # delegation applies); the recursive path would blow the stack.
        n = 1500
        names = [f"v{i}" for i in range(n)]
        mgr = BddManager(names, explicit_stack=True)
        evens = mgr.conjoin(mgr.var(f"v{i}") for i in range(0, n, 2))
        odds = mgr.conjoin(mgr.var(f"v{i}") for i in range(1, n, 2))
        node = mgr.ite(mgr.var(f"v{n - 1}"), evens, odds)
        env = {f"v{i}": True for i in range(n)}
        assert mgr.eval(node, env)
        env[f"v{n - 1}"] = False
        assert not mgr.eval(node, env)

    def test_explicit_stack_survives_deep_quantify_and_rename(self):
        # Quantification and both rename paths over a deep order; the
        # order-reversing mapping exercises the ite rebuild fall-back.
        n = 600
        names = [f"a{i}" for i in range(n)] + [f"b{i}" for i in range(n)]
        mgr = BddManager(names, explicit_stack=True)
        node = mgr.conjoin(mgr.var(f"a{i}") for i in range(n))
        assert mgr.exists(node, [f"a{i}" for i in range(0, n, 2)]) == mgr.conjoin(
            mgr.var(f"a{i}") for i in range(1, n, 2)
        )
        assert mgr.forall(node, [f"a{0}"]) == mgr.FALSE
        shifted = mgr.rename(node, {f"a{i}": f"b{i}" for i in range(n)})
        assert mgr.count_sat(shifted, [f"b{i}" for i in range(n)]) == 1
        reversed_ = mgr.rename(node, {f"a{i}": f"b{n - 1 - i}" for i in range(n)})
        assert mgr.count_sat(reversed_, [f"b{i}" for i in range(n)]) == 1


NODE = EnumSort("Node", 6)


def _reachability_system():
    Reach = RelationDecl("Reach", [("u", NODE)])
    Init = RelationDecl("Init", [("u", NODE)])
    Trans = RelationDecl("Trans", [("u", NODE), ("v", NODE)])
    u = Var("u", NODE)
    x = Var("x", NODE)
    body = Or(Init(u), Exists(x, And(Reach(x), Trans(x, u))))
    system = EquationSystem([Equation(Reach, body)], inputs=[Init, Trans])
    return system, Reach, Init, Trans, body


class TestStaticHoisting:
    def _inputs(self, backend):
        u, v = Var("u", NODE), Var("v", NODE)
        mgr = backend.manager
        init = mgr.disjoin(backend.context.encode_cube(u, n) for n in (0,))
        trans = mgr.disjoin(
            mgr.and_(
                backend.context.encode_cube(u, a), backend.context.encode_cube(v, b)
            )
            for a, b in ((0, 1), (1, 2), (2, 3), (4, 5))
        )
        return {"Init": init, "Trans": trans}

    def test_compiled_plan_matches_direct_evaluation(self):
        system, Reach, Init, Trans, body = _reachability_system()
        backend = SymbolicBackend(system)
        inputs = self._inputs(backend)
        plan = backend.compile_formula(body)
        assert backend.static_hoists > 0
        for reach_tuples in ((), (0,), (0, 1), (0, 1, 2, 3)):
            u = Var("u", NODE)
            mgr = backend.manager
            reach = mgr.disjoin(
                backend.context.encode_cube(u, n) for n in reach_tuples
            )
            interps = dict(inputs)
            interps["Reach"] = reach
            assert plan.eval(backend, interps) == backend.eval_formula(body, interps)

    def test_plan_memo_short_circuits_repeats(self):
        system, Reach, Init, Trans, body = _reachability_system()
        backend = SymbolicBackend(system)
        inputs = self._inputs(backend)
        interps = dict(inputs)
        interps["Reach"] = backend.manager.FALSE
        equation = system.equation("Reach")
        first = backend.eval_equation(equation, interps)
        hits_before = backend.plan_memo_hits
        second = backend.eval_equation(equation, interps)
        assert first == second
        assert backend.plan_memo_hits > hits_before

    def test_nested_evaluation_reports_backend_stats(self):
        system, Reach, Init, Trans, body = _reachability_system()
        backend = SymbolicBackend(system)
        result = evaluate_nested(system, "Reach", backend, self._inputs(backend))
        stats = result.backend_stats
        assert stats["static_hoists"] > 0
        assert "manager" in stats and stats["manager"]["nodes"] > 2
        u = Var("u", NODE)
        expected = {(n,) for n in (0, 1, 2, 3)}
        assert set(backend.models(result.value, Reach)) == expected


class TestCacheClearing:
    def test_manager_has_no_dead_count_cache(self):
        mgr = BddManager(["a"])
        assert not hasattr(mgr, "_count_cache")

    def test_context_clear_caches_composes_with_manager(self):
        system, Reach, Init, Trans, body = _reachability_system()
        backend = SymbolicBackend(system)
        u = Var("u", NODE)
        constraint = backend.context.domain_constraint(u)
        assert backend.context._domain_cache
        backend.manager.and_(constraint, backend.manager.var(u.bit_names()[0]))
        backend.context.clear_caches()
        assert not backend.context._domain_cache
        assert not backend.manager._and_cache
        # Results stay valid: the node table is untouched.
        assert backend.context.domain_constraint(u) == constraint

    def test_backend_clear_caches_resets_counters_consistently(self):
        # clear_caches must reset plan-memo counters, manager op stats and GC
        # bookkeeping together, so stats_snapshot() does not leak across runs.
        system, Reach, Init, Trans, body = _reachability_system()
        backend = SymbolicBackend(system)
        u = Var("u", NODE)
        mgr = backend.manager
        init = mgr.disjoin(backend.context.encode_cube(u, n) for n in (0,))
        v = Var("v", NODE)
        trans = mgr.disjoin(
            mgr.and_(
                backend.context.encode_cube(u, a), backend.context.encode_cube(v, b)
            )
            for a, b in ((0, 1), (1, 2))
        )
        evaluate_nested(system, "Reach", backend, {"Init": init, "Trans": trans})
        assert backend.plan_memo_hits + backend.plan_memo_misses > 0
        backend.clear_caches()
        snap = backend.stats_snapshot()
        assert snap["plan_memo_hits"] == 0
        assert snap["plan_memo_misses"] == 0
        assert snap["gc_steps"] == 0
        manager_stats = snap["manager"]
        assert all(
            op["hits"] == 0 and op["misses"] == 0
            for op in manager_stats["ops"].values()
        )
        assert manager_stats["peak_nodes"] == manager_stats["nodes"]
        assert manager_stats["gc"]["collections"] == 0
        assert all(size == 0 for size in manager_stats["cache_sizes"].values())
        # Compiled plans (and their protected skeletons) survive the clear.
        assert snap["compiled_equations"] == 1
        assert snap["protected_nodes"] > 0

    def test_engine_threads_stats_into_result(self):
        from repro.algorithms import run_sequential
        from repro.boolprog import parse_program
        from repro.frontends import resolve_target

        source = """
        decl g;
        main() begin
            g := T;
            if (g) then
                target: skip;
            fi
        end
        """
        program = parse_program(source)
        locations = resolve_target(program, "main:target")
        result = run_sequential(program, locations, algorithm="ef-opt")
        assert result.reachable
        assert result.stats["static_hoists"] > 0
        assert result.cache_hit_rate("and") is not None
        assert result.stats["manager"]["peak_nodes"] > 2
        assert result.gc_stats() is not None
        assert result.live_nodes() is not None and result.live_nodes() > 2
        assert result.details["bdd_live_nodes"] == result.live_nodes()
