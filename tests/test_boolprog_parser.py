"""Tests for the Boolean-program lexer, parser and static checks."""

import pytest

from repro.boolprog import (
    Assign,
    Assert,
    BinOp,
    Call,
    CallAssign,
    Goto,
    If,
    Lit,
    Nondet,
    NotE,
    ParseError,
    Return,
    Skip,
    StaticError,
    VarRef,
    While,
    check_concurrent_program,
    check_program,
    parse_concurrent_program,
    parse_expression,
    parse_program,
    tokenize,
)

SIMPLE_PROGRAM = """
// a tiny recursive program
decl g;

main() begin
  decl x, y;
  x, y := T, *;
  if (x & !g) then
    x := negate(y);
  else
    skip;
  fi
  while (y) do
    y := *;
  od
  call set_global(x);
  target: skip;
end

negate(a) begin
  return !a;
end

set_global(p) begin
  g := p;
end
"""


class TestLexer:
    def test_tokenizes_keywords_and_identifiers(self):
        tokens = tokenize("decl x; main() begin skip; end")
        kinds = [token.kind for token in tokens]
        assert kinds[0] == "KEYWORD"
        assert "IDENT" in kinds
        assert kinds[-1] == "EOF"

    def test_comments_are_skipped(self):
        tokens = tokenize("// comment\n/* block\ncomment */ decl x;")
        assert tokens[0].text == "decl"

    def test_line_numbers(self):
        tokens = tokenize("decl x;\n\nmain() begin end")
        main_token = next(token for token in tokens if token.text == "main")
        assert main_token.line == 3

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("decl x; $")


class TestExpressionParsing:
    def test_precedence_and_over_or(self):
        expression = parse_expression("a | b & c")
        assert isinstance(expression, BinOp) and expression.op == "|"
        assert isinstance(expression.right, BinOp) and expression.right.op == "&"

    def test_not_binds_tightest(self):
        expression = parse_expression("!a & b")
        assert isinstance(expression, BinOp) and expression.op == "&"
        assert isinstance(expression.left, NotE)

    def test_equality_operators(self):
        expression = parse_expression("a == b | c")
        assert expression.op == "=="

    def test_parentheses(self):
        expression = parse_expression("a & (b | c)")
        assert expression.op == "&"
        assert isinstance(expression.right, BinOp) and expression.right.op == "|"

    def test_constants_and_nondet(self):
        assert parse_expression("T") == Lit(True)
        assert parse_expression("F") == Lit(False)
        assert isinstance(parse_expression("*"), Nondet)

    def test_variables_collected(self):
        expression = parse_expression("a & !b | (c ^ a)")
        assert expression.variables() == {"a", "b", "c"}


class TestProgramParsing:
    def test_parses_simple_program(self):
        program = parse_program(SIMPLE_PROGRAM)
        assert program.globals == ["g"]
        assert set(program.procedures) == {"main", "negate", "set_global"}
        main = program.procedure("main")
        assert main.locals == ["x", "y"]
        assert main.params == []
        assert program.procedure("negate").num_returns == 1
        assert program.procedure("set_global").num_returns == 0

    def test_statement_shapes(self):
        program = parse_program(SIMPLE_PROGRAM)
        body = program.procedure("main").body
        assert isinstance(body[0], Assign)
        assert isinstance(body[1], If)
        assert isinstance(body[2], While)
        assert isinstance(body[3], Call)
        assert isinstance(body[4], Skip)
        assert body[4].label == "target"

    def test_call_assign_parsed(self):
        program = parse_program(SIMPLE_PROGRAM)
        then_branch = program.procedure("main").body[1].then_branch
        assert isinstance(then_branch[0], CallAssign)
        assert then_branch[0].callee == "negate"

    def test_goto_assert_assume(self):
        program = parse_program(
            """
            main() begin
              decl x;
              L: x := *;
              assume(x);
              assert(!x);
              goto L;
            end
            """
        )
        body = program.procedure("main").body
        assert body[0].label == "L"
        assert isinstance(body[2], Assert)
        assert isinstance(body[3], Goto)

    def test_return_arity_conflict_rejected(self):
        with pytest.raises(ParseError):
            parse_program(
                """
                main() begin skip; end
                f() begin
                  if (T) then return T; else return T, F; fi
                end
                """
            )

    def test_assignment_arity_mismatch(self):
        with pytest.raises(ParseError):
            parse_program("main() begin decl x, y; x, y := T; end")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("main() begin skip end")


class TestStaticChecks:
    def test_valid_program_passes(self):
        check_program(parse_program(SIMPLE_PROGRAM))

    def test_undeclared_variable(self):
        program = parse_program("main() begin x := T; end")
        with pytest.raises(StaticError):
            check_program(program)

    def test_missing_main(self):
        program = parse_program("f() begin skip; end")
        with pytest.raises(StaticError):
            check_program(program)

    def test_call_arity_mismatch(self):
        program = parse_program(
            """
            main() begin call f(T); end
            f(a, b) begin skip; end
            """
        )
        with pytest.raises(StaticError):
            check_program(program)

    def test_call_return_count_mismatch(self):
        program = parse_program(
            """
            main() begin decl x; x := f(); end
            f() begin return T, F; end
            """
        )
        with pytest.raises(StaticError):
            check_program(program)

    def test_plain_call_to_returning_procedure_rejected(self):
        program = parse_program(
            """
            main() begin call f(); end
            f() begin return T; end
            """
        )
        with pytest.raises(StaticError):
            check_program(program)

    def test_call_to_main_rejected(self):
        program = parse_program(
            """
            main() begin call main(); end
            """
        )
        with pytest.raises(StaticError):
            check_program(program)

    def test_local_shadowing_global_rejected(self):
        program = parse_program(
            """
            decl g;
            main() begin decl g; skip; end
            """
        )
        with pytest.raises(StaticError):
            check_program(program)

    def test_unknown_goto_target(self):
        program = parse_program("main() begin goto nowhere; end")
        with pytest.raises(StaticError):
            check_program(program)


CONCURRENT_PROGRAM = """
shared decl lock, stopped;

thread adder begin
  main() begin
    decl mine;
    mine := *;
    call acquire();
    assert(!stopped);
    call release();
  end
  acquire() begin
    assume(!lock);
    lock := T;
  end
  release() begin
    lock := F;
  end
end

thread stopper begin
  main() begin
    stopped := T;
  end
end
"""


class TestConcurrentParsing:
    def test_parses_threads_and_shared(self):
        program = parse_concurrent_program(CONCURRENT_PROGRAM)
        assert program.shared == ["lock", "stopped"]
        assert [thread.name for thread in program.threads] == ["adder", "stopper"]
        assert set(program.thread("adder").program.procedures) == {
            "main",
            "acquire",
            "release",
        }

    def test_static_check(self):
        check_concurrent_program(parse_concurrent_program(CONCURRENT_PROGRAM))

    def test_thread_using_undeclared_shared_fails(self):
        source = """
        thread lonely begin
          main() begin missing := T; end
        end
        """
        with pytest.raises(StaticError):
            check_concurrent_program(parse_concurrent_program(source))

    def test_replicate(self):
        program = parse_concurrent_program(CONCURRENT_PROGRAM)
        bigger = program.replicate(program.thread("adder"), 2)
        assert bigger.num_threads == 4
        assert {thread.name for thread in bigger.threads} >= {"adder_1", "adder_2"}

    def test_empty_concurrent_program_rejected(self):
        with pytest.raises(ParseError):
            parse_concurrent_program("shared decl x;")
