"""Fault-injection tests for the batch scheduler's recovery paths.

Each test drives one production failure surface with a deterministic
:class:`~repro.testing.faults.FaultPlan`:

* a pool worker killed mid-batch (transient → pool rebuild + shard-only
  retry with every completed result preserved; persistent → quarantine),
* a shard overrunning the driver-side timeout (stuck-pool teardown),
* an injected raise at a GC safe point (typed resource error),
* kills reaching the driver's sequential path (must be inert).

The invariant throughout: verdicts of the surviving/retried shards are
identical to a clean run — fault tolerance must never change answers.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.algorithms import run_batch
from repro.errors import NodeBudgetExceeded, ResourceExhausted
from repro.frontends import check_reachability
from repro.parallel import BatchQuery, run_shards
from repro.testing import FaultPlan, faults

POSITIVE = """
decl g;
main() begin
  g := T;
  if (g) then target: skip; fi
end
"""

NEGATIVE = """
decl g;
main() begin
  g := F;
  if (g) then target: skip; fi
end
"""


def two_program_batch():
    """Two groups (distinct programs), so one can fail while the other runs."""
    return [
        BatchQuery(name="p", program=POSITIVE, target="main:target", expected=True),
        BatchQuery(name="n", program=NEGATIVE, target="main:target", expected=False),
    ]


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    yield
    faults.clear()


class TestFaultPlan:
    def test_plan_is_picklable(self):
        # Plans cross the pool boundary inside the worker entry call.
        plan = FaultPlan(kill_query="p", once_token="/tmp/t", exhaust_algorithms=("ef",))
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_hooks_are_noops_without_a_plan(self):
        faults.clear()
        faults.on_shard(["anything"])
        faults.on_safe_point()
        faults.on_query("ef-opt")


class TestWorkerKill:
    def test_transient_kill_is_retried_with_identical_verdicts(self, tmp_path):
        queries = two_program_batch()
        clean = run_batch(queries, jobs=2)
        assert not clean.failures()
        plan = FaultPlan(kill_query="p", once_token=str(tmp_path / "latch"))
        results, mode, _ = run_shards(queries, jobs=2, fault_plan=plan)
        assert mode == "process-pool"
        by_name = {shard.name: shard for shard in results}
        # The killed shard was re-run in a rebuilt pool, not lost: its
        # verdict matches the clean run and its status records the retry.
        assert by_name["p"].status == "retried"
        assert by_name["p"].retries >= 1
        verdicts = {shard.name: shard.result.reachable for shard in results}
        assert verdicts == clean.verdicts()
        assert not any(shard.mismatch for shard in results)

    def test_persistent_crasher_is_quarantined_not_fatal(self):
        queries = two_program_batch()
        plan = FaultPlan(kill_query="p")  # no latch: crashes on every attempt
        results, mode, _ = run_shards(queries, jobs=2, max_retries=1, fault_plan=plan)
        assert mode == "process-pool"
        by_name = {shard.name: shard for shard in results}
        assert by_name["p"].status == "crashed"
        assert "BrokenProcessPool" in by_name["p"].error
        assert by_name["p"].retries >= 1
        # The innocent shard still produced its verdict.
        assert by_name["n"].ok and by_name["n"].result.reachable is False

    def test_kill_is_inert_in_the_driver(self):
        # The same plan on the sequential path must not take the driver down:
        # kills only fire in processes installed as pool workers.
        queries = two_program_batch()
        results, mode, _ = run_shards(queries, jobs=1, fault_plan=FaultPlan(kill_query="p"))
        assert mode == "sequential"
        assert [shard.result.reachable for shard in results] == [True, False]
        assert all(shard.pid == os.getpid() for shard in results)


class TestShardTimeout:
    def test_stuck_shard_is_quarantined_as_timeout(self):
        queries = two_program_batch()
        plan = FaultPlan(delay_query="p", delay_seconds=30.0)
        started = time.perf_counter()
        results, mode, _ = run_shards(
            queries, jobs=2, shard_timeout=0.5, fault_plan=plan
        )
        elapsed = time.perf_counter() - started
        assert mode == "process-pool"
        by_name = {shard.name: shard for shard in results}
        assert by_name["p"].status == "timeout"
        assert by_name["p"].error_detail["resource"] == "wall-clock"
        assert by_name["n"].ok and by_name["n"].result.reachable is False
        # The stuck worker was terminated, not joined: the batch returns in
        # driver-timeout time, nowhere near the injected 30s delay.
        assert elapsed < 15.0

    def test_timeout_statuses_surface_in_the_report(self):
        report = run_batch(
            two_program_batch(),
            jobs=2,
            shard_timeout=0.5,
            fault_plan=FaultPlan(delay_query="p", delay_seconds=30.0),
        )
        assert [shard.name for shard in report.resource_failures()] == ["p"]
        assert report.status_counts()["timeout"] == 1
        assert "ERROR[timeout]" in report.format_table()


class TestInjectedFailures:
    def test_injected_raise_fails_only_its_group(self):
        queries = two_program_batch()
        results, _, _ = run_shards(queries, jobs=1, fault_plan=FaultPlan(fail_query="p"))
        by_name = {shard.name: shard for shard in results}
        assert by_name["p"].status == "crashed"
        assert "injected shard failure" in by_name["p"].error
        assert by_name["n"].ok

    def test_safe_point_injection_raises_typed_errors(self):
        faults.install(FaultPlan(raise_at_safe_point=1, safe_point_error="nodes"))
        with pytest.raises(NodeBudgetExceeded):
            check_reachability(POSITIVE, target="main:target", algorithm="ef")
        # install() resets the safe-point counter; a fresh plan fires again.
        faults.install(FaultPlan(raise_at_safe_point=1, safe_point_error="timeout"))
        with pytest.raises(ResourceExhausted) as info:
            check_reachability(POSITIVE, target="main:target", algorithm="ef")
        assert info.value.resource == "wall-clock"
        faults.clear()
        assert check_reachability(POSITIVE, target="main:target", algorithm="ef").reachable

    def test_safe_point_injection_counts_to_the_nth_point(self):
        # A large index is never reached on this tiny program: no raise.
        faults.install(FaultPlan(raise_at_safe_point=10_000))
        result = check_reachability(POSITIVE, target="main:target", algorithm="ef")
        assert result.reachable

    def test_transient_fail_query_latches_on_once_token(self, tmp_path):
        # fail_query honors once_token the same way the kill does: the
        # first on_shard raises, the second passes — the primitive behind
        # every "transient failure, retry succeeds" test.
        token = tmp_path / "latch"
        faults.install(FaultPlan(fail_query="p", once_token=str(token)))
        with pytest.raises(RuntimeError, match="injected shard failure"):
            faults.on_shard(["p"])
        assert token.exists()
        faults.on_shard(["p"])  # latched: no second raise


DRIVER_KILL_SCRIPT = """
import os, sys, time
sys.path.insert(0, {src!r})
from repro.parallel import BatchQuery, run_shards
from repro.testing.faults import FaultPlan

POSITIVE = {positive!r}
NEGATIVE = {negative!r}

queries = [
    BatchQuery(name="p", program=POSITIVE, target="main:target"),
    BatchQuery(name="n", program=NEGATIVE, target="main:target"),
]
# One group hangs in its worker far longer than the test runs, so the
# driver is guaranteed to be blocked mid-batch when the signal arrives.
plan = FaultPlan(delay_query="p", delay_seconds=120.0)
print("READY", flush=True)
try:
    run_shards(queries, jobs=2, fault_plan=plan)
except KeyboardInterrupt:
    print("INTERRUPTED", flush=True)
    sys.exit(0)
print("FINISHED", flush=True)
"""


class TestDriverSignalCleanup:
    """SIGTERM/SIGINT mid-batch must terminate the worker pool — no orphans."""

    def _children_of(self, pid):
        try:
            with open(f"/proc/{pid}/task/{pid}/children") as handle:
                return [int(tok) for tok in handle.read().split()]
        except OSError:
            return []

    @pytest.mark.parametrize("signum", [15, 2])  # SIGTERM, SIGINT
    def test_driver_kill_mid_batch_leaves_no_orphans(self, tmp_path, signum):
        import pathlib
        import signal as signal_module
        import subprocess
        import sys

        if not os.path.exists("/proc"):
            pytest.skip("requires /proc to enumerate child processes")
        src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
        script = DRIVER_KILL_SCRIPT.format(
            src=src, positive=POSITIVE, negative=NEGATIVE
        )
        driver = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            assert driver.stdout.readline().strip() == "READY"
            # Wait for the pool workers to exist and start their shards.
            workers = []
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                workers = self._children_of(driver.pid)
                if len(workers) >= 2:
                    break
                time.sleep(0.05)
            assert len(workers) >= 2, "pool workers never appeared"
            time.sleep(0.5)  # let the delayed shard enter its sleep
            driver.send_signal(signum)
            out, _ = driver.communicate(timeout=30)
        finally:
            if driver.poll() is None:
                driver.kill()
                driver.communicate()
        assert "INTERRUPTED" in out
        # Every worker the driver had spawned is gone: terminated by the
        # pool's finally-path teardown, then reaped — not orphaned to init
        # still holding a 120s sleep.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            alive = [pid for pid in workers if os.path.exists(f"/proc/{pid}")]
            if not alive:
                break
            time.sleep(0.1)
        assert not alive, f"orphaned worker processes survived: {alive}"
