"""Tests for the sharded batch evaluation subsystem (:mod:`repro.parallel`).

The load-bearing property is *determinism*: a batch must produce exactly the
same verdicts and iteration counts whether it runs in-process (``jobs=1``) or
fanned out over a process pool (``jobs=4``), and every shard's kernel
statistics must describe only that shard's own manager — per-shard managers
share nothing, so no cross-shard leakage is possible by construction, and
these tests pin that down observably.
"""

from __future__ import annotations

import pytest

from repro.algorithms import run_batch
from repro.benchgen import DriverSpec, TerminatorSpec, make_driver, make_terminator, regression_suite
from repro.parallel import BatchQuery, BatchReport, run_shard, run_shards

POSITIVE = """
decl g;
main() begin
  g := T;
  if (g) then target: skip; fi
end
"""

NEGATIVE = """
decl g;
main() begin
  g := F;
  if (g) then target: skip; fi
end
"""

CONCURRENT = """
shared decl a;
init a := F;
thread one begin
  main() begin
    if (a) then hit: skip; fi
  end
end
thread two begin
  main() begin a := T; end
end
"""


def figure2_sample():
    """A mixed Figure 2 sample: regression + driver + terminator queries."""
    queries = []
    for case in regression_suite(True)[:2] + regression_suite(False)[:2]:
        queries.append(
            BatchQuery(
                name=case.name,
                program=case.program,
                target=case.target,
                expected=case.expected,
            )
        )
    for positive in (True, False):
        spec = DriverSpec(
            name=f"driver-2-{'pos' if positive else 'neg'}",
            handlers=2,
            flags=2,
            helpers=1,
            positive=positive,
        )
        queries.append(
            BatchQuery(
                name=spec.name,
                program=make_driver(spec),
                target=spec.target,
                expected=positive,
            )
        )
    spec = TerminatorSpec(name="terminator-2b-pos", counter_bits=2, variant="iterative", positive=True)
    queries.append(
        BatchQuery(name=spec.name, program=make_terminator(spec), target=spec.target, expected=True)
    )
    return queries


class TestShardWorker:
    def test_run_shard_builds_private_stack(self):
        shard = run_shard(BatchQuery(name="pos", program=POSITIVE, target="main:target"))
        assert shard.ok
        assert shard.result.reachable
        assert shard.live_nodes() > 0
        assert shard.gc_collections() == 0
        assert shard.pid > 0

    def test_run_shard_captures_frontend_errors(self):
        shard = run_shard(BatchQuery(name="bad", program="main( begin oops", target="error"))
        assert not shard.ok
        assert shard.result is None
        assert "ParseError" in shard.error

    def test_run_shard_concurrent(self):
        shard = run_shard(
            BatchQuery(
                name="bt",
                program=CONCURRENT,
                target="one:main:hit",
                concurrent=True,
                context_switches=2,
            )
        )
        assert shard.ok and shard.result.reachable

    def test_expected_mismatch_is_flagged(self):
        shard = run_shard(
            BatchQuery(name="neg", program=NEGATIVE, target="main:target", expected=True)
        )
        assert shard.ok and shard.mismatch


class TestScheduler:
    def test_jobs_one_is_sequential(self):
        results, mode, reason = run_shards(
            [BatchQuery(name="p", program=POSITIVE, target="main:target")], jobs=4
        )
        assert mode == "sequential"  # single-query batches never pay for a pool
        results, mode, reason = run_shards(
            [
                BatchQuery(name="p", program=POSITIVE, target="main:target"),
                BatchQuery(name="n", program=NEGATIVE, target="main:target"),
            ],
            jobs=1,
        )
        assert mode == "sequential" and reason is None
        assert [s.result.reachable for s in results] == [True, False]

    def test_unpicklable_group_runs_inline_without_poisoning_batch(self):
        # One unpicklable query no longer demotes the whole batch to the
        # sequential fallback: its group runs inline in the driver while the
        # picklable groups still fan out over the pool.
        import os

        from repro.boolprog import parse_program

        program = parse_program(POSITIVE)
        program.__dict__["_unpicklable"] = lambda: None
        queries = [
            BatchQuery(name="p", program=program, target="main:target"),
            BatchQuery(name="n", program=NEGATIVE, target="main:target"),
            BatchQuery(name="p2", program=POSITIVE, target="main:target"),
        ]
        results, mode, reason = run_shards(queries, jobs=4)
        assert mode == "process-pool"
        assert "inline" in reason
        assert [s.result.reachable for s in results] == [True, False, True]
        by_name = {s.name: s for s in results}
        assert by_name["p"].pid == os.getpid()  # the offending group, inline
        assert by_name["n"].pid != os.getpid()  # healthy groups still pooled
        assert by_name["p2"].pid != os.getpid()

    def test_fully_unpicklable_batch_falls_back_to_sequential(self):
        from repro.boolprog import parse_program

        program = parse_program(POSITIVE)
        program.__dict__["_unpicklable"] = lambda: None
        negative = parse_program(NEGATIVE)
        negative.__dict__["_unpicklable"] = lambda: None
        queries = [
            BatchQuery(name="p", program=program, target="main:target"),
            BatchQuery(name="n", program=negative, target="main:target"),
        ]
        results, mode, reason = run_shards(queries, jobs=4)
        assert mode == "sequential-fallback"
        assert "picklable" in reason
        assert [s.result.reachable for s in results] == [True, False]

    def test_process_pool_runs_and_preserves_order(self):
        queries = [
            BatchQuery(name="p", program=POSITIVE, target="main:target"),
            BatchQuery(name="n", program=NEGATIVE, target="main:target"),
            BatchQuery(name="p2", program=POSITIVE, target="main:target"),
        ]
        results, mode, reason = run_shards(queries, jobs=2)
        assert mode == "process-pool" and reason is None
        assert [s.name for s in results] == ["p", "n", "p2"]
        assert [s.result.reachable for s in results] == [True, False, True]
        # Results crossed a process boundary: workers are other processes.
        import os

        assert all(s.pid != os.getpid() for s in results)


class TestRunBatch:
    def test_accepts_mappings(self):
        report = run_batch(
            [{"name": "p", "program": POSITIVE, "target": "main:target"}], jobs=1
        )
        assert isinstance(report, BatchReport)
        assert report.verdicts() == {"p": True}
        assert report.any_reachable

    def test_shard_errors_do_not_kill_the_batch(self):
        report = run_batch(
            [
                BatchQuery(name="bad", program="main( begin", target="error"),
                BatchQuery(name="good", program=NEGATIVE, target="main:target"),
            ],
            jobs=1,
        )
        assert len(report.failures()) == 1
        assert report.verdicts() == {"bad": None, "good": False}
        table = report.format_table()
        assert "ERROR" in table and "good" in table

    @pytest.mark.parametrize("jobs", [4])
    def test_batch_determinism_across_jobs(self, jobs):
        """jobs=1 and jobs=4 must agree on verdicts and iteration counts."""
        sample = figure2_sample()
        sequential = run_batch(sample, jobs=1)
        parallel = run_batch(sample, jobs=jobs)
        assert not sequential.failures() and not parallel.failures()
        assert not sequential.mismatches() and not parallel.mismatches()
        assert sequential.verdicts() == parallel.verdicts()
        for seq_shard, par_shard in zip(sequential.shards, parallel.shards):
            assert seq_shard.name == par_shard.name
            assert seq_shard.result.iterations == par_shard.result.iterations
            assert seq_shard.result.equation_evaluations == par_shard.result.equation_evaluations
            assert seq_shard.result.summary_nodes == par_shard.result.summary_nodes

    def test_per_shard_stats_are_independent(self):
        """Each shard's snapshot describes its own manager, not a shared one."""
        sample = figure2_sample()
        report = run_batch(sample, jobs=4)
        assert not report.failures()
        snapshots = [shard.result.stats for shard in report.shards]
        # Distinct objects per shard...
        assert len({id(stats) for stats in snapshots}) == len(snapshots)
        for shard in report.shards:
            # ... each with its own manager section and positive live count.
            manager_stats = shard.result.stats["manager"]
            assert isinstance(manager_stats, dict)
            assert shard.live_nodes() > 0
        # No leakage: a shard re-run alone reports the same kernel numbers as
        # it did inside the batch (a shared manager would accumulate nodes).
        solo = run_shard(sample[0])
        batched = report.shards[0]
        assert solo.live_nodes() == batched.live_nodes()
        assert solo.result.details["bdd_variables"] == batched.result.details["bdd_variables"]

    def test_speedup_accounting(self):
        report = run_batch(
            [
                BatchQuery(name="p", program=POSITIVE, target="main:target"),
                BatchQuery(name="n", program=NEGATIVE, target="main:target"),
            ],
            jobs=2,
        )
        assert report.wall_seconds > 0
        assert report.shard_seconds > 0
        assert report.speedup == pytest.approx(report.shard_seconds / report.wall_seconds)
        rows = report.rows()
        assert [row["name"] for row in rows] == ["p", "n"]
        assert rows[0]["reachable"] is True and rows[1]["reachable"] is False
