"""Tests for the GETAFIX front end and its command-line interface."""

import json

import pytest

from repro.boolprog import parse_program
from repro.frontends import build_arg_parser, check_reachability, main, resolve_target

POSITIVE = """
decl g;
main() begin
  g := T;
  if (g) then target: skip; fi
end
"""

NEGATIVE = """
decl g;
main() begin
  if (g) then target: skip; fi
end
"""

CONCURRENT = """
shared decl a;
init a := F;
thread one begin
  main() begin
    if (a) then hit: skip; fi
  end
end
thread two begin
  main() begin a := T; end
end
"""


class TestTargetResolution:
    def test_label_target(self):
        program = parse_program(POSITIVE)
        locations = resolve_target(program, "main:target")
        assert len(locations) == 1

    def test_error_target_requires_asserts(self):
        program = parse_program(POSITIVE)
        with pytest.raises(ValueError):
            resolve_target(program, "error")

    def test_multiple_targets(self):
        source = """
        main() begin
          a: skip;
          b: skip;
        end
        """
        program = parse_program(source)
        locations = resolve_target(program, ["main:a", "main:b"])
        assert len(locations) == 2

    def test_explicit_locations_pass_through(self):
        program = parse_program(POSITIVE)
        assert resolve_target(program, [(0, 3)]) == [(0, 3)]

    def test_malformed_target(self):
        program = parse_program(POSITIVE)
        with pytest.raises(ValueError):
            resolve_target(program, "not-a-target")

    def test_unknown_label(self):
        program = parse_program(POSITIVE)
        with pytest.raises(KeyError):
            resolve_target(program, "main:missing")


class TestCheckReachability:
    def test_accepts_source_text(self):
        assert check_reachability(POSITIVE, target="main:target").reachable

    def test_accepts_parsed_program(self):
        program = parse_program(NEGATIVE)
        assert not check_reachability(program, target="main:target").reachable

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            check_reachability(POSITIVE, target="main:target", algorithm="quantum")


class TestCli:
    def test_arg_parser_defaults(self):
        args = build_arg_parser().parse_args(["program.bp"])
        assert args.algorithm == "ef-opt"
        assert [p.name for p in args.files] == ["program.bp"]
        assert args.targets is None  # main() defaults this to ["error"]
        assert args.jobs == 1
        assert not args.concurrent

    def test_sequential_run(self, tmp_path, capsys):
        path = tmp_path / "prog.bp"
        path.write_text(POSITIVE)
        status = main([str(path), "--target", "main:target"])
        captured = capsys.readouterr().out
        assert "YES" in captured
        assert status == 1  # reachable targets exit with 1 (a defect was found)

    def test_negative_run_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "prog.bp"
        path.write_text(NEGATIVE)
        status = main([str(path), "--target", "main:target", "--algorithm", "ef"])
        assert "NO" in capsys.readouterr().out
        assert status == 0

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "prog.bp"
        path.write_text(POSITIVE)
        main([str(path), "--target", "main:target", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["reachable"] is True
        assert payload["algorithm"].startswith("getafix-")

    def test_concurrent_run(self, tmp_path, capsys):
        path = tmp_path / "conc.bp"
        path.write_text(CONCURRENT)
        status = main(
            [
                str(path),
                "--concurrent",
                "--target",
                "one:main:hit",
                "--context-switches",
                "2",
            ]
        )
        assert "YES" in capsys.readouterr().out
        assert status == 1


class TestCliExitCodes:
    """0 = unreachable, 1 = reachable, 2 = error — scripts must be able to
    tell YES from a crash, so front-end errors print cleanly and exit 2."""

    def test_parse_error_exits_two_with_clean_message(self, tmp_path, capsys):
        path = tmp_path / "broken.bp"
        path.write_text("main( begin oops")
        status = main([str(path)])
        captured = capsys.readouterr()
        assert status == 2
        assert captured.out == ""  # nothing on stdout
        assert "getafix:" in captured.err
        assert "Traceback" not in captured.err

    def test_static_error_exits_two(self, tmp_path, capsys):
        path = tmp_path / "static.bp"
        path.write_text("main() begin x := T; end")  # x undeclared
        status = main([str(path), "--target", "main:whatever"])
        captured = capsys.readouterr()
        assert status == 2
        assert "getafix:" in captured.err

    def test_unknown_label_exits_two(self, tmp_path, capsys):
        path = tmp_path / "prog.bp"
        path.write_text(POSITIVE)
        status = main([str(path), "--target", "main:missing"])
        captured = capsys.readouterr()
        assert status == 2
        assert "getafix:" in captured.err
        assert "Traceback" not in captured.err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        status = main([str(tmp_path / "nope.bp")])
        captured = capsys.readouterr()
        assert status == 2
        assert "cannot read input" in captured.err

    def test_bad_jobs_value_exits_two(self, tmp_path, capsys):
        path = tmp_path / "prog.bp"
        path.write_text(POSITIVE)
        status = main([str(path), "--jobs", "0"])
        assert status == 2
        assert "--jobs" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "flags,named",
        [
            (["--jobs", "-3"], "--jobs"),
            (["--deadline", "-1"], "--deadline"),
            (["--node-budget", "0"], "--node-budget"),
            (["--node-budget", "-5"], "--node-budget"),
            (["--max-iterations", "0"], "--max-iterations"),
            (["--shard-timeout", "-2.5"], "--shard-timeout"),
            (["--shard-timeout", "0"], "--shard-timeout"),
            (["--retries", "-1"], "--retries"),
            (["--context-switches", "-1"], "--context-switches"),
        ],
    )
    def test_nonsensical_flag_values_exit_two(self, tmp_path, capsys, flags, named):
        # Range validation fires before any file I/O: the message names the
        # flag, lands on stderr, and the exit status is the error status 2.
        path = tmp_path / "prog.bp"
        path.write_text(POSITIVE)
        status = main([str(path), *flags])
        captured = capsys.readouterr()
        assert status == 2
        assert named in captured.err
        assert captured.out == ""
        assert "Traceback" not in captured.err


class TestCliSingletonRetry:
    """The single-query path gets the batch path's transient-failure retry."""

    def test_transient_failure_is_retried_once(self, tmp_path, capsys):
        from repro.testing import FaultPlan, faults

        path = tmp_path / "prog.bp"
        path.write_text(POSITIVE)
        token = tmp_path / "once.token"
        # The injected failure latches on the token: it fires on the first
        # attempt only, so a single bounded-backoff retry must succeed.
        faults.install(FaultPlan(fail_query=str(path), once_token=str(token)))
        try:
            status = main([str(path), "--target", "main:target"])
        finally:
            faults.clear()
        captured = capsys.readouterr()
        assert status == 1  # reachable — the retry answered
        assert "retry" in captured.out
        assert token.exists()  # the fault did fire once

    def test_retry_is_recorded_in_json_details(self, tmp_path, capsys):
        from repro.testing import FaultPlan, faults

        path = tmp_path / "prog.bp"
        path.write_text(POSITIVE)
        token = tmp_path / "once.token"
        faults.install(FaultPlan(fail_query=str(path), once_token=str(token)))
        try:
            status = main([str(path), "--target", "main:target", "--json"])
        finally:
            faults.clear()
        assert status == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["details"]["retries"] == 1

    def test_persistent_failure_still_raises(self, tmp_path):
        from repro.testing import FaultPlan, faults

        path = tmp_path / "prog.bp"
        path.write_text(POSITIVE)
        # No once_token: the fault fires on every attempt; after the single
        # retry the genuine failure propagates (it is a bug, not noise).
        faults.install(FaultPlan(fail_query=str(path)))
        try:
            with pytest.raises(RuntimeError, match="injected shard failure"):
                main([str(path), "--target", "main:target"])
        finally:
            faults.clear()

    def test_resource_exhaustion_is_never_retried(self, tmp_path, capsys):
        # A typed budget trip is deterministic; retrying would double the
        # cost for the same answer. Exit status 3, single attempt.
        path = tmp_path / "prog.bp"
        path.write_text(POSITIVE)
        status = main([str(path), "--target", "main:target", "--deadline", "0"])
        assert status == 3


class TestCliBatch:
    def _write(self, tmp_path):
        pos = tmp_path / "pos.bp"
        pos.write_text(POSITIVE)
        neg = tmp_path / "neg.bp"
        neg.write_text(NEGATIVE)
        return pos, neg

    def test_multi_file_batch_reports_and_exits_one(self, tmp_path, capsys):
        pos, neg = self._write(tmp_path)
        status = main([str(pos), str(neg), "--target", "main:target", "--jobs", "2"])
        captured = capsys.readouterr()
        assert status == 1  # at least one file reachable
        assert "pos.bp" in captured.out and "neg.bp" in captured.out
        assert "speedup=" in captured.out
        assert "live" in captured.out  # per-shard kernel stats columns

    def test_multi_target_batch_on_one_file(self, tmp_path, capsys):
        source = """
        main() begin
          a: skip;
          b: skip;
        end
        """
        path = tmp_path / "two.bp"
        path.write_text(source)
        status = main([str(path), "--target", "main:a", "--target", "main:b"])
        captured = capsys.readouterr()
        assert status == 1
        assert "main:a" in captured.out and "main:b" in captured.out

    def test_all_unreachable_batch_exits_zero(self, tmp_path, capsys):
        neg = tmp_path / "neg.bp"
        neg.write_text(NEGATIVE)
        neg2 = tmp_path / "neg2.bp"
        neg2.write_text(NEGATIVE)
        status = main([str(neg), str(neg2), "--target", "main:target"])
        capsys.readouterr()
        assert status == 0

    def test_batch_with_broken_file_exits_two(self, tmp_path, capsys):
        pos, _ = self._write(tmp_path)
        bad = tmp_path / "bad.bp"
        bad.write_text("main( begin")
        status = main([str(pos), str(bad), "--target", "main:target"])
        captured = capsys.readouterr()
        assert status == 2
        assert "bad.bp" in captured.err
        assert "Traceback" not in captured.err

    def test_batch_json_output(self, tmp_path, capsys):
        pos, neg = self._write(tmp_path)
        status = main(
            [str(pos), str(neg), "--target", "main:target", "--jobs", "2", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert status == 1
        assert payload["jobs"] == 2
        assert [row["name"] for row in payload["shards"]] == ["pos.bp", "neg.bp"]
        assert payload["shards"][0]["reachable"] is True
        assert payload["shards"][1]["reachable"] is False
        assert payload["shards"][0]["live_nodes"] > 0
        # Two distinct files: no grouping, every query paid its own solve.
        assert payload["queries_per_solve"] == 1.0
        assert all(row["reused_solve"] is False for row in payload["shards"])

    def test_batch_json_reports_session_reuse(self, tmp_path, capsys):
        """Multi-target on one file rides a single session: the JSON output
        carries verdict, iterations and the per-query reuse flag."""
        source = """
        decl g;
        main() begin
          g := T;
          if (g) then a: skip; fi
          if (!g) then b: skip; fi
        end
        """
        path = tmp_path / "multi.bp"
        path.write_text(source)
        status = main(
            [str(path), "--target", "main:a", "--target", "main:b", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert status == 1
        rows = payload["shards"]
        assert [row["name"] for row in rows] == ["multi.bp:main:a", "multi.bp:main:b"]
        assert rows[0]["reachable"] is True and rows[1]["reachable"] is False
        assert all(row["iterations"] > 0 for row in rows)
        assert [row["reused_solve"] for row in rows] == [False, True]
        assert payload["queries_per_solve"] == 2.0
        assert payload["reused_solves"] == 1

    def test_no_group_restores_one_solve_per_query(self, tmp_path, capsys):
        source = """
        decl g;
        main() begin
          g := T;
          if (g) then a: skip; fi
          if (!g) then b: skip; fi
        end
        """
        path = tmp_path / "multi.bp"
        path.write_text(source)
        status = main(
            [str(path), "--target", "main:a", "--target", "main:b", "--no-group", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert status == 1
        assert payload["queries_per_solve"] == 1.0
        assert all(row["reused_solve"] is False for row in payload["shards"])
