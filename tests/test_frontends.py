"""Tests for the GETAFIX front end and its command-line interface."""

import json

import pytest

from repro.boolprog import parse_program
from repro.frontends import build_arg_parser, check_reachability, main, resolve_target

POSITIVE = """
decl g;
main() begin
  g := T;
  if (g) then target: skip; fi
end
"""

NEGATIVE = """
decl g;
main() begin
  if (g) then target: skip; fi
end
"""

CONCURRENT = """
shared decl a;
init a := F;
thread one begin
  main() begin
    if (a) then hit: skip; fi
  end
end
thread two begin
  main() begin a := T; end
end
"""


class TestTargetResolution:
    def test_label_target(self):
        program = parse_program(POSITIVE)
        locations = resolve_target(program, "main:target")
        assert len(locations) == 1

    def test_error_target_requires_asserts(self):
        program = parse_program(POSITIVE)
        with pytest.raises(ValueError):
            resolve_target(program, "error")

    def test_multiple_targets(self):
        source = """
        main() begin
          a: skip;
          b: skip;
        end
        """
        program = parse_program(source)
        locations = resolve_target(program, ["main:a", "main:b"])
        assert len(locations) == 2

    def test_explicit_locations_pass_through(self):
        program = parse_program(POSITIVE)
        assert resolve_target(program, [(0, 3)]) == [(0, 3)]

    def test_malformed_target(self):
        program = parse_program(POSITIVE)
        with pytest.raises(ValueError):
            resolve_target(program, "not-a-target")

    def test_unknown_label(self):
        program = parse_program(POSITIVE)
        with pytest.raises(KeyError):
            resolve_target(program, "main:missing")


class TestCheckReachability:
    def test_accepts_source_text(self):
        assert check_reachability(POSITIVE, target="main:target").reachable

    def test_accepts_parsed_program(self):
        program = parse_program(NEGATIVE)
        assert not check_reachability(program, target="main:target").reachable

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            check_reachability(POSITIVE, target="main:target", algorithm="quantum")


class TestCli:
    def test_arg_parser_defaults(self):
        args = build_arg_parser().parse_args(["program.bp"])
        assert args.algorithm == "ef-opt"
        assert args.target == "error"
        assert not args.concurrent

    def test_sequential_run(self, tmp_path, capsys):
        path = tmp_path / "prog.bp"
        path.write_text(POSITIVE)
        status = main([str(path), "--target", "main:target"])
        captured = capsys.readouterr().out
        assert "YES" in captured
        assert status == 1  # reachable targets exit with 1 (a defect was found)

    def test_negative_run_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "prog.bp"
        path.write_text(NEGATIVE)
        status = main([str(path), "--target", "main:target", "--algorithm", "ef"])
        assert "NO" in capsys.readouterr().out
        assert status == 0

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "prog.bp"
        path.write_text(POSITIVE)
        main([str(path), "--target", "main:target", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["reachable"] is True
        assert payload["algorithm"].startswith("getafix-")

    def test_concurrent_run(self, tmp_path, capsys):
        path = tmp_path / "conc.bp"
        path.write_text(CONCURRENT)
        status = main(
            [
                str(path),
                "--concurrent",
                "--target",
                "one:main:hit",
                "--context-switches",
                "2",
            ]
        )
        assert "YES" in capsys.readouterr().out
        assert status == 1
