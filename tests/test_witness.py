"""Tests for the counterexample witness subsystem.

The contract under test, end to end:

* ``AnalysisSession.explain`` turns every reachable verdict into a
  statement-level trace that **replays** through the explicit semantics
  (:mod:`repro.baselines.semantics`) from the initial state to the target —
  identically for all three sequential algorithms, because the pick kernel
  is deterministic.
* Extraction is a post-pass: it never changes a verdict, and an
  unreachable target yields no trace (``None``), never a fabricated one.
* The front ends agree: ``check_reachability(witness=True)``, the CLI
  ``--witness`` flag, the shard path's ``BatchQuery.witness`` and the
  daemon's ``witness`` op all carry the same JSON trace shape, and all
  reject the flag combinations that cannot produce a sound trace.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api import AnalysisSession
from repro.algorithms import SEQUENTIAL_ALGORITHMS
from repro.frontends import check_reachability, main
from repro.parallel import BatchQuery, run_shards
from repro.service import AnalysisDaemon, DaemonConfig, ProtocolError, parse_request
from repro.witness import (
    WitnessTrace,
    WitnessValidationError,
    validate_trace,
)

ALGORITHMS = sorted(SEQUENTIAL_ALGORITHMS)

#: Call + branch + data flow through a helper; ``reach`` needs the callee's
#: effect on ``g`` to be tracked precisely, ``unreach`` is dead for the
#: same reason.
PROGRAM = """
decl g;
main() begin
  decl a;
  a := T;
  g := F;
  call flip(a);
  if (g) then reach: skip; fi
  if (!g) then unreach: skip; fi
end
flip(x) begin
  if (x) then g := T; else g := F; fi
end
"""

#: Recursion: the witness must thread matched call/return pairs two deep.
RECURSIVE = """
decl g;
main() begin
  g := F;
  call rec(T);
  if (g) then deep: skip; fi
end
rec(n) begin
  if (n) then
    call rec(F);
    g := T;
  fi
end
"""


def _assert_well_formed(trace, session, spec):
    assert isinstance(trace, WitnessTrace)
    assert trace.validated
    assert trace.steps, "a witness trace is never empty"
    first = trace.steps[0]
    assert first.kind == "start"
    last = trace.steps[-1]
    locations = set(session.resolve(spec))
    assert (session.cfg.module_of(last.procedure), last.pc) in locations
    for step in trace.steps[1:]:
        assert step.kind in ("internal", "call", "return")
        assert step.statement is not None


class TestSessionExplain:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_reachable_yields_validated_trace(self, algorithm):
        session = AnalysisSession(PROGRAM, default_algorithm=algorithm)
        try:
            result = session.check("main:reach", algorithm=algorithm)
            assert result.reachable is True
            trace = session.explain("main:reach", algorithm=algorithm)
            _assert_well_formed(trace, session, "main:reach")
            assert trace.algorithm == algorithm
        finally:
            session.close()

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_unreachable_yields_none(self, algorithm):
        session = AnalysisSession(PROGRAM, default_algorithm=algorithm)
        try:
            assert session.check("main:unreach", algorithm=algorithm).reachable is False
            assert session.explain("main:unreach", algorithm=algorithm) is None
        finally:
            session.close()

    def test_traces_identical_across_algorithms(self):
        """The deterministic pick kernel makes the walk algorithm-independent."""
        rendered = []
        for algorithm in ALGORITHMS:
            session = AnalysisSession(PROGRAM, default_algorithm=algorithm)
            try:
                trace = session.explain("main:reach", algorithm=algorithm)
                payload = trace.to_dict()
                payload.pop("algorithm")
                rendered.append(payload)
            finally:
                session.close()
        assert rendered[0] == rendered[1] == rendered[2]

    def test_recursive_program_matched_calls(self):
        session = AnalysisSession(RECURSIVE)
        try:
            trace = session.explain("main:deep")
            _assert_well_formed(trace, session, "main:deep")
            calls = sum(1 for step in trace.steps if step.kind == "call")
            returns = sum(1 for step in trace.steps if step.kind == "return")
            assert calls == returns == 2  # rec(T) -> rec(F), both return
        finally:
            session.close()

    def test_explain_does_not_change_the_verdict(self):
        session = AnalysisSession(PROGRAM)
        try:
            before = session.check("main:reach")
            session.explain("main:reach")
            after = session.check("main:reach")
            assert before.reachable is after.reachable is True
            assert session.check("main:unreach").reachable is False
        finally:
            session.close()

    def test_tampered_trace_fails_replay(self):
        session = AnalysisSession(PROGRAM)
        try:
            trace = session.explain("main:reach")
            victim = next(step for step in trace.steps if step.kind == "internal")
            victim.globals["g"] = not victim.globals["g"]
            with pytest.raises(WitnessValidationError):
                validate_trace(session.cfg, trace, session.resolve("main:reach"))
        finally:
            session.close()


class TestFrontendWitness:
    def test_check_reachability_attaches_witness(self):
        result = check_reachability(PROGRAM, target="main:reach", witness=True)
        assert result.reachable is True
        assert result.witness is not None
        assert result.witness["validated"] is True
        assert result.witness["length"] == len(result.witness["steps"])
        assert "witness_error" not in result.details

    def test_check_reachability_unreachable_has_no_witness(self):
        result = check_reachability(PROGRAM, target="main:unreach", witness=True)
        assert result.reachable is False
        assert result.witness is None

    def test_witness_off_leaves_field_none(self):
        result = check_reachability(PROGRAM, target="main:reach")
        assert result.witness is None

    def test_shard_path_carries_witness(self):
        queries = [
            BatchQuery(name="hit", program=PROGRAM, target="main:reach", witness=True),
            BatchQuery(name="miss", program=PROGRAM, target="main:unreach", witness=True),
        ]
        results, _mode, _reason = run_shards(queries, jobs=2)
        by_name = {shard.name: shard for shard in results}
        hit = by_name["hit"].result
        assert hit.reachable is True
        assert hit.witness is not None and hit.witness["validated"] is True
        miss = by_name["miss"].result
        assert miss.reachable is False
        assert miss.witness is None


class TestCliWitness:
    def _write(self, tmp_path, source=PROGRAM):
        path = tmp_path / "program.bp"
        path.write_text(source)
        return str(path)

    def test_witness_json_output(self, tmp_path, capsys):
        status = main(
            [self._write(tmp_path), "--target", "main:reach", "--witness", "--json"]
        )
        assert status == 1  # reachable
        payload = json.loads(capsys.readouterr().out)
        assert payload["reachable"] is True
        assert payload["witness"]["validated"] is True
        assert payload["witness"]["steps"][0]["kind"] == "start"

    def test_witness_text_output(self, tmp_path, capsys):
        status = main([self._write(tmp_path), "--target", "main:reach", "--witness"])
        assert status == 1
        out = capsys.readouterr().out
        assert "witness trace" in out
        assert "replay-validated" in out

    def test_witness_unreachable_prints_none(self, tmp_path, capsys):
        status = main([self._write(tmp_path), "--target", "main:unreach", "--witness", "--json"])
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reachable"] is False
        assert payload.get("witness") is None

    def test_witness_rejects_concurrent(self, tmp_path, capsys):
        status = main([self._write(tmp_path), "--witness", "--concurrent"])
        assert status == 2
        assert "--witness" in capsys.readouterr().err


class TestDaemonWitness:
    def _query(self, **fields):
        request = {"op": "query", "program": PROGRAM, "target": "main:reach"}
        request.update(fields)
        return request

    def test_parse_request_rejects_concurrent_witness(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(self._query(witness=True, concurrent=True), job_id="q1")
        assert info.value.payload["type"] == "BadRequest"
        assert "witness" in info.value.payload["message"]

    def test_parse_request_rejects_optimized_numeric_target_witness(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(
                self._query(witness=True, optimize=1, target=[[0, 3]]), job_id="q1"
            )
        assert "witness" in info.value.payload["message"]
        # The same numeric target is fine without optimization.
        job = parse_request(self._query(witness=True, target=[[0, 3]]), job_id="q2")
        assert job.witness is True

    def test_witness_requests_do_not_coalesce_with_plain_ones(self):
        plain = parse_request(self._query(), job_id="a")
        with_witness = parse_request(self._query(witness=True), job_id="b")
        assert plain.coalesce_key() != with_witness.coalesce_key()

    def test_witness_op_round_trip(self):
        async def scenario(daemon):
            hit = await daemon.handle_request(self._query(op="witness", id=1))
            miss = await daemon.handle_request(
                self._query(op="witness", id=2, target="main:unreach")
            )
            return hit, miss

        hit, miss = asyncio.run(self._with_daemon(scenario))
        assert hit["ok"] and hit["reachable"] is True
        assert hit["witness"]["validated"] is True
        assert "witness_error" not in hit
        assert miss["ok"] and miss["reachable"] is False
        assert "witness" not in miss

    async def _with_daemon(self, scenario):
        daemon = AnalysisDaemon(DaemonConfig(workers=0))
        await daemon.start()
        try:
            return await scenario(daemon)
        finally:
            await daemon.shutdown(drain=False)
