"""Tests for the compile-once / query-many session API (:mod:`repro.api`).

The load-bearing properties:

* **Equivalence** — `session.check_all(targets)` produces the same verdicts
  and iteration counts as N fresh full `run_sequential` calls, on all three
  algorithms (the retained summary fixed point of a target-free system is
  target-independent).
* **Reuse** — after a solve, checks are query post-passes; targets are
  cached by signature; monotone algorithms warm-start from early-stopped
  iterates and resume the exact Kleene sequence.
* **Lifecycle** — validation happens once at construction (never per
  query), `SessionSpec` round-trips through pickle into a worker process,
  and `close()` releases every retained edge.
"""

from __future__ import annotations

import pickle

import pytest

from repro.algorithms import SEQUENTIAL_ALGORITHMS, run_batch, run_sequential
from repro.api import AnalysisSession, SessionSpec
from repro.boolprog import parse_program
from repro.frontends import resolve_target
from repro.parallel import BatchQuery, group_queries

ALGORITHMS = sorted(SEQUENTIAL_ALGORITHMS)

PROGRAM = """
decl g;
main() begin
  decl x;
  x := *;
  call set_flag(x);
  if (g) then yes: skip; fi
  if (!g) then no_g: skip; fi
  if (g & !g) then never: skip; fi
  done: skip;
end
set_flag(v) begin
  g := v;
  if (!v) then cold: skip; fi
end
"""

#: A mix of reachable and unreachable targets across two procedures.
TARGETS = ["main:yes", "main:no_g", "main:never", "set_flag:cold", "main:done"]
EXPECTED = [True, True, False, True, True]

OTHER_PROGRAM = """
decl h;
main() begin
  h := F;
  if (h) then hit: skip; fi
end
"""


def _locations(program):
    return [resolve_target(program, target) for target in TARGETS]


class TestEquivalence:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_check_all_matches_fresh_full_runs(self, algorithm):
        """Session verdicts/iterations == N fresh full-fixed-point runs."""
        program = parse_program(PROGRAM)
        locations = _locations(program)
        fresh = [
            run_sequential(program, locs, algorithm=algorithm, early_stop=False)
            for locs in locations
        ]
        with AnalysisSession(program, default_algorithm=algorithm) as session:
            reused = session.check_all(locations, algorithm=algorithm)
        assert [r.reachable for r in fresh] == EXPECTED
        for fresh_result, session_result in zip(fresh, reused):
            assert session_result.reachable == fresh_result.reachable
            assert session_result.iterations == fresh_result.iterations
            assert (
                session_result.equation_evaluations
                == fresh_result.equation_evaluations
            )
            assert session_result.summary_nodes == fresh_result.summary_nodes
        # The solve was amortised: every check rode the retained summary.
        assert all(r.details["reused_solve"] for r in reused)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_lazy_checks_match_fresh_verdicts(self, algorithm):
        """Without a pre-solve, per-target evaluation agrees with fresh runs."""
        program = parse_program(PROGRAM)
        locations = _locations(program)
        with AnalysisSession(program) as session:
            results = [
                session.check(locs, algorithm=algorithm) for locs in locations
            ]
        assert [r.reachable for r in results] == EXPECTED

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_summary_states_populated(self, algorithm):
        """The symbolic engines report tuple counts via signed-edge count_sat."""
        result = run_sequential(
            parse_program(PROGRAM),
            resolve_target(parse_program(PROGRAM), "main:yes"),
            algorithm=algorithm,
        )
        assert result.summary_states is not None
        assert result.summary_states > 0


class TestReuse:
    def test_solve_is_idempotent(self):
        with AnalysisSession(PROGRAM, default_algorithm="summary") as session:
            first = session.solve()
            second = session.solve()
        assert not first.reused
        assert second.reused
        assert second.iterations == first.iterations

    def test_checks_after_solve_are_post_passes(self):
        with AnalysisSession(PROGRAM, default_algorithm="ef") as session:
            session.solve()
            result = session.check("main:yes")
            assert result.details["reused_solve"] is True
            assert not result.stopped_early
            stats = session.stats()["algorithms"]["ef"]
            assert stats["solves"] == 1
            assert stats["reused_queries"] == 1

    def test_target_cache_keyed_by_signature(self):
        """Identical location sets (any order) hit one cached Target BDD."""
        program = parse_program(PROGRAM)
        a = resolve_target(program, "main:yes")[0]
        b = resolve_target(program, "main:done")[0]
        with AnalysisSession(program, default_algorithm="summary") as session:
            session.check([a, b])
            session.check([b, a])
            session.check([b, a, b])
            assert session.stats()["algorithms"]["summary"]["cached_targets"] == 1
            session.check([a])
            assert session.stats()["algorithms"]["summary"]["cached_targets"] == 2

    def test_full_lazy_run_promotes_to_retained_summary(self):
        """A query that reaches the fixed point anyway seeds later reuse."""
        with AnalysisSession(PROGRAM, default_algorithm="ef-opt") as session:
            first = session.check("main:never")  # unreachable: runs to fixpoint
            second = session.check("main:yes")
        assert not first.reachable and not first.details["reused_solve"]
        assert second.reachable and second.details["reused_solve"]

    @pytest.mark.parametrize("algorithm", ["summary", "ef"])
    def test_monotone_warm_start_resumes_the_iteration(self, algorithm):
        """An early-stopped iterate is resumed, not recomputed: the total
        iteration count across both queries equals one fresh full run."""
        program = parse_program(PROGRAM)
        full = run_sequential(
            program,
            resolve_target(program, "main:never"),
            algorithm=algorithm,
            early_stop=False,
        )
        with AnalysisSession(program, default_algorithm=algorithm) as session:
            eager = session.check("main:yes")  # stops early, retains the iterate
            assert eager.stopped_early
            assert eager.iterations < full.iterations
            resumed = session.check("main:never")  # unreachable: runs to fixpoint
        assert resumed.details["warm_start"] is True
        assert not resumed.reachable
        assert resumed.iterations == full.iterations

    def test_ef_opt_never_warm_starts(self):
        """The non-monotone frontier encoding must restart from empty."""
        with AnalysisSession(PROGRAM, default_algorithm="ef-opt") as session:
            eager = session.check("main:yes")
            assert eager.stopped_early
            second = session.check("main:no_g")
        assert second.details["warm_start"] is False
        assert second.details["reused_solve"] is False
        assert second.reachable


class TestLifecycle:
    def test_validation_happens_once_at_construction(self, monkeypatch):
        import repro.api.session as session_module

        calls = []
        real = session_module.check_program
        monkeypatch.setattr(
            session_module, "check_program", lambda p: (calls.append(1), real(p))[1]
        )
        with AnalysisSession(PROGRAM) as session:
            assert calls == [1]
            session.check("main:yes")
            session.check("main:done")
            session.check("main:yes", algorithm="summary")
            assert calls == [1]

    def test_run_sequential_validate_flag_passes_through(self, monkeypatch):
        import repro.api.session as session_module

        calls = []
        real = session_module.check_program
        monkeypatch.setattr(
            session_module, "check_program", lambda p: (calls.append(1), real(p))[1]
        )
        program = parse_program(PROGRAM)
        locations = resolve_target(program, "main:yes")
        run_sequential(program, locations, validate=False)
        assert calls == []
        run_sequential(program, locations, validate=True)
        assert calls == [1]

    def test_constructing_without_validation_skips_check(self):
        session = AnalysisSession(PROGRAM, validate=False)
        assert session.validations == 0
        session.close()

    def test_closed_session_rejects_queries(self):
        session = AnalysisSession(PROGRAM)
        session.check("main:yes")
        session.close()
        session.close()  # idempotent
        assert session.closed
        with pytest.raises(RuntimeError, match="closed"):
            session.check("main:yes")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            AnalysisSession(PROGRAM, default_algorithm="made-up")
        with AnalysisSession(PROGRAM) as session:
            with pytest.raises(ValueError, match="unknown algorithm"):
                session.check("main:yes", algorithm="made-up")


def _worker_roundtrip(payload: bytes) -> bool:
    """Module-level worker: unpickle a SessionSpec and answer a query."""
    spec = pickle.loads(payload)
    with spec.open() as session:
        return session.check("main:yes").reachable


class TestSessionSpec:
    def test_pickle_roundtrip(self):
        spec = SessionSpec(program=PROGRAM, default_algorithm="summary")
        assert spec.is_picklable()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        with clone.open() as session:
            assert session.default_algorithm == "summary"
            assert session.check("main:yes").reachable

    def test_parsed_program_spec_roundtrips(self):
        spec = SessionSpec(program=parse_program(PROGRAM))
        clone = pickle.loads(pickle.dumps(spec))
        with clone.open() as session:
            assert not session.check("main:never").reachable

    def test_spec_round_trips_into_a_worker_process(self):
        from concurrent.futures import ProcessPoolExecutor

        payload = pickle.dumps(SessionSpec(program=PROGRAM))
        with ProcessPoolExecutor(max_workers=1) as pool:
            assert pool.submit(_worker_roundtrip, payload).result() is True


class TestBatchGrouping:
    def _queries(self):
        return [
            BatchQuery(name="p:yes", program=PROGRAM, target="main:yes", expected=True),
            BatchQuery(name="p:never", program=PROGRAM, target="main:never", expected=False),
            BatchQuery(name="p:cold", program=PROGRAM, target="set_flag:cold", expected=True),
            BatchQuery(name="other", program=OTHER_PROGRAM, target="main:hit", expected=False),
        ]

    def test_group_queries_partitions_by_program_and_algorithm(self):
        queries = self._queries()
        queries.append(
            BatchQuery(name="p:sum", program=PROGRAM, target="main:yes", algorithm="summary")
        )
        groups = group_queries(queries)
        assert sorted(index for group in groups for index in group) == [0, 1, 2, 3, 4]
        assert [0, 1, 2] in groups  # same program text + algorithm
        assert [3] in groups  # different program
        assert [4] in groups  # different algorithm

    def test_concurrent_queries_stay_singletons(self):
        queries = [
            BatchQuery(name="c1", program="x", target="error", concurrent=True),
            BatchQuery(name="c2", program="x", target="error", concurrent=True),
        ]
        assert group_queries(queries) == [[0], [1]]

    def test_grouped_batch_matches_ungrouped_verdicts(self):
        queries = self._queries()
        grouped = run_batch(queries, jobs=1)
        ungrouped = run_batch(queries, jobs=1, group_by_program=False)
        assert not grouped.failures() and not ungrouped.failures()
        assert not grouped.mismatches() and not ungrouped.mismatches()
        assert grouped.verdicts() == ungrouped.verdicts()
        # The three same-program queries shared one solve...
        assert grouped.reused_count == 2
        assert grouped.queries_per_solve == pytest.approx(2.0)
        # ...while the ungrouped run paid one solve per query.
        assert ungrouped.reused_count == 0
        assert ungrouped.queries_per_solve == pytest.approx(1.0)
        flags = {row["name"]: row["reused_solve"] for row in grouped.rows()}
        assert flags == {"p:yes": False, "p:never": True, "p:cold": True, "other": False}

    def test_grouped_batch_determinism_across_jobs(self):
        queries = self._queries()
        sequential = run_batch(queries, jobs=1)
        parallel = run_batch(queries, jobs=2)
        assert not parallel.failures()
        assert sequential.verdicts() == parallel.verdicts()
        for seq_shard, par_shard in zip(sequential.shards, parallel.shards):
            assert seq_shard.name == par_shard.name
            assert seq_shard.reused_solve == par_shard.reused_solve
            assert seq_shard.result.iterations == par_shard.result.iterations

    def test_bad_target_fails_only_its_query_in_a_group(self):
        queries = [
            BatchQuery(name="good", program=PROGRAM, target="main:yes"),
            BatchQuery(name="bad", program=PROGRAM, target="main:missing"),
            BatchQuery(name="also-good", program=PROGRAM, target="main:done"),
        ]
        report = run_batch(queries, jobs=1)
        assert [shard.name for shard in report.failures()] == ["bad"]
        assert report.verdicts()["good"] is True
        assert report.verdicts()["also-good"] is True

    def test_solve_attribution_survives_first_query_error(self):
        """When the group's first query errors, the solve is attributed to
        the first successful one — queries_per_solve stays meaningful."""
        queries = [
            BatchQuery(name="bad", program=PROGRAM, target="main:missing"),
            BatchQuery(name="good", program=PROGRAM, target="main:yes"),
            BatchQuery(name="also-good", program=PROGRAM, target="main:done"),
        ]
        report = run_batch(queries, jobs=1)
        assert [shard.name for shard in report.failures()] == ["bad"]
        flags = {s.name: s.reused_solve for s in report.shards if s.ok}
        assert flags == {"good": False, "also-good": True}
        assert report.queries_per_solve == pytest.approx(2.0)
        # The shard-level flag and the result's details must agree.
        for shard in report.shards:
            if shard.ok:
                assert shard.result.details["reused_solve"] == shard.reused_solve

    def test_broken_program_fails_the_whole_group(self):
        queries = [
            BatchQuery(name="q1", program="main( begin", target="main:a"),
            BatchQuery(name="q2", program="main( begin", target="main:b"),
        ]
        report = run_batch(queries, jobs=1)
        assert len(report.failures()) == 2
        assert all("ParseError" in shard.error for shard in report.failures())
