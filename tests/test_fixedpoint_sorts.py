"""Unit tests for the sorts of the fixed-point calculus."""

import pytest

from repro.fixedpoint import BOOL, BoolSort, EnumSort, StructSort


class TestBoolSort:
    def test_width_and_paths(self):
        assert BOOL.width == 1
        assert BOOL.bit_paths() == [""]

    def test_encode_decode_roundtrip(self):
        for value in (False, True):
            assert BOOL.decode(BOOL.encode(value)) == value

    def test_values(self):
        assert list(BOOL.values()) == [False, True]
        assert BOOL.size() == 2

    def test_validity(self):
        assert BOOL.is_valid(True)
        assert BOOL.is_valid(0)
        assert not BOOL.is_valid(2)


class TestEnumSort:
    def test_width(self):
        assert EnumSort("pc", 1).width == 1
        assert EnumSort("pc", 2).width == 1
        assert EnumSort("pc", 3).width == 2
        assert EnumSort("pc", 8).width == 3
        assert EnumSort("pc", 9).width == 4

    def test_encode_decode_roundtrip(self):
        sort = EnumSort("pc", 11)
        for value in sort.values():
            assert sort.decode(sort.encode(value)) == value

    def test_out_of_range_encode_raises(self):
        sort = EnumSort("pc", 5)
        with pytest.raises(ValueError):
            sort.encode(5)

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            EnumSort("bad", 0)

    def test_values_and_validity(self):
        sort = EnumSort("k", 4)
        assert list(sort.values()) == [0, 1, 2, 3]
        assert sort.is_valid(3)
        assert not sort.is_valid(4)
        assert not sort.is_valid(-1)

    def test_equality(self):
        assert EnumSort("pc", 3) == EnumSort("pc", 3)
        assert EnumSort("pc", 3) != EnumSort("pc", 4)


class TestStructSort:
    @pytest.fixture()
    def state(self):
        return StructSort(
            "State", [("pc", EnumSort("PC", 3)), ("x", BOOL), ("y", BOOL)]
        )

    def test_bit_paths(self, state):
        assert state.bit_paths() == ["pc.0", "pc.1", "x", "y"]
        assert state.width == 4

    def test_field_access(self, state):
        assert state.field_sort("pc") == EnumSort("PC", 3)
        assert state.field_sort("x") == BOOL
        assert state.has_field("y")
        assert not state.has_field("z")
        with pytest.raises(KeyError):
            state.field_sort("z")

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            StructSort("Bad", [("x", BOOL), ("x", BOOL)])

    def test_encode_decode_roundtrip(self, state):
        value = {"pc": 2, "x": True, "y": False}
        assert state.decode(state.encode(value)) == value

    def test_encode_accepts_canonical_tuple(self, state):
        assert state.encode((2, True, False)) == state.encode({"pc": 2, "x": True, "y": False})

    def test_values_enumeration(self, state):
        values = list(state.values())
        assert len(values) == 3 * 2 * 2
        assert state.size() == 12
        assert len(set(values)) == len(values)

    def test_canonical_and_as_dict(self, state):
        value = {"pc": 1, "x": False, "y": True}
        canonical = state.canonical(value)
        assert canonical == (1, False, True)
        assert state.as_dict(canonical) == value

    def test_validity(self, state):
        assert state.is_valid({"pc": 0, "x": True, "y": True})
        assert not state.is_valid({"pc": 3, "x": True, "y": True})
        assert not state.is_valid({"pc": 0, "x": True})
        assert state.is_valid((2, False, False))
        assert not state.is_valid((2, False))
