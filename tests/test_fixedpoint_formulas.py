"""Unit tests for terms, formulas and equation systems."""

import pytest

from repro.fixedpoint import (
    BOOL,
    And,
    Const,
    EnumSort,
    Eq,
    Equation,
    EquationSystem,
    Exists,
    Lt,
    Not,
    Or,
    RelationDecl,
    StructSort,
    Succ,
    Var,
    all_vars,
    free_vars,
    relations_of,
)

PC = EnumSort("PC", 4)
STATE = StructSort("State", [("pc", PC), ("x", BOOL)])


class TestTerms:
    def test_var_bits(self):
        u = Var("u", STATE)
        assert u.bit_names() == ["u.pc.0", "u.pc.1", "u.x"]

    def test_field_access(self):
        u = Var("u", STATE)
        assert u.pc.bit_names() == ["u.pc.0", "u.pc.1"]
        assert u.x.bit_names() == ["u.x"]
        assert u.pc.root_var() == u

    def test_unknown_field_raises(self):
        u = Var("u", STATE)
        with pytest.raises(AttributeError):
            _ = u.nonexistent

    def test_field_on_scalar_raises(self):
        b = Var("b", BOOL)
        with pytest.raises(AttributeError):
            _ = b.anything

    def test_const_validation(self):
        assert Const(PC, 3).value == 3
        with pytest.raises(ValueError):
            Const(PC, 4)


class TestFormulas:
    def test_eq_requires_matching_sorts(self):
        u, v = Var("u", STATE), Var("v", STATE)
        Eq(u, v)  # fine
        with pytest.raises(TypeError):
            Eq(u, Var("p", PC))

    def test_eq_coerces_python_constants(self):
        u = Var("u", STATE)
        atom = Eq(u.pc, 2)
        assert isinstance(atom.right, Const)
        assert atom.right.value == 2
        flag = Eq(u.x, True)
        assert flag.right.value is True

    def test_enum_atoms_reject_non_enum(self):
        u = Var("u", STATE)
        with pytest.raises(TypeError):
            Lt(u.x, True)
        Succ(u.pc, Var("q", PC))  # fine

    def test_operator_overloading(self):
        u = Var("u", STATE)
        formula = Eq(u.pc, 1) & ~Eq(u.x, True) | Eq(u.pc, 0)
        assert isinstance(formula, Or)

    def test_and_flattens(self):
        u = Var("u", STATE)
        inner = And(Eq(u.pc, 0), Eq(u.x, True))
        outer = And(inner, Eq(u.pc, 1))
        assert len(outer.parts) == 3

    def test_exists_binds(self):
        u, v = Var("u", STATE), Var("v", STATE)
        body = Exists(v, Eq(u.pc, v.pc))
        assert set(free_vars(body)) == {"u"}
        assert set(all_vars(body)) == {"u", "v"}

    def test_conflicting_sorts_detected(self):
        u_state = Var("u", STATE)
        u_pc = Var("u", PC)
        with pytest.raises(TypeError):
            free_vars(And(Eq(u_state.pc, 0), Eq(u_pc, 0)))

    def test_quantifier_rejects_duplicates(self):
        v = Var("v", STATE)
        with pytest.raises(ValueError):
            Exists([v, Var("v", STATE)], Eq(v.pc, 0))


class TestRelations:
    def test_relation_application_checks_arity_and_sorts(self):
        R = RelationDecl("R", [("u", STATE), ("v", STATE)])
        u, v = Var("u", STATE), Var("v", STATE)
        R(u, v)  # fine
        with pytest.raises(TypeError):
            R(u)
        with pytest.raises(TypeError):
            R(u, Var("p", PC))

    def test_relations_of(self):
        R = RelationDecl("R", [("u", STATE)])
        S = RelationDecl("S", [("u", STATE)])
        u = Var("u", STATE)
        assert relations_of(Or(R(u), Not(S(u)))) == {"R", "S"}

    def test_equation_free_variable_check(self):
        R = RelationDecl("R", [("u", STATE)])
        u, w = Var("u", STATE), Var("w", STATE)
        Equation(R, Eq(u.pc, 0)).check()
        with pytest.raises(ValueError):
            Equation(R, Eq(w.pc, 0)).check()

    def test_system_validation(self):
        R = RelationDecl("R", [("u", STATE)])
        Input = RelationDecl("Input", [("u", STATE)])
        u = Var("u", STATE)
        system = EquationSystem([Equation(R, Or(Input(u), R(u)))], inputs=[Input])
        assert system.defined_names() == ["R"]
        assert system.dependencies("R") == {"R"}
        assert system.decl("Input") is Input

    def test_system_rejects_unknown_relation(self):
        R = RelationDecl("R", [("u", STATE)])
        Mystery = RelationDecl("Mystery", [("u", STATE)])
        u = Var("u", STATE)
        with pytest.raises(ValueError):
            EquationSystem([Equation(R, Mystery(u))], inputs=[])

    def test_system_rejects_double_definition(self):
        R = RelationDecl("R", [("u", STATE)])
        u = Var("u", STATE)
        with pytest.raises(ValueError):
            EquationSystem([Equation(R, Eq(u.pc, 0)), Equation(R, Eq(u.pc, 1))])
