"""Garbage-collection liveness tests for the BDD manager.

Covers the GC contract end to end: protected roots survive collection with
their semantics intact, dropped functions are reclaimed and their slots
reused, operation caches can never resurrect dead nodes, the growth triggers
fire and adapt, the :class:`Function` wrapper tracks external references
through its lifecycle, and the symbolic backend's plan memos are invalidated
by sweeps.
"""

import gc as pygc
import itertools

import pytest

from repro.bdd import BddFunction, BddManager, Function

VAR_NAMES = ["a", "b", "c", "d"]


def all_envs():
    for values in itertools.product([False, True], repeat=len(VAR_NAMES)):
        yield dict(zip(VAR_NAMES, values))


def build_junk(mgr, rounds=20):
    """Allocate nodes that nothing protects."""
    for i in range(rounds):
        node = mgr.cube({name: bool((i >> k) & 1) for k, name in enumerate(VAR_NAMES)})
        mgr.or_(node, mgr.var("a"))
        mgr.xor(node, mgr.var("b"))


class TestMarkAndSweep:
    def test_protected_roots_survive_collection(self):
        mgr = BddManager(VAR_NAMES)
        f = mgr.ref(mgr.ite(mgr.var("a"), mgr.xor(mgr.var("b"), mgr.var("c")), mgr.var("d")))
        truth = {tuple(env.values()): mgr.eval(f, env) for env in all_envs()}
        build_junk(mgr)
        reclaimed = mgr.collect_garbage()
        assert reclaimed > 0
        for env in all_envs():
            assert mgr.eval(f, env) == truth[tuple(env.values())]

    def test_extra_roots_survive_collection(self):
        mgr = BddManager(VAR_NAMES)
        f = mgr.and_(mgr.var("a"), mgr.not_(mgr.var("b")))
        build_junk(mgr)
        mgr.collect_garbage(roots=[f])
        # f's nodes are intact: rebuilding yields the identical edge.
        assert mgr.and_(mgr.var("a"), mgr.not_(mgr.var("b"))) == f
        assert mgr.eval(f, {"a": True, "b": False, "c": False, "d": False})

    def test_unreferenced_nodes_are_reclaimed_and_slots_reused(self):
        mgr = BddManager(VAR_NAMES)
        build_junk(mgr)
        live_before = len(mgr)
        capacity_before = mgr.stats()["capacity"]
        reclaimed = mgr.collect_garbage()
        assert reclaimed > 0
        assert len(mgr) == live_before - reclaimed
        stats = mgr.stats()
        # Every reclaimed slot is either free-listed for reuse or compacted
        # away entirely (the array store trims the trailing free run; the
        # dict store keeps all of them on the free list).
        trimmed = capacity_before - stats["capacity"]
        assert trimmed >= 0
        assert stats["gc"]["free_slots"] + trimmed == reclaimed
        # New allocations reuse freed slots / trimmed capacity instead of
        # growing the table past its pre-collection size.
        node = mgr.and_(mgr.var("a"), mgr.var("b"))
        assert mgr.stats()["capacity"] <= capacity_before
        assert mgr.eval(node, {"a": True, "b": True})

    def test_op_caches_never_resurrect_dead_nodes(self):
        mgr = BddManager(VAR_NAMES)
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        g = mgr.xor(f, mgr.var("c"))
        assert mgr._and_cache and mgr._xor_cache
        mgr.collect_garbage()
        # Everything was garbage: the caches must be empty, not serving
        # entries that point into reclaimed slots.
        assert not mgr._and_cache
        assert not mgr._xor_cache
        rebuilt = mgr.xor(mgr.and_(mgr.var("a"), mgr.var("b")), mgr.var("c"))
        for env in all_envs():
            expected = (env["a"] and env["b"]) != env["c"]
            assert mgr.eval(rebuilt, env) == expected

    def test_variable_projections_can_be_rebuilt_after_collection(self):
        mgr = BddManager(VAR_NAMES)
        mgr.var("a")
        mgr.collect_garbage()
        rebuilt = mgr.var("a")
        assert mgr.eval(rebuilt, {"a": True})
        assert not mgr.eval(rebuilt, {"a": False})
        assert mgr.support_names(rebuilt) == {"a"}

    def test_gc_hooks_run_on_reclaiming_sweeps(self):
        mgr = BddManager(VAR_NAMES)
        calls = []
        mgr.add_gc_hook(lambda: calls.append(1))
        mgr.collect_garbage()  # nothing to reclaim: hook not needed
        assert calls == []
        build_junk(mgr)
        mgr.collect_garbage()
        assert calls == [1]


class TestTriggers:
    def test_maybe_collect_fires_above_threshold(self):
        mgr = BddManager(VAR_NAMES, gc_threshold=8)
        build_junk(mgr)
        assert len(mgr) >= 8
        assert mgr.maybe_collect() is True
        assert mgr.stats()["gc"]["collections"] == 1
        assert len(mgr) < 8

    def test_maybe_collect_respects_disabled_gc(self):
        mgr = BddManager(VAR_NAMES, gc_threshold=8, gc_enabled=False)
        build_junk(mgr)
        assert mgr.maybe_collect() is False
        assert mgr.stats()["gc"]["collections"] == 0

    def test_threshold_grows_with_the_live_set(self):
        mgr = BddManager(VAR_NAMES, gc_threshold=4, gc_growth=2.0)
        roots = [mgr.ref(mgr.cube({"a": True, "b": bool(i & 1), "c": bool(i & 2)}))
                 for i in range(4)]
        build_junk(mgr)
        mgr.maybe_collect()
        stats = mgr.stats()
        assert stats["gc"]["threshold"] >= 4
        assert all(mgr.eval(r, {"a": True, "b": False, "c": False, "d": False}) in (True, False)
                   for r in roots)

    def test_cache_limit_drops_oversized_caches(self):
        mgr = BddManager(VAR_NAMES, gc_threshold=10_000, cache_limit=2)
        mgr.and_(mgr.var("a"), mgr.var("b"))
        mgr.and_(mgr.var("c"), mgr.var("d"))
        mgr.xor(mgr.var("a"), mgr.var("c"))
        assert mgr._cache_entries() > 2
        mgr.maybe_collect()
        assert mgr._cache_entries() == 0


class TestFunctionReferences:
    def test_function_refs_and_derefs(self):
        mgr = BddManager(VAR_NAMES)
        f = Function.var(mgr, "a") & Function.var(mgr, "b")
        assert mgr.external_references() > 0
        node = f.node
        truth = f.evaluate({"a": True, "b": True})
        build_junk(mgr)
        mgr.collect_garbage()
        # The wrapper's nodes survived.
        assert mgr.eval(node, {"a": True, "b": True}) == truth

    def test_dropped_functions_are_reclaimed(self):
        mgr = BddManager(VAR_NAMES)
        f = Function.var(mgr, "a") ^ Function.var(mgr, "b")
        g = f & Function.var(mgr, "c")
        del f, g
        pygc.collect()
        assert mgr.external_references() == 0
        live_before = len(mgr)
        reclaimed = mgr.collect_garbage()
        assert reclaimed > 0
        assert len(mgr) < live_before

    def test_release_is_idempotent(self):
        mgr = BddManager(VAR_NAMES)
        f = Function.var(mgr, "a")
        f.release()
        f.release()
        assert mgr.external_references() == 0

    def test_context_manager_releases(self):
        mgr = BddManager(VAR_NAMES)
        with Function.var(mgr, "a") & Function.var(mgr, "b") as f:
            assert mgr.external_references() > 0
            node = f.node
        pygc.collect()
        assert mgr.external_references() == 0
        assert mgr.collect_garbage() > 0
        assert node  # the edge value itself is just an int

    def test_bddfunction_alias(self):
        assert BddFunction is Function


class TestClearCachesLifecycle:
    def test_clear_caches_resets_stats_and_gc_bookkeeping(self):
        mgr = BddManager(VAR_NAMES, gc_threshold=8)
        build_junk(mgr)
        mgr.maybe_collect()
        stats = mgr.stats()
        assert stats["gc"]["collections"] == 1
        assert stats["ops"]["and"]["misses"] > 0
        mgr.clear_caches()
        stats = mgr.stats()
        assert stats["gc"]["collections"] == 0
        assert stats["gc"]["reclaimed"] == 0
        assert all(op["hits"] == 0 and op["misses"] == 0 for op in stats["ops"].values())
        assert stats["peak_nodes"] == stats["nodes"]
        assert all(size == 0 for size in stats["cache_sizes"].values())

    def test_clear_caches_keeps_external_references(self):
        mgr = BddManager(VAR_NAMES)
        f = mgr.ref(mgr.and_(mgr.var("a"), mgr.var("b")))
        mgr.clear_caches()
        assert mgr.external_references() == 1
        build_junk(mgr)
        mgr.collect_garbage()
        assert mgr.eval(f, {"a": True, "b": True})


class TestSymbolicBackendGc:
    def _system(self):
        from repro.fixedpoint import (
            And,
            EnumSort,
            Equation,
            EquationSystem,
            Exists,
            Or,
            RelationDecl,
            Var,
        )

        node_sort = EnumSort("N", 4)
        Reach = RelationDecl("Reach", [("u", node_sort)])
        Init = RelationDecl("Init", [("u", node_sort)])
        Trans = RelationDecl("Trans", [("u", node_sort), ("v", node_sort)])
        u = Var("u", node_sort)
        x = Var("x", node_sort)
        body = Or(Init(u), Exists(x, And(Reach(x), Trans(x, u))))
        system = EquationSystem([Equation(Reach, body)], inputs=[Init, Trans])
        return system, Reach, Init, Trans, u

    def test_gc_sweep_clears_plan_memos_not_static_skeletons(self):
        from repro.fixedpoint import SymbolicBackend, Var

        system, Reach, Init, Trans, u = self._system()
        backend = SymbolicBackend(system)
        mgr = backend.manager
        plan = backend.compile_formula(system.equation("Reach").body)
        init = mgr.ref(backend.context.encode_cube(u, 0))
        trans = mgr.ref(mgr.FALSE)
        interps = {"Init": init, "Trans": trans, "Reach": mgr.FALSE}
        first = plan.eval(backend, interps)
        assert plan.memo
        build_junk_vars = [mgr.var(name) for name in mgr.var_names[:2]]
        mgr.xor(build_junk_vars[0], build_junk_vars[1])
        mgr.collect_garbage(roots=[first, init, trans])
        # The sweep invalidated the interpretation-keyed memos...
        assert not plan.memo
        # ...but protected static skeletons survive and evaluation re-derives
        # the same result.
        assert plan.eval(backend, interps) == first

    def test_rebuilt_equations_release_superseded_plans(self):
        from repro.fixedpoint import Equation, SymbolicBackend

        system, Reach, Init, Trans, u = self._system()
        backend = SymbolicBackend(system)
        mgr = backend.manager
        equation = system.equation("Reach")
        init = mgr.ref(backend.context.encode_cube(u, 0))
        interps = {"Init": init, "Trans": mgr.FALSE, "Reach": mgr.FALSE}
        backend.eval_equation(equation, interps)
        memos_after_first = len(backend._plan_memos)
        protected_after_first = len(backend._protected)
        # A caller that rebuilds the Equation object every round must not
        # accumulate plan memos or protected skeletons.
        for _ in range(5):
            rebuilt = Equation(equation.decl, equation.body)
            assert backend.eval_equation(rebuilt, interps) == init
        assert len(backend._plan_memos) == memos_after_first
        assert len(backend._protected) == protected_after_first

    def test_missing_interpretation_raises_named_error(self):
        import pytest

        from repro.fixedpoint import SymbolicBackend

        system, Reach, Init, Trans, u = self._system()
        backend = SymbolicBackend(system)
        with pytest.raises(KeyError, match="no interpretation provided for relation 'Init'"):
            backend.eval_equation(system.equation("Reach"), {"Trans": 0, "Reach": 0})

    def test_backend_close_detaches_from_shared_manager(self):
        from repro.fixedpoint import SymbolicBackend

        system, Reach, Init, Trans, u = self._system()
        keeper = SymbolicBackend(system)
        context = keeper.context
        mgr = keeper.manager
        keeper.compile_formula(system.equation("Reach").body)
        hooks_before = len(mgr._gc_hooks)
        roots_before = mgr.external_references()
        # A second, short-lived backend over the same long-lived context.
        transient = SymbolicBackend(system, context=context)
        transient.compile_formula(system.equation("Reach").body)
        assert len(mgr._gc_hooks) == hooks_before + 1
        transient.close()
        transient.close()  # idempotent
        assert len(mgr._gc_hooks) == hooks_before
        assert mgr.external_references() == roots_before
        # The surviving backend still evaluates after a sweep.
        init = mgr.ref(keeper.context.encode_cube(u, 0))
        mgr.collect_garbage(roots=[init])
        plan = keeper.compile_formula(system.equation("Reach").body)
        interps = {"Init": init, "Trans": mgr.FALSE, "Reach": mgr.FALSE}
        assert plan.eval(keeper, interps) == init

    def test_close_returns_live_nodes_to_baseline_on_shared_context(self):
        """A short-lived backend over a shared context must leave no nodes
        behind: after ``close()`` + a sweep, ``live_nodes`` is back to the
        keeper-only baseline."""
        from repro.fixedpoint import And, Exists, SymbolicBackend, Var

        system, Reach, Init, Trans, u = self._system()
        keeper = SymbolicBackend(system)
        context = keeper.context
        mgr = keeper.manager
        keeper.compile_formula(system.equation("Reach").body)
        mgr.collect_garbage()
        baseline = len(mgr)
        # The transient backend compiles a *different* formula so it builds
        # static skeleton nodes of its own (not shared with the keeper's).
        x = Var("x", Trans.params[0][1])
        transient = SymbolicBackend(system, context=context)
        plan = transient.compile_formula(Exists(x, And(Init(x), Trans(x, u), Reach(x))))
        init = mgr.ref(transient.context.encode_cube(u, 2))
        plan.eval(transient, {"Init": init, "Trans": mgr.FALSE, "Reach": mgr.FALSE})
        assert len(mgr) > baseline
        transient.close()
        mgr.deref(init)
        mgr.collect_garbage()
        assert len(mgr) == baseline

    def test_release_after_close_does_not_steal_references(self):
        """Releasing a plan whose bookkeeping entry is gone (the backend was
        closed) must not deref again — the manager reference may belong to
        another owner by then."""
        from repro.fixedpoint import Eq, SymbolicBackend
        from repro.fixedpoint.terms import Const

        system, Reach, Init, Trans, u = self._system()
        backend = SymbolicBackend(system)
        mgr = backend.manager
        plan = backend.compile_formula(Eq(u, Const(Init.params[0][1], 3)))
        (edge,) = plan.protected_edges()
        backend.close()
        # Another owner now holds the only external reference to the edge.
        mgr.ref(edge)
        refs_before = mgr.external_references()
        backend._release_plan(plan)
        backend._release_plan(plan)
        assert mgr.external_references() == refs_before
        # The other owner's reference still protects the edge across sweeps.
        mgr.collect_garbage()
        assert mgr.eval(edge, {mgr.var_name(i): True for i in range(mgr.num_vars)}) in (
            True,
            False,
        )

    def test_double_release_does_not_steal_sibling_plan_protection(self):
        """Two plans baking in the same static edge: releasing one of them
        twice must deref exactly once, leaving the sibling's protection
        intact (each plan node releases at most once)."""
        from repro.fixedpoint import Eq, SymbolicBackend
        from repro.fixedpoint.terms import Const

        system, Reach, Init, Trans, u = self._system()
        backend = SymbolicBackend(system)
        formula = Eq(u, Const(Init.params[0][1], 1))
        plan_a = backend.compile_formula(formula)
        plan_b = backend.compile_formula(formula)
        (edge,) = plan_a.protected_edges()
        assert plan_b.protected_edges() == (edge,)  # canonical: same static edge
        assert backend._protected[edge] == 2
        backend._release_plan(plan_a)
        backend._release_plan(plan_a)  # second release must be a no-op
        assert backend._protected[edge] == 1
        backend.manager.collect_garbage()
        # plan_b still evaluates against the protected skeleton.
        assert plan_b.eval(backend, {}) == edge

    def test_session_close_returns_manager_to_baseline(self):
        """A session retains templates, Target BDDs, query plans and solved
        interpretations; ``close()`` must release every one of them — zero
        external references, and a sweep empties the node table."""
        from repro.api import AnalysisSession

        source = """
        decl g;
        main() begin
          g := T;
          if (g) then yes: skip; fi
          if (!g) then no: skip; fi
        end
        """
        session = AnalysisSession(source, default_algorithm="ef")
        session.solve()
        session.check("main:yes")
        session.check("main:no")
        session.check("main:yes", algorithm="summary")  # second algorithm state
        managers = [state.backend.manager for state in session._states.values()]
        assert len(managers) == 2
        for mgr in managers:
            assert mgr.external_references() > 0
            assert len(mgr) > 1
        session.close()
        for mgr in managers:
            assert mgr.external_references() == 0
            mgr.collect_garbage()
            assert len(mgr) == 1  # only the shared terminal survives

    def test_session_close_after_resource_failure_returns_to_baseline(self):
        """A query killed mid-solve by its resource envelope must not leak:
        the exception path sweeps the failed run's garbage, later queries
        still work, and ``close()`` returns the manager to its baseline
        exactly as on the happy path."""
        import pytest

        from repro.api import AnalysisSession
        from repro.errors import ResourceExhausted
        from repro.limits import ResourceLimits

        source = """
        decl g;
        main() begin
          g := T;
          if (g) then yes: skip; fi
        end
        """
        session = AnalysisSession(
            source, default_algorithm="ef", limits=ResourceLimits(max_iterations=1)
        )
        with pytest.raises(ResourceExhausted):
            session.check("main:yes")
        mgr = next(iter(session._states.values())).backend.manager
        live_after_failure = len(mgr)
        # The compiled templates (external roots) survived; the failed
        # run's intermediates did not pin the table open.
        assert mgr.external_references() > 0
        session.set_limits(None)
        assert session.check("main:yes").reachable
        session.close()
        assert mgr.external_references() == 0
        mgr.collect_garbage()
        assert len(mgr) == 1
        assert live_after_failure >= 1  # sanity: the failure left a live table
        """retain/release pin interpretation edges across sweeps; release is
        count-guarded so strangers' references are never stolen."""
        from repro.fixedpoint import SymbolicBackend

        system, Reach, Init, Trans, u = self._system()
        backend = SymbolicBackend(system)
        mgr = backend.manager
        edge = backend.context.encode_cube(u, 2)
        backend.retain(edge)
        backend.retain(edge)
        assert backend.retained_count() == 1
        mgr.collect_garbage()
        assert backend.context.encode_cube(u, 2) == edge  # survived the sweep
        backend.release(edge)
        backend.release(edge)
        backend.release(edge)  # over-release: must be a no-op
        assert backend.retained_count() == 0
        # Another owner's reference must survive a close after over-release.
        mgr.ref(edge)
        refs = mgr.external_references()
        backend.release(edge)
        assert mgr.external_references() == refs

    def test_nested_evaluation_with_aggressive_gc_is_correct(self):
        from repro.fixedpoint import SymbolicBackend, evaluate_nested, Var

        system, Reach, Init, Trans, u = self._system()
        # Tiny threshold: collections fire at nearly every safe point.
        backend = SymbolicBackend(system)
        backend.manager._gc_floor = backend.manager._gc_threshold = 1
        mgr = backend.manager
        v = Var("v", Trans.params[1][1])
        init = mgr.ref(backend.context.encode_cube(u, 0))
        trans = mgr.ref(
            mgr.disjoin(
                mgr.and_(
                    backend.context.encode_cube(u, a),
                    backend.context.encode_cube(v, b),
                )
                for a, b in ((0, 1), (1, 2), (2, 3))
            )
        )
        result = evaluate_nested(
            system, "Reach", backend, {"Init": init, "Trans": trans}
        )
        reached = set(backend.models(result.value, Reach))
        assert reached == {(0,), (1,), (2,), (3,)}
        stats = result.backend_stats
        assert stats["gc_steps"] > 0
        assert stats["manager"]["gc"]["collections"] > 0
