"""Property-based tests: BDD operations agree with brute-force truth tables."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager

VAR_NAMES = ["p", "q", "r", "s"]


# ---------------------------------------------------------------------------
# A tiny propositional expression AST evaluated both ways.
# ---------------------------------------------------------------------------
def expr_strategy():
    leaves = st.sampled_from([("var", name) for name in VAR_NAMES] + [("const", True), ("const", False)])

    def extend(children):
        return st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.just("and"), children, children),
            st.tuples(st.just("or"), children, children),
            st.tuples(st.just("xor"), children, children),
            st.tuples(st.just("ite"), children, children, children),
        )

    return st.recursive(leaves, extend, max_leaves=12)


def eval_concrete(expr, env):
    tag = expr[0]
    if tag == "var":
        return env[expr[1]]
    if tag == "const":
        return expr[1]
    if tag == "not":
        return not eval_concrete(expr[1], env)
    if tag == "and":
        return eval_concrete(expr[1], env) and eval_concrete(expr[2], env)
    if tag == "or":
        return eval_concrete(expr[1], env) or eval_concrete(expr[2], env)
    if tag == "xor":
        return eval_concrete(expr[1], env) != eval_concrete(expr[2], env)
    if tag == "ite":
        return (
            eval_concrete(expr[2], env)
            if eval_concrete(expr[1], env)
            else eval_concrete(expr[3], env)
        )
    raise AssertionError(tag)


def build_bdd(expr, mgr):
    tag = expr[0]
    if tag == "var":
        return mgr.var(expr[1])
    if tag == "const":
        return mgr.TRUE if expr[1] else mgr.FALSE
    if tag == "not":
        return mgr.not_(build_bdd(expr[1], mgr))
    if tag == "and":
        return mgr.and_(build_bdd(expr[1], mgr), build_bdd(expr[2], mgr))
    if tag == "or":
        return mgr.or_(build_bdd(expr[1], mgr), build_bdd(expr[2], mgr))
    if tag == "xor":
        return mgr.xor(build_bdd(expr[1], mgr), build_bdd(expr[2], mgr))
    if tag == "ite":
        return mgr.ite(
            build_bdd(expr[1], mgr), build_bdd(expr[2], mgr), build_bdd(expr[3], mgr)
        )
    raise AssertionError(tag)


def all_envs():
    for values in itertools.product([False, True], repeat=len(VAR_NAMES)):
        yield dict(zip(VAR_NAMES, values))


@settings(max_examples=150, deadline=None)
@given(expr_strategy())
def test_bdd_matches_truth_table(expr):
    mgr = BddManager(VAR_NAMES)
    node = build_bdd(expr, mgr)
    for env in all_envs():
        assert mgr.eval(node, env) == eval_concrete(expr, env)


@settings(max_examples=100, deadline=None)
@given(expr_strategy())
def test_count_sat_matches_enumeration(expr):
    mgr = BddManager(VAR_NAMES)
    node = build_bdd(expr, mgr)
    expected = sum(1 for env in all_envs() if eval_concrete(expr, env))
    assert mgr.count_sat(node, VAR_NAMES) == expected


@settings(max_examples=100, deadline=None)
@given(expr_strategy(), st.sampled_from(VAR_NAMES))
def test_exists_matches_semantics(expr, var):
    mgr = BddManager(VAR_NAMES)
    node = build_bdd(expr, mgr)
    quantified = mgr.exists(node, [var])
    for env in all_envs():
        expected = eval_concrete(expr, {**env, var: True}) or eval_concrete(
            expr, {**env, var: False}
        )
        assert mgr.eval(quantified, env) == expected


@settings(max_examples=100, deadline=None)
@given(expr_strategy(), st.sampled_from(VAR_NAMES))
def test_forall_matches_semantics(expr, var):
    mgr = BddManager(VAR_NAMES)
    node = build_bdd(expr, mgr)
    quantified = mgr.forall(node, [var])
    for env in all_envs():
        expected = eval_concrete(expr, {**env, var: True}) and eval_concrete(
            expr, {**env, var: False}
        )
        assert mgr.eval(quantified, env) == expected


@settings(max_examples=100, deadline=None)
@given(expr_strategy(), expr_strategy())
def test_and_exists_equals_and_then_exists(left, right):
    mgr = BddManager(VAR_NAMES)
    f = build_bdd(left, mgr)
    g = build_bdd(right, mgr)
    qvars = ["p", "r"]
    assert mgr.and_exists(f, g, qvars) == mgr.exists(mgr.and_(f, g), qvars)


@settings(max_examples=100, deadline=None)
@given(expr_strategy())
def test_sat_all_enumerates_exactly_the_models(expr):
    mgr = BddManager(VAR_NAMES)
    node = build_bdd(expr, mgr)
    listed = {
        tuple(model[mgr.var_index(name)] for name in VAR_NAMES)
        for model in mgr.sat_all(node, VAR_NAMES)
    }
    expected = {
        tuple(env[name] for name in VAR_NAMES)
        for env in all_envs()
        if eval_concrete(expr, env)
    }
    assert listed == expected


@settings(max_examples=60, deadline=None)
@given(expr_strategy())
def test_rename_then_rename_back_is_identity(expr):
    mgr = BddManager(VAR_NAMES + ["p2", "q2", "r2", "s2"])
    node = build_bdd(expr, mgr)
    forward = {name: name + "2" for name in VAR_NAMES}
    backward = {name + "2": name for name in VAR_NAMES}
    assert mgr.rename(mgr.rename(node, forward), backward) == node
