"""A deliberately simple reference ROBDD with *no* complement edges.

This is the oracle for the randomized differential suite
(``test_bdd_differential.py``): it mirrors the seed kernel's representation —
two terminal nodes, plain (level, lo, hi) unique table, recursive negation
that copies structure — with none of the production manager's complement
edges, garbage collection or cache machinery.  Keeping it tiny and obviously
correct is the point; do not optimise it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

_TERMINAL_LEVEL = 1 << 60


class ReferenceBdd:
    """Minimal no-complement ROBDD over named variables."""

    FALSE = 0
    TRUE = 1

    def __init__(self, var_names: List[str]) -> None:
        self._level: List[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._lo: List[int] = [0, 1]
        self._hi: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._names = list(var_names)
        self._index = {name: i for i, name in enumerate(var_names)}

    def _mk(self, level: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        key = (level, lo, hi)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._lo.append(lo)
            self._hi.append(hi)
            self._unique[key] = node
        return node

    def var(self, name: str) -> int:
        return self._mk(self._index[name], self.FALSE, self.TRUE)

    def not_(self, f: int) -> int:
        if f <= 1:
            return 1 - f
        return self._mk(self._level[f], self.not_(self._lo[f]), self.not_(self._hi[f]))

    def _cofactors(self, f: int, level: int) -> Tuple[int, int]:
        if self._level[f] == level:
            return self._lo[f], self._hi[f]
        return f, f

    def _apply(self, f: int, g: int, op) -> int:
        if f <= 1 and g <= 1:
            return op(f, g)
        level = min(self._level[f], self._level[g])
        f_lo, f_hi = self._cofactors(f, level)
        g_lo, g_hi = self._cofactors(g, level)
        return self._mk(level, self._apply(f_lo, g_lo, op), self._apply(f_hi, g_hi, op))

    def and_(self, f: int, g: int) -> int:
        if f == 0 or g == 0:
            return 0
        if f == 1:
            return g
        if g == 1:
            return f
        return self._apply(f, g, lambda a, b: a & b)

    def or_(self, f: int, g: int) -> int:
        if f == 1 or g == 1:
            return 1
        if f == 0:
            return g
        if g == 0:
            return f
        return self._apply(f, g, lambda a, b: a | b)

    def xor(self, f: int, g: int) -> int:
        return self._apply(f, g, lambda a, b: a ^ b)

    def ite(self, f: int, g: int, h: int) -> int:
        return self.or_(self.and_(f, g), self.and_(self.not_(f), h))

    def exists(self, f: int, names: List[str]) -> int:
        result = f
        for name in names:
            level = self._index[name]
            result = self._exists_one(result, level)
        return result

    def _exists_one(self, f: int, level: int) -> int:
        if f <= 1 or self._level[f] > level:
            return f
        if self._level[f] == level:
            return self.or_(self._lo[f], self._hi[f])
        return self._mk(
            self._level[f],
            self._exists_one(self._lo[f], level),
            self._exists_one(self._hi[f], level),
        )

    def eval(self, f: int, env: Dict[str, bool]) -> bool:
        node = f
        while node > 1:
            level = self._level[node]
            node = self._hi[node] if env[self._names[level]] else self._lo[node]
        return node == self.TRUE

    def node_count(self, f: int) -> int:
        seen: set = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return len(seen)
