"""Differential tests: every engine must return the same verdict.

The random-program generator produces small but structurally varied Boolean
programs; the symbolic Getafix algorithms (three fixed-point formulations),
the explicit BEBOP-style summary solver and the MOPED-style pushdown solver
share essentially no code beyond the parser and CFG, so agreement across a
seed sweep is strong evidence of functional correctness.
"""

import pytest

from repro.algorithms import run_sequential
from repro.baselines import run_bebop, run_moped
from repro.benchgen import random_program
from repro.frontends import resolve_target

SEEDS = list(range(24))


def verdicts_for(seed: int):
    program = random_program(seed)
    locations = resolve_target(program, "main:target")
    bebop = run_bebop(program, locations).reachable
    moped = run_moped(program, locations).reachable
    ef = run_sequential(program, locations, algorithm="ef").reachable
    ef_opt = run_sequential(program, locations, algorithm="ef-opt").reachable
    summary = run_sequential(program, locations, algorithm="summary").reachable
    return {"bebop": bebop, "moped": moped, "ef": ef, "ef-opt": ef_opt, "summary": summary}


@pytest.mark.parametrize("seed", SEEDS)
def test_all_engines_agree(seed):
    verdicts = verdicts_for(seed)
    assert len(set(verdicts.values())) == 1, f"seed {seed}: engines disagree: {verdicts}"


def test_seed_sweep_is_not_degenerate():
    """The random generator must produce both reachable and unreachable cases."""
    outcomes = {run_bebop(
        random_program(seed), resolve_target(random_program(seed), "main:target")
    ).reachable for seed in SEEDS}
    assert outcomes == {True, False}
