"""Tests for the program linter (:func:`repro.analysis.lint_program`).

Covers the finding taxonomy (one fixture per code), the clean path, the
dedupe/stability guarantees, the ``getafix lint`` CLI subcommand (JSON
shape and the 0/1/2 exit convention) and the daemon's inline ``lint`` op.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.analysis import LintFinding, lint_program
from repro.boolprog import parse_program
from repro.frontends.cli import main as cli_main
from repro.service import AnalysisDaemon, DaemonConfig

CLEAN = """
decl g;
main() begin
  decl x;
  x := *;
  call helper(x);
  if (g) then target: skip; fi
end
helper(v) begin
  g := v;
end
"""

DIRTY = """
decl g, ghost;
main() begin
  decl x, scratch;
  x := *;
  scratch := x;
  if (g) then
    skip;
  fi
  assume(x ^ x);
  if (x) then target: skip; fi
  assume(F);
  skip;
end
stray(w) begin
  ghost := w;
end
"""


def codes(findings):
    return {finding.code for finding in findings}


class TestLintProgram:
    def test_clean_program_has_no_findings(self):
        assert lint_program(CLEAN) == []

    def test_dirty_program_finding_codes(self):
        found = codes(lint_program(DIRTY))
        assert "unreachable-procedure" in found  # stray
        assert "dead-variable" in found  # ghost, scratch
        assert "dead-write" in found  # scratch := x
        assert "assume-false" in found  # assume(x ^ x) folds to F
        assert "always-false-read" in found  # if (g) with g never written
        assert "unreachable-code" in found  # skip after literal assume(F)

    def test_accepts_parsed_programs(self):
        assert codes(lint_program(parse_program(DIRTY))) == codes(
            lint_program(DIRTY)
        )

    def test_findings_are_deduped_and_stable(self):
        first = lint_program(DIRTY)
        assert len(first) == len(set(first))
        assert first == lint_program(DIRTY)

    def test_constant_condition_reported(self):
        source = """
        decl g;
        main() begin
          if (T) then g := !g; fi
          if (g) then target: skip; fi
        end
        """
        found = lint_program(source)
        assert "constant-condition" in codes(found)
        assert any(
            finding.procedure == "main" and finding.severity == "warning"
            for finding in found
        )

    def test_finding_to_dict_shape(self):
        finding = lint_program(DIRTY)[0]
        payload = finding.to_dict()
        assert set(payload) == {"code", "procedure", "message", "severity"}
        assert finding == LintFinding(**payload)


class TestLintCli:
    def write(self, tmp_path, name, source):
        path = tmp_path / name
        path.write_text(source)
        return str(path)

    def test_clean_file_exits_zero_with_json(self, tmp_path, capsys):
        status = cli_main(["lint", self.write(tmp_path, "clean.bp", CLEAN)])
        records = json.loads(capsys.readouterr().out)
        assert status == 0
        assert records[0]["clean"] is True and records[0]["findings"] == []

    def test_dirty_file_exits_one_with_findings(self, tmp_path, capsys):
        status = cli_main(["lint", self.write(tmp_path, "dirty.bp", DIRTY)])
        records = json.loads(capsys.readouterr().out)
        assert status == 1
        assert records[0]["clean"] is False
        assert {finding["code"] for finding in records[0]["findings"]} >= {
            "unreachable-procedure",
            "dead-variable",
        }

    def test_multiple_files_aggregate_status(self, tmp_path, capsys):
        status = cli_main(
            [
                "lint",
                self.write(tmp_path, "clean.bp", CLEAN),
                self.write(tmp_path, "dirty.bp", DIRTY),
            ]
        )
        records = json.loads(capsys.readouterr().out)
        assert status == 1
        assert [record["clean"] for record in records] == [True, False]

    def test_parse_error_exits_two(self, tmp_path, capsys):
        status = cli_main(
            ["lint", self.write(tmp_path, "broken.bp", "main() begin oops")]
        )
        capsys.readouterr()
        assert status == 2

    def test_missing_file_exits_two(self, tmp_path, capsys):
        status = cli_main(["lint", str(tmp_path / "absent.bp")])
        capsys.readouterr()
        assert status == 2


class TestLintDaemonOp:
    def run_op(self, request):
        async def scenario():
            daemon = AnalysisDaemon(DaemonConfig(workers=0))
            await daemon.start()
            try:
                return await daemon.handle_request(request)
            finally:
                await daemon.shutdown(drain=False)

        return asyncio.run(scenario())

    def test_clean_program(self):
        response = self.run_op({"op": "lint", "program": CLEAN, "id": 7})
        assert response["ok"] is True
        assert response["op"] == "lint"
        assert response["clean"] is True and response["findings"] == []
        assert response["id"] == 7

    def test_dirty_program_findings_mirror_cli_shape(self):
        response = self.run_op({"op": "lint", "program": DIRTY})
        assert response["ok"] is True and response["clean"] is False
        found = {finding["code"] for finding in response["findings"]}
        assert "unreachable-procedure" in found
        assert all(
            set(finding) == {"code", "procedure", "message", "severity"}
            for finding in response["findings"]
        )

    def test_parse_error_is_typed(self):
        response = self.run_op({"op": "lint", "program": "main() begin oops"})
        assert response["ok"] is False
        assert response["status"] == "error"

    @pytest.mark.parametrize("program", [None, "", "   ", 42])
    def test_bad_program_is_bad_request(self, program):
        request = {"op": "lint"}
        if program is not None:
            request["program"] = program
        response = self.run_op(request)
        assert response["ok"] is False
        assert response["error"]["type"] == "BadRequest"
