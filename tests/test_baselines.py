"""Tests for the explicit baseline engines (BEBOP-style and MOPED-style)."""

import pytest

from repro.baselines import BebopSolver, MopedSolver, run_bebop, run_moped
from repro.baselines.semantics import ExplicitContext, eval_expr
from repro.boolprog import build_cfg, parse_program
from repro.boolprog.parser import parse_expression
from repro.frontends import resolve_target

SIMPLE = """
decl g;
main() begin
  decl x;
  x := T;
  call raise_flag(x);
  if (g) then
    target: skip;
  fi
end
raise_flag(v) begin
  g := v;
end
"""

RECURSIVE = """
main() begin
  decl r;
  r := flip(T);
  if (!r) then
    hit: skip;
  fi
end
flip(b) begin
  decl r;
  if (b) then
    r := flip(!b);
    return r;
  fi
  return b;
end
"""


def targets(source, target):
    program = parse_program(source)
    return program, resolve_target(program, target)


class TestExplicitSemantics:
    @pytest.fixture()
    def context(self):
        return ExplicitContext(build_cfg(parse_program(SIMPLE)))

    def test_initial_valuations(self, context):
        assert context.initial_globals() == (False,)
        assert context.initial_globals({"g": True}) == (True,)
        assert context.initial_locals("main") == (False,)

    def test_lookup(self, context):
        assert context.lookup("main", "x", (True,), (False,)) is True
        assert context.lookup("main", "g", (True,), (False,)) is False

    def test_eval_expr_nondet(self, context):
        expression = parse_expression("x & *")
        values = eval_expr(expression, context, "main", (True,), (False,))
        assert values == {True, False}
        values = eval_expr(expression, context, "main", (False,), (False,))
        assert values == {False}

    def test_eval_expr_operators(self, context):
        for text, expected in [
            ("T | F", {True}),
            ("T ^ T", {False}),
            ("T == F", {False}),
            ("T != F", {True}),
            ("!x", {False}),
        ]:
            expression = parse_expression(text)
            assert eval_expr(expression, context, "main", (True,), (False,)) == expected


class TestBebop:
    def test_positive(self):
        program, locs = targets(SIMPLE, "main:target")
        result = run_bebop(program, locs)
        assert result.reachable
        assert result.algorithm == "bebop-explicit"
        assert result.summary_nodes > 0

    def test_negative(self):
        program, locs = targets(
            """
            decl g;
            main() begin
              if (g) then target: skip; fi
            end
            """,
            "main:target",
        )
        assert not run_bebop(program, locs).reachable

    def test_recursive_flip(self):
        # flip(T) -> flip(F) -> returns F, so !r holds and `hit` is reachable.
        program, locs = targets(RECURSIVE, "main:hit")
        assert run_bebop(program, locs).reachable

    def test_return_values_through_summaries(self):
        program, locs = targets(
            """
            main() begin
              decl a, b;
              a, b := pair(T);
              if (a & !b) then win: skip; fi
            end
            pair(x) begin return x, !x; end
            """,
            "main:win",
        )
        assert run_bebop(program, locs).reachable

    def test_early_stop_flag(self):
        program, locs = targets(SIMPLE, "main:target")
        eager = BebopSolver(program).check(locs, early_stop=True)
        full = BebopSolver(program).check(locs, early_stop=False)
        assert eager.reachable and full.reachable
        assert eager.iterations <= full.iterations


class TestMoped:
    def test_positive(self):
        program, locs = targets(SIMPLE, "main:target")
        result = run_moped(program, locs)
        assert result.reachable
        assert result.algorithm == "moped-post*"
        assert result.details["automaton_transitions"] > 0

    def test_negative(self):
        program, locs = targets(
            """
            decl g;
            main() begin
              decl x;
              x := g;
              if (x) then target: skip; fi
            end
            """,
            "main:target",
        )
        assert not run_moped(program, locs).reachable

    def test_recursion_saturates(self):
        # Unbounded recursion: the set of reachable configurations is infinite
        # but the post* automaton is finite; saturation must terminate.
        program, locs = targets(
            """
            decl hit;
            main() begin
              call spin(T);
              if (hit) then target: skip; fi
            end
            spin(v) begin
              hit := v;
              if (*) then call spin(v); fi
            end
            """,
            "main:target",
        )
        assert run_moped(program, locs).reachable

    def test_agrees_with_bebop_on_handwritten_programs(self):
        sources = [
            (SIMPLE, "main:target"),
            (RECURSIVE, "main:hit"),
            (
                """
                decl a, b;
                main() begin
                  decl r;
                  r := xor_global();
                  if (r & a) then t: skip; fi
                end
                xor_global() begin
                  a := !a;
                  b := a ^ b;
                  return b;
                end
                """,
                "main:t",
            ),
        ]
        for source, target in sources:
            program, locs = targets(source, target)
            assert run_bebop(program, locs).reachable == run_moped(program, locs).reachable
