"""Randomized differential suite: complement-edge manager vs a reference
no-complement build.

~200 seeded random formulas are compiled into both the production
:class:`BddManager` (complement edges, shared caches, GC machinery) and the
deliberately naive :class:`reference_bdd.ReferenceBdd` oracle, checking for
each one that

* the truth tables agree on every assignment,
* ``not_(not_(f))`` is *the same edge* as ``f`` and negation never allocates,
* satisfying-assignment counts agree,
* the complement-edge node count never exceeds the no-complement baseline
  (and wins strictly overall across the corpus),
* existential quantification agrees with the oracle.
"""

import itertools
import random

import pytest

from repro.bdd import BddManager

from reference_bdd import ReferenceBdd

VAR_NAMES = ["a", "b", "c", "d", "e", "f"]
NUM_FORMULAS = 200
MAX_DEPTH = 5


def random_formula(rng: random.Random, depth: int = 0):
    """A random propositional AST with negation-heavy weighting."""
    if depth >= MAX_DEPTH or rng.random() < 0.25:
        if rng.random() < 0.1:
            return ("const", rng.random() < 0.5)
        return ("var", rng.choice(VAR_NAMES))
    op = rng.choices(
        ["not", "and", "or", "xor", "ite"], weights=[3, 2, 2, 2, 1], k=1
    )[0]
    if op == "not":
        return ("not", random_formula(rng, depth + 1))
    if op == "ite":
        return (
            "ite",
            random_formula(rng, depth + 1),
            random_formula(rng, depth + 1),
            random_formula(rng, depth + 1),
        )
    return (op, random_formula(rng, depth + 1), random_formula(rng, depth + 1))


def build(expr, mgr):
    tag = expr[0]
    if tag == "var":
        return mgr.var(expr[1])
    if tag == "const":
        return mgr.TRUE if expr[1] else mgr.FALSE
    if tag == "not":
        return mgr.not_(build(expr[1], mgr))
    if tag == "and":
        return mgr.and_(build(expr[1], mgr), build(expr[2], mgr))
    if tag == "or":
        return mgr.or_(build(expr[1], mgr), build(expr[2], mgr))
    if tag == "xor":
        return mgr.xor(build(expr[1], mgr), build(expr[2], mgr))
    if tag == "ite":
        return mgr.ite(build(expr[1], mgr), build(expr[2], mgr), build(expr[3], mgr))
    raise AssertionError(tag)


def all_envs():
    for values in itertools.product([False, True], repeat=len(VAR_NAMES)):
        yield dict(zip(VAR_NAMES, values))


@pytest.fixture(scope="module")
def corpus():
    rng = random.Random(20260729)
    return [random_formula(rng) for _ in range(NUM_FORMULAS)]


@pytest.fixture(params=["array", "dict"])
def store(request):
    """Both node-store layouts must satisfy the whole differential contract."""
    return request.param


def test_truth_tables_and_node_counts_match_reference(corpus, store):
    mgr = BddManager(VAR_NAMES, store=store)
    ref = ReferenceBdd(VAR_NAMES)
    complement_total = 0
    reference_total = 0
    for expr in corpus:
        node = build(expr, mgr)
        oracle = build(expr, ref)
        for env in all_envs():
            assert mgr.eval(node, env) == ref.eval(oracle, env), expr
        n_new = mgr.node_count(node)
        n_ref = ref.node_count(oracle)
        assert n_new <= n_ref, (expr, n_new, n_ref)
        complement_total += n_new
        reference_total += n_ref
    # Across a negation-heavy corpus the complement-edge build must win
    # strictly, not just tie.
    assert complement_total < reference_total


def test_negation_is_the_identity_edge_flip(corpus, store):
    mgr = BddManager(VAR_NAMES, store=store)
    for expr in corpus:
        node = build(expr, mgr)
        stats_before = mgr.stats()
        negated = mgr.not_(node)
        assert mgr.not_(negated) == node
        if node > 1:
            assert negated != node
            # f and not f share every decision node.
            assert mgr.node_count(negated) == mgr.node_count(node)
        stats_after = mgr.stats()
        assert stats_after["nodes"] == stats_before["nodes"]
        assert stats_after["ops"] == stats_before["ops"]


def test_count_sat_matches_reference(corpus, store):
    mgr = BddManager(VAR_NAMES, store=store)
    ref = ReferenceBdd(VAR_NAMES)
    for expr in corpus:
        node = build(expr, mgr)
        oracle = build(expr, ref)
        expected = sum(1 for env in all_envs() if ref.eval(oracle, env))
        assert mgr.count_sat(node, VAR_NAMES) == expected


def test_exists_matches_reference(corpus, store):
    mgr = BddManager(VAR_NAMES, store=store)
    ref = ReferenceBdd(VAR_NAMES)
    rng = random.Random(4242)
    for expr in corpus[:80]:
        qvars = rng.sample(VAR_NAMES, rng.randint(1, 3))
        node = mgr.exists(build(expr, mgr), qvars)
        oracle = ref.exists(build(expr, ref), qvars)
        remaining = [name for name in VAR_NAMES if name not in qvars]
        for values in itertools.product([False, True], repeat=len(remaining)):
            env = dict(zip(remaining, values))
            env.update({name: False for name in qvars})
            assert mgr.eval(node, env) == ref.eval(oracle, env)


def test_explicit_stack_build_agrees_with_reference(corpus, store):
    mgr = BddManager(VAR_NAMES, explicit_stack=True, store=store)
    ref = ReferenceBdd(VAR_NAMES)
    for expr in corpus[:60]:
        node = build(expr, mgr)
        oracle = build(expr, ref)
        for env in all_envs():
            assert mgr.eval(node, env) == ref.eval(oracle, env), expr


def test_layouts_agree_edge_for_edge(corpus):
    """The two layouts are not just truth-table equal: identical operation
    sequences produce identical signed edges, counts and stats-visible node
    totals, including across an interleaved GC sweep."""
    arr = BddManager(VAR_NAMES, store="array")
    dct = BddManager(VAR_NAMES, store="dict")
    assert arr.stats()["store"] == "array"
    assert dct.stats()["store"] == "dict"
    swept = False
    for i, expr in enumerate(corpus):
        node_a = build(expr, arr)
        node_d = build(expr, dct)
        if not swept:
            # Identical allocation order => identical edges, until a sweep
            # makes slot numbering layout-dependent (the dict store refills
            # free-listed slots, the array store compacts and re-extends).
            assert node_a == node_d, expr
        assert arr.count_sat(node_a, VAR_NAMES) == dct.count_sat(node_d, VAR_NAMES)
        if i == NUM_FORMULAS // 2:
            # Mid-corpus sweep with nothing protected: both layouts must
            # reclaim everything down to the terminal.
            assert arr.collect_garbage() > 0
            assert dct.collect_garbage() > 0
            assert len(arr) == len(dct) == 1
            assert arr.stats()["capacity"] == 1  # tail fully compacted
            swept = True
    assert len(arr) == len(dct)


def test_count_sat_wide_variable_sets_fall_back_exactly():
    """Counts past 62 variables overflow the vectorised int64 pass; the
    array store must transparently produce exact big-int counts."""
    names = [f"w{i}" for i in range(70)]
    arr = BddManager(names, store="array")
    dct = BddManager(names, store="dict")
    # f = w0 or w35 or w69 over all 70 variables.
    fa = arr.disjoin([arr.var("w0"), arr.var("w35"), arr.var("w69")])
    fd = dct.disjoin([dct.var("w0"), dct.var("w35"), dct.var("w69")])
    expected = (1 << 70) - (1 << 67)  # all minus the all-three-false space
    assert arr.count_sat(fa) == expected
    assert dct.count_sat(fd) == expected
    assert arr.count_sat(arr.TRUE) == 1 << 70
