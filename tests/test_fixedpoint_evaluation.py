"""Evaluation tests: symbolic vs explicit backends, nested vs simultaneous modes."""

import pytest

from repro.fixedpoint import (
    BOOL,
    And,
    EnumSort,
    Eq,
    Equation,
    EquationSystem,
    Exists,
    ExplicitBackend,
    Not,
    Or,
    RelationDecl,
    StructSort,
    SymbolicBackend,
    Var,
    evaluate_nested,
    evaluate_simultaneous,
    relation_from_predicate,
)
from repro.fixedpoint.evaluator import EvaluationError

NODE = EnumSort("Node", 6)


def make_reachability_system():
    """Graph reachability written as a fixed-point equation (Section 3 example)."""
    Reach = RelationDecl("Reach", [("u", NODE)])
    Init = RelationDecl("Init", [("u", NODE)])
    Trans = RelationDecl("Trans", [("u", NODE), ("v", NODE)])
    u = Var("u", NODE)
    x = Var("x", NODE)
    body = Or(Init(u), Exists(x, And(Reach(x), Trans(x, u))))
    system = EquationSystem([Equation(Reach, body)], inputs=[Init, Trans])
    return system, Reach, Init, Trans


GRAPH_EDGES = {(0, 1), (1, 2), (2, 3), (4, 5)}
INITIAL_NODES = {0}
EXPECTED_REACHABLE = {0, 1, 2, 3}


class TestExplicitEvaluation:
    def test_reachability_least_fixed_point(self):
        system, Reach, Init, Trans = make_reachability_system()
        backend = ExplicitBackend()
        inputs = {
            "Init": frozenset((n,) for n in INITIAL_NODES),
            "Trans": frozenset(GRAPH_EDGES),
        }
        result = evaluate_nested(system, "Reach", backend, inputs)
        assert {u for (u,) in result.value} == EXPECTED_REACHABLE
        assert result.iterations >= 4

    def test_simultaneous_matches_nested_for_monotone_system(self):
        system, *_ = make_reachability_system()
        backend = ExplicitBackend()
        inputs = {
            "Init": frozenset((n,) for n in INITIAL_NODES),
            "Trans": frozenset(GRAPH_EDGES),
        }
        nested = evaluate_nested(system, "Reach", backend, inputs)
        simultaneous = evaluate_simultaneous(system, "Reach", backend, inputs)
        assert nested.value == simultaneous.value

    def test_missing_input_raises(self):
        system, *_ = make_reachability_system()
        with pytest.raises(ValueError):
            evaluate_nested(system, "Reach", ExplicitBackend(), {"Init": frozenset()})

    def test_relation_from_predicate(self):
        Trans = RelationDecl("Trans", [("u", NODE), ("v", NODE)])
        interp = relation_from_predicate(Trans, lambda a, b: (a, b) in GRAPH_EDGES)
        assert interp == frozenset(GRAPH_EDGES)

    def test_early_stop(self):
        system, *_ = make_reachability_system()
        backend = ExplicitBackend()
        inputs = {
            "Init": frozenset((n,) for n in INITIAL_NODES),
            "Trans": frozenset(GRAPH_EDGES),
        }
        result = evaluate_nested(
            system,
            "Reach",
            backend,
            inputs,
            stop=lambda interps: any(u == 1 for (u,) in interps["Reach"]),
        )
        assert result.stopped_early
        assert (1,) in result.value

    def test_non_terminating_system_hits_iteration_bound(self):
        Flip = RelationDecl("Flip", [("b", BOOL)])
        b = Var("b", BOOL)
        # Flip(b) = not Flip(b): classic non-monotone oscillation.
        system = EquationSystem([Equation(Flip, Not(Flip(b)))])
        with pytest.raises(EvaluationError):
            evaluate_nested(system, "Flip", ExplicitBackend(), {}, max_iterations=10)


class TestSymbolicEvaluation:
    def _symbolic_inputs(self, backend):
        mgr = backend.manager
        u = Var("u", NODE)
        v = Var("v", NODE)
        init = mgr.disjoin(
            backend.context.encode_cube(u, n) for n in INITIAL_NODES
        )
        trans = mgr.disjoin(
            mgr.and_(backend.context.encode_cube(u, a), backend.context.encode_cube(v, b))
            for a, b in GRAPH_EDGES
        )
        return {"Init": init, "Trans": trans}

    def test_reachability_matches_explicit(self):
        system, Reach, Init, Trans = make_reachability_system()
        backend = SymbolicBackend(system)
        inputs = self._symbolic_inputs(backend)
        result = evaluate_nested(system, "Reach", backend, inputs)
        reachable = {values[0] for values in backend.models(result.value, Reach)}
        assert reachable == EXPECTED_REACHABLE

    def test_symbolic_count(self):
        system, Reach, *_ = make_reachability_system()
        backend = SymbolicBackend(system)
        inputs = self._symbolic_inputs(backend)
        result = evaluate_nested(system, "Reach", backend, inputs)
        assert backend.count(result.value, Reach) == len(EXPECTED_REACHABLE)

    def test_simultaneous_symbolic(self):
        system, Reach, *_ = make_reachability_system()
        backend = SymbolicBackend(system)
        inputs = self._symbolic_inputs(backend)
        nested = evaluate_nested(system, "Reach", backend, inputs)
        simultaneous = evaluate_simultaneous(system, "Reach", backend, inputs)
        assert backend.equal(nested.value, simultaneous.value)


class TestSymbolicStructsAndRepeatedArgs:
    STATE = StructSort("S", [("pc", EnumSort("PC", 3)), ("flag", BOOL)])

    def _system(self):
        R = RelationDecl("R", [("a", self.STATE), ("b", self.STATE)])
        Pairs = RelationDecl("Pairs", [("a", self.STATE), ("b", self.STATE)])
        Diag = RelationDecl("Diag", [("a", self.STATE)])
        a, b = Var("a", self.STATE), Var("b", self.STATE)
        system = EquationSystem(
            [
                Equation(R, Pairs(a, b)),
                # Diag(a) holds iff Pairs relates a to itself: repeated argument.
                Equation(Diag, Pairs(a, a)),
            ],
            inputs=[Pairs],
        )
        return system, R, Pairs, Diag

    def test_repeated_argument_application(self):
        system, R, Pairs, Diag = self._system()
        explicit = ExplicitBackend()
        pair_set = frozenset(
            {((0, True), (0, True)), ((1, False), (2, True)), ((2, False), (2, False))}
        )
        nested = evaluate_nested(system, "Diag", explicit, {"Pairs": pair_set})
        expected_diag = {((0, True),), ((2, False),)}
        assert set(nested.value) == expected_diag

        symbolic = SymbolicBackend(system)
        a, b = Var("a", self.STATE), Var("b", self.STATE)
        pairs_node = symbolic.manager.disjoin(
            symbolic.manager.and_(
                symbolic.context.encode_cube(a, self.STATE.as_dict(left)),
                symbolic.context.encode_cube(b, self.STATE.as_dict(right)),
            )
            for left, right in pair_set
        )
        result = evaluate_nested(system, "Diag", symbolic, {"Pairs": pairs_node})
        models = {self.STATE.canonical(values[0]) for values in symbolic.models(result.value, Diag)}
        assert models == {value[0] for value in expected_diag}


class TestNonMonotoneNestedSemantics:
    """A tiny non-monotone system exercising the nested algorithmic semantics."""

    def test_frontier_style_system(self):
        # Grow(n) accumulates nodes 0..4 one per outer iteration by adding the
        # successor of the *frontier* (elements of Grow not in Done), where
        # Done is re-evaluated each round from Grow using negation.
        N = EnumSort("N", 6)
        Grow = RelationDecl("Grow", [("n", N)])
        New = RelationDecl("New", [("n", N)])
        Step = RelationDecl("Step", [("m", N), ("n", N)])
        n, m = Var("n", N), Var("m", N)
        grow_eq = Equation(Grow, Or(Eq(n, 0), Grow(n), New(n)))
        new_eq = Equation(New, Exists(m, And(Grow(m), Step(m, n), Not(Grow(n)))))
        system = EquationSystem([grow_eq, new_eq], inputs=[Step])
        chain = frozenset((i, i + 1) for i in range(5))
        backend = ExplicitBackend()
        result = evaluate_nested(system, "Grow", backend, {"Step": chain})
        assert {v for (v,) in result.value} == {0, 1, 2, 3, 4, 5}
        # One new node per outer iteration plus the stabilisation round.
        assert result.iterations >= 6
