"""Shared pytest configuration.

BDD kernel sanitizer shard
--------------------------
Exporting ``REPRO_DEBUG_CHECKS=1`` turns on
:meth:`repro.bdd.BddManager._debug_validate` for every manager the suite
constructs: the autouse fixture below normalises the value so worker
subprocesses (the service pool, shard executors) inherit the canonical
``"1"``, and managers consult the variable at construction time.  One CI
shard runs the BDD-heavy test files this way; any refcount, free-list,
unique-table or op-cache corruption then fails the owning test at the next
GC safe point instead of surfacing later as a wrong verdict.
"""

import os

import pytest

DEBUG_CHECKS = os.environ.get("REPRO_DEBUG_CHECKS", "") not in ("", "0")


@pytest.fixture(autouse=True)
def bdd_debug_checks(monkeypatch):
    """Propagate the sanitizer switch to every test (and its subprocesses)."""
    if DEBUG_CHECKS:
        monkeypatch.setenv("REPRO_DEBUG_CHECKS", "1")
    yield
