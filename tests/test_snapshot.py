"""Tests for shared-memory snapshots of solved BDD node tables.

The load-bearing properties:

* **Canonicity across the boundary** — rebuilding a frozen function inside a
  :class:`SnapshotOverlayManager` yields the *identical signed edge*: the
  overlay's ``_mk`` probes the frozen unique table before allocating, so
  base hits never materialise as fresh tail nodes and ``result == TRUE``
  stays a sound verdict check.
* **Differential identity** — verdicts, iteration counts and model counts
  answered through a snapshot attach equal the live session's, on every
  sequential algorithm, with the handle round-tripped through pickle (it
  crosses process boundaries in the shard and service paths).
* **Lifecycle** — attachers never unlink, owners always do: the shard
  driver's ``finally``, the daemon's drain and a worker SIGKILL must all
  leave ``/dev/shm`` free of ``repro-snap-*`` segments; ``unlink`` is
  idempotent.
* **Budget equivalence** — ``NodeBudgetExceeded`` fires on *live* nodes in
  both store layouts: a post-GC array store with large capacity but few
  live slots must not trip a budget the dict store would pass.
"""

from __future__ import annotations

import asyncio
import os
import pickle
import signal
import time

import pytest

from repro.api import AnalysisSession
from repro.algorithms import SEQUENTIAL_ALGORITHMS
from repro.bdd import BddManager, SnapshotOverlayManager, SnapshotView
from repro.bdd import snapshot as bdd_snapshot
from repro.bdd.manager import BddError
from repro.boolprog import parse_program
from repro.errors import NodeBudgetExceeded
from repro.frontends import resolve_target
from repro.parallel import BatchQuery, run_shards, run_shards_snapshot
from repro.service import AnalysisDaemon, DaemonConfig
from repro.testing import faults

ALGORITHMS = sorted(SEQUENTIAL_ALGORITHMS)

PROGRAM = """
decl g;
main() begin
  decl x;
  x := *;
  call set_flag(x);
  if (g) then yes: skip; fi
  if (!g) then no_g: skip; fi
  if (g & !g) then never: skip; fi
  done: skip;
end
set_flag(v) begin
  g := v;
  if (!v) then cold: skip; fi
end
"""

TARGETS = ["main:yes", "main:no_g", "main:never", "set_flag:cold", "main:done"]
EXPECTED = [True, True, False, True, True]


@pytest.fixture(autouse=True)
def _array_store(monkeypatch):
    """Snapshots exist only for the array layout: pin it even when the
    suite runs under ``REPRO_BDD_STORE=dict`` (the env propagates to
    worker processes; explicit ``store=`` arguments still win)."""
    monkeypatch.setenv("REPRO_BDD_STORE", "array")


@pytest.fixture(autouse=True)
def _no_leaked_segments():
    """Every test must leave /dev/shm exactly as it found it."""
    before = set(bdd_snapshot.list_segments())
    yield
    faults.clear()
    leaked = set(bdd_snapshot.list_segments()) - before
    for name in leaked:  # clean up so one failure doesn't cascade
        bdd_snapshot.unlink(name)
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _ripple(mgr, bits=6):
    """A mid-sized function with shared structure: sum-parity of two words."""
    node = mgr.TRUE
    carry = mgr.FALSE
    for i in range(bits):
        a = mgr.var(f"a{i}")
        b = mgr.var(f"b{i}")
        node = mgr.and_(node, mgr.xor(mgr.xor(a, b), carry))
        carry = mgr.or_(mgr.and_(a, b), mgr.and_(carry, mgr.xor(a, b)))
    return mgr.and_(node, mgr.not_(carry))


class TestKernelSnapshot:
    def _frozen(self, bits=6):
        names = [f"a{i}" for i in range(bits)] + [f"b{i}" for i in range(bits)]
        mgr = BddManager(names)
        f = mgr.ref(_ripple(mgr, bits))
        mgr.collect_garbage()
        expected_count = mgr.count_sat(f)
        name = bdd_snapshot.freeze(mgr)
        return mgr, f, expected_count, name

    def test_canonical_rebuild_yields_identical_edges(self):
        mgr, f, expected_count, name = self._frozen()
        try:
            with SnapshotView(name) as view:
                overlay = SnapshotOverlayManager(view)
                baseline = overlay.stats()["snapshot"]["overlay_nodes"]
                f2 = _ripple(overlay)
                # Intermediates (swept out of the frozen image) re-allocate
                # in the tail, but the result is found in the frozen unique
                # table: the identical signed edge, across the boundary.
                assert f2 == f
                assert (f2 >> 1) < view.capacity
                assert overlay.count_sat(f2) == expected_count
                # A sweep rooted at the result drops every tail residue.
                overlay.collect_garbage(roots=(f2,))
                assert overlay.stats()["snapshot"]["overlay_nodes"] == baseline
        finally:
            assert bdd_snapshot.unlink(name) is True

    def test_vectorized_count_matches_scalar_on_frozen_root(self):
        mgr, f, expected_count, name = self._frozen()
        try:
            with SnapshotView(name) as view:
                overlay = SnapshotOverlayManager(view)
                # Base-rooted: the vectorised pass runs on the shared image.
                assert overlay.count_sat(f) == expected_count
                # Complement edge and restricted-variable counts too.
                assert overlay.count_sat(f ^ 1) == (1 << mgr.num_vars) - expected_count
                support = overlay.support(f)
                assert overlay.count_sat(f, sorted(support)) == mgr.count_sat(
                    f, sorted(mgr.support(f))
                )
        finally:
            bdd_snapshot.unlink(name)

    def test_overlay_gc_is_tail_only(self):
        mgr, f, _, name = self._frozen()
        try:
            with SnapshotView(name) as view:
                overlay = SnapshotOverlayManager(view)
                baseline = overlay.stats()["snapshot"]["overlay_nodes"]
                base_image = (bytes(view.level), bytes(view.lo), bytes(view.hi))
                # Allocate overlay-only garbage: a fresh variable ordering
                # pattern the base never built.
                junk = overlay.conjoin(
                    overlay.xor(overlay.var(f"a{i}"), overlay.var(f"b{(i + 3) % 6}"))
                    for i in range(6)
                )
                assert overlay.stats()["snapshot"]["overlay_nodes"] > baseline
                reclaimed = overlay.collect_garbage(roots=(f,))
                assert reclaimed > 0
                assert overlay.stats()["snapshot"]["overlay_nodes"] == baseline
                # The frozen image is untouched — tail-only sweep.
                assert (bytes(view.level), bytes(view.lo), bytes(view.hi)) == base_image
                # The manager still answers from the (immortal) base.
                assert overlay.count_sat(f) == mgr.count_sat(f)
                del junk
        finally:
            bdd_snapshot.unlink(name)

    def test_freeze_rejects_dict_store_and_overlays(self):
        mgr = BddManager(["x", "y"], store="dict")
        mgr.and_(mgr.var("x"), mgr.var("y"))
        with pytest.raises(BddError, match="array node store"):
            bdd_snapshot.freeze(mgr)
        _, f, _, name = self._frozen()
        try:
            with SnapshotView(name) as view:
                overlay = SnapshotOverlayManager(view)
                with pytest.raises(BddError, match="overlay"):
                    bdd_snapshot.freeze(overlay)
        finally:
            bdd_snapshot.unlink(name)

    def test_unlink_is_idempotent(self):
        _, _, _, name = self._frozen()
        assert bdd_snapshot.unlink(name) is True
        assert bdd_snapshot.unlink(name) is False

    def test_view_rejects_incompatible_segment(self):
        from multiprocessing import shared_memory

        name = bdd_snapshot.segment_name()
        shm = shared_memory.SharedMemory(create=True, size=256, name=name)
        try:
            shm.buf[:8] = b"\x00" * 8
            with pytest.raises(BddError, match="not a compatible snapshot"):
                SnapshotView(name)
        finally:
            shm.close()
            shm.unlink()


class TestSessionSnapshot:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_round_trip_verdicts_through_pickle(self, algorithm):
        program = parse_program(PROGRAM)
        locations = [resolve_target(program, target) for target in TARGETS]
        with AnalysisSession(program, default_algorithm=algorithm) as session:
            session.solve(algorithm)
            live = session.check_all(locations, algorithm=algorithm)
            handle = session.freeze(algorithm)
        try:
            # The handle crosses process boundaries as plain data; the node
            # table never leaves the segment.
            handle = pickle.loads(pickle.dumps(handle))
            attached = AnalysisSession.from_snapshot(handle)
            try:
                reused = attached.check_all(locations, algorithm=algorithm)
            finally:
                attached.close()
        finally:
            assert handle.unlink() is True
        assert [r.reachable for r in live] == EXPECTED
        for live_result, snap_result in zip(live, reused):
            assert snap_result.reachable == live_result.reachable
            assert snap_result.iterations == live_result.iterations
            assert snap_result.details["reused_solve"]
            assert snap_result.summary_states == live_result.summary_states

    def test_attach_survives_nondet_choice_bits(self):
        # A `*` expression lazily allocates auxiliary __choice bits in the
        # freezer's manager; the frozen order therefore mentions levels the
        # re-encoded system never declares.  Attach must tolerate them
        # (regression: the overlay backend rejected the order outright and
        # the worker silently fell back to a cold re-solve).
        source = """\
decl g;
main() begin
    g := *;
    if (g) then maybe: skip; fi
end
"""
        program = parse_program(source)
        location = resolve_target(program, "main:maybe")
        with AnalysisSession(program) as session:
            session.solve("summary")
            live = session.check(location, algorithm="summary")
            handle = session.freeze("summary")
        try:
            attached = AnalysisSession.from_snapshot(handle)
            try:
                reused = attached.check(location, algorithm="summary")
            finally:
                attached.close()
        finally:
            assert handle.unlink() is True
        assert reused.reachable == live.reachable
        assert reused.details["reused_solve"]

    def test_freeze_requires_a_solved_state(self):
        with AnalysisSession(parse_program(PROGRAM)) as session:
            with pytest.raises(RuntimeError, match="solve"):
                session.freeze("summary")

    def test_freeze_requires_the_array_store(self, monkeypatch):
        monkeypatch.setenv("REPRO_BDD_STORE", "dict")
        with AnalysisSession(parse_program(PROGRAM)) as session:
            session.solve("summary")
            with pytest.raises(BddError, match="array node store"):
                session.freeze("summary")


class TestShardsSnapshot:
    def _queries(self):
        return [
            BatchQuery(name=f"q:{target}", program=PROGRAM, target=target,
                       expected=expected)
            for target, expected in zip(TARGETS, EXPECTED)
        ]

    def test_fan_out_matches_classic_grouped_path(self):
        queries = self._queries()
        classic, classic_mode, _ = run_shards(queries, jobs=2)
        snap, mode, reason = run_shards_snapshot(queries, jobs=2)
        assert mode == "snapshot-pool", reason
        assert reason is None
        assert [s.ok for s in snap] == [True] * len(queries)
        assert not any(s.mismatch for s in snap)
        assert [s.result.reachable for s in snap] == [
            s.result.reachable for s in classic
        ]
        # Solve attribution mirrors the classic grouped path: exactly one
        # shard carries the solve, the rest are post-passes.
        assert [s.reused_solve for s in snap].count(False) == 1
        assert snap[0].reused_solve is False
        # The fan-out genuinely used more than one process.
        assert len({s.pid for s in snap}) >= 2

    def test_worker_death_recovers_inline_without_resolving(self, tmp_path):
        queries = self._queries()
        plan = faults.FaultPlan(
            kill_query="q:main:yes", once_token=str(tmp_path / "latch")
        )
        snap, mode, reason = run_shards_snapshot(queries, jobs=2, fault_plan=plan)
        assert mode == "snapshot-pool"
        assert reason is not None and "re-attached inline" in reason
        assert [s.ok for s in snap] == [True] * len(queries)
        assert [s.result.reachable for s in snap] == EXPECTED

    def test_ineligible_batches_fall_back_with_reason(self):
        mixed = self._queries()
        mixed[1] = BatchQuery(
            name=mixed[1].name,
            program=mixed[1].program,
            target=mixed[1].target,
            algorithm="summary" if mixed[0].algorithm != "summary" else "ef",
            expected=mixed[1].expected,
        )
        results, mode, reason = run_shards_snapshot(mixed, jobs=2)
        assert mode != "snapshot-pool"
        assert reason == "queries span multiple programs/algorithms/envelopes"
        assert [s.result.reachable for s in results] == EXPECTED

    def test_single_query_does_not_fan_out(self):
        results, mode, reason = run_shards_snapshot(self._queries()[:1], jobs=2)
        assert mode != "snapshot-pool"
        assert reason == "nothing to fan out"
        assert results[0].result.reachable is True


class TestServiceSnapshot:
    def test_catalog_survives_worker_kill_without_resolving(self):
        async def scenario():
            daemon = AnalysisDaemon(
                DaemonConfig(workers=1, snapshots=True, retry_backoff=0.01)
            )
            await daemon.start()
            try:
                request = {
                    "op": "query",
                    "name": "snap",
                    "program": PROGRAM,
                    "target": "main:yes",
                }
                first = await daemon.handle_request(dict(request))
                published = daemon.metrics()
                victim = daemon._pool._handles[0].pid
                os.kill(victim, signal.SIGKILL)
                deadline = time.monotonic() + 10.0
                while daemon._pool._handles[0].pid == victim:
                    if time.monotonic() > deadline:
                        break
                    await asyncio.sleep(0.02)
                second = await daemon.handle_request(
                    {**request, "id": "after-kill", "target": "main:no_g"}
                )
                return first, published, second, daemon.metrics()
            finally:
                await daemon.shutdown(drain=False)

        first, published, second, metrics = asyncio.run(scenario())
        assert first["ok"] and first["reachable"] is True
        assert published["counters"]["snapshots_published"] == 1
        assert published["snapshots"]["catalog"] == 1
        # The rebuilt worker attached the catalogued segment: the verdict
        # arrives as a warm post-pass with the solve count unchanged.
        assert second["ok"] and second["reachable"] is True
        assert second.get("warm") is True
        assert second.get("snapshot_attached") is True
        assert metrics["counters"]["snapshot_attaches"] == 1
        assert metrics["counters"]["solves"] == 1
        # The drain (the autouse fixture asserts /dev/shm is clean) ran in
        # scenario's finally; the catalog must be empty afterwards.
        assert not bdd_snapshot.list_segments()

    def test_snapshots_disabled_by_default(self):
        async def scenario():
            daemon = AnalysisDaemon(DaemonConfig(workers=0))
            await daemon.start()
            try:
                response = await daemon.handle_request(
                    {"op": "query", "program": PROGRAM, "target": "main:yes"}
                )
                return response, daemon.metrics()
            finally:
                await daemon.shutdown(drain=False)

        response, metrics = asyncio.run(scenario())
        assert response["ok"] and response["reachable"] is True
        assert metrics["counters"]["snapshots_published"] == 0
        assert metrics["snapshots"]["enabled"] is False


class TestBudgetEquivalence:
    def _churn(self, mgr, rounds=40, bits=8):
        """Allocate then abandon BDDs so capacity outgrows live nodes."""
        for round_ in range(rounds):
            acc = mgr.FALSE
            for i in range(bits):
                term = mgr.and_(
                    mgr.var(f"a{i}"),
                    mgr.xor(mgr.var(f"b{i}"), mgr.var(f"a{(i + round_) % bits}")),
                )
                acc = mgr.or_(acc, term)
        return acc

    @pytest.mark.parametrize("store", ["array", "dict"])
    def test_budget_counts_live_slots_not_capacity(self, store):
        names = [f"a{i}" for i in range(8)] + [f"b{i}" for i in range(8)]
        mgr = BddManager(names, store=store)
        self._churn(mgr)
        mgr.collect_garbage()
        live = mgr.stats()["nodes"]
        peak = mgr.stats()["peak_nodes"]
        assert peak > live  # the churn left real headroom to misaccount
        # A budget between live and peak must NOT trip: only live slots
        # count, never the high-water table capacity.
        mgr.set_node_budget(live + 16)
        small = mgr.and_(mgr.var("a0"), mgr.var("b0"))
        assert small != mgr.FALSE
        # And it must still trip once live genuinely exceeds it.
        with pytest.raises(NodeBudgetExceeded) as excinfo:
            self._churn(mgr, rounds=80)
        assert excinfo.value.consumed > excinfo.value.budget

    def test_trip_point_is_layout_independent(self):
        names = [f"a{i}" for i in range(8)] + [f"b{i}" for i in range(8)]
        consumed = {}
        for store in ("array", "dict"):
            mgr = BddManager(names, store=store)
            mgr.set_node_budget(64)
            with pytest.raises(NodeBudgetExceeded) as excinfo:
                self._churn(mgr)
            consumed[store] = excinfo.value.consumed
        assert consumed["array"] == consumed["dict"]
