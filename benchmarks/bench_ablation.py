"""Ablation benchmarks for the design choices called out in DESIGN.md.

Not part of the paper's tables, but they quantify the claims the paper makes
in prose:

* the progression summary -> entry-forward -> optimised entry-forward
  (Section 4: "increasingly complex to describe but increasingly efficient"),
* early termination (the appendix formula's first clause),
* the frontier (``Relevant``) optimisation, visible as the gap between the
  plain and the optimised entry-forward algorithm on call-heavy programs.
"""

from __future__ import annotations

import pytest

from repro.algorithms import run_sequential
from repro.benchgen import DriverSpec, TerminatorSpec, make_driver, make_terminator
from repro.frontends import resolve_target

from conftest import measure


def _driver_workload():
    spec = DriverSpec(name="ablation-driver", handlers=3, flags=3, helpers=2, positive=True)
    program = make_driver(spec)
    return program, resolve_target(program, spec.target)


def _terminator_workload(positive: bool):
    spec = TerminatorSpec(
        name="ablation-terminator", counter_bits=3, variant="schoose", positive=positive
    )
    program = make_terminator(spec)
    return program, resolve_target(program, spec.target)


@pytest.mark.parametrize("algorithm", ["summary", "ef", "ef-opt"])
def test_algorithm_progression_on_driver(benchmark, algorithm):
    program, locations = _driver_workload()
    result = measure(benchmark, run_sequential, program, locations, algorithm=algorithm)
    assert result.reachable
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["iterations"] = result.iterations


@pytest.mark.parametrize("algorithm", ["ef", "ef-opt"])
@pytest.mark.parametrize("positive", [True, False], ids=["positive", "negative"])
def test_algorithm_progression_on_terminator(benchmark, algorithm, positive):
    program, locations = _terminator_workload(positive)
    result = measure(benchmark, run_sequential, program, locations, algorithm=algorithm)
    assert result.reachable == positive
    benchmark.extra_info["algorithm"] = algorithm


@pytest.mark.parametrize("early_stop", [True, False], ids=["early-stop", "full-fixpoint"])
def test_early_termination(benchmark, early_stop):
    program, locations = _driver_workload()
    result = measure(
        benchmark, run_sequential, program, locations, algorithm="ef", early_stop=early_stop
    )
    assert result.reachable
    benchmark.extra_info["early_stop"] = early_stop
    benchmark.extra_info["iterations"] = result.iterations
