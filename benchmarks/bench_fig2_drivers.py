"""Figure 2, rows "SLAM drivers" (iscsiprt / floppy / negative drivers / iscsi).

The paper's driver suites are large (10K–17K LOC) Boolean abstractions with a
handful of globals; all tools answer in a few seconds, with MOPED and BEBOP
slightly ahead of GETAFIX because of MUCKE's fixed start-up cost.  The
synthetic driver generator reproduces the *shape* (dispatcher + handlers +
lock/flag protocol) at laptop scale; the benchmark sweeps the handler count,
with positive (lock-discipline bug planted) and negative variants.
"""

from __future__ import annotations

import pytest

from repro.algorithms import run_sequential
from repro.baselines import run_bebop, run_moped
from repro.benchgen import DriverSpec, make_driver
from repro.frontends import resolve_target

from conftest import measure

ENGINES = {
    "getafix-ef": lambda program, locations: run_sequential(program, locations, algorithm="ef"),
    "getafix-ef-opt": lambda program, locations: run_sequential(
        program, locations, algorithm="ef-opt"
    ),
    "bebop": run_bebop,
    "moped": run_moped,
}

SIZES = [2, 3]


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("handlers", SIZES)
@pytest.mark.parametrize("positive", [True, False], ids=["positive", "negative"])
def test_driver(benchmark, engine, handlers, positive):
    spec = DriverSpec(
        name=f"driver-{handlers}",
        handlers=handlers,
        flags=min(4, handlers),
        helpers=max(1, handlers // 2),
        positive=positive,
    )
    program = make_driver(spec)
    locations = resolve_target(program, spec.target)
    runner = ENGINES[engine]

    result = measure(benchmark, runner, program, locations)
    assert result.reachable == positive
    benchmark.extra_info["procedures"] = len(program.procedures)
    benchmark.extra_info["globals"] = len(program.globals)
    benchmark.extra_info["summary_nodes"] = result.summary_nodes
