"""Figure 2, rows "SLAM drivers" (iscsiprt / floppy / negative drivers / iscsi).

The paper's driver suites are large (10K–17K LOC) Boolean abstractions with a
handful of globals; all tools answer in a few seconds, with MOPED and BEBOP
slightly ahead of GETAFIX because of MUCKE's fixed start-up cost.  The
synthetic driver generator reproduces the *shape* (dispatcher + handlers +
lock/flag protocol) at laptop scale; the benchmark sweeps the handler count,
with positive (lock-discipline bug planted) and negative variants.
"""

from __future__ import annotations

from typing import List, Sequence

import pytest

from repro.algorithms import run_batch, run_sequential
from repro.api import AnalysisSession
from repro.baselines import run_bebop, run_moped
from repro.benchgen import DriverSpec, make_driver
from repro.boolprog import build_cfg
from repro.frontends import resolve_target
from repro.parallel import BatchQuery

from conftest import measure


def multi_target_sweep(program, primary_target):
    """One query per procedure exit plus the suite target (session workload)."""
    cfg = build_cfg(program)
    targets = [resolve_target(program, primary_target)]
    targets += [
        [(cfg.module_of(name), cfg.procedure_cfg(name).exit)] for name in cfg.procedures
    ]
    return targets

ENGINES = {
    "getafix-ef": lambda program, locations: run_sequential(program, locations, algorithm="ef"),
    "getafix-ef-opt": lambda program, locations: run_sequential(
        program, locations, algorithm="ef-opt"
    ),
    "bebop": run_bebop,
    "moped": run_moped,
}

SIZES = [2, 3]


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("handlers", SIZES)
@pytest.mark.parametrize("positive", [True, False], ids=["positive", "negative"])
def test_driver(benchmark, engine, handlers, positive):
    spec = DriverSpec(
        name=f"driver-{handlers}",
        handlers=handlers,
        flags=min(4, handlers),
        helpers=max(1, handlers // 2),
        positive=positive,
    )
    program = make_driver(spec)
    locations = resolve_target(program, spec.target)
    runner = ENGINES[engine]

    result = measure(benchmark, runner, program, locations)
    assert result.reachable == positive
    benchmark.extra_info["procedures"] = len(program.procedures)
    benchmark.extra_info["globals"] = len(program.globals)
    benchmark.extra_info["summary_nodes"] = result.summary_nodes


def batch_queries(sizes: Sequence[int] = SIZES, algorithm: str = "ef-opt") -> List[BatchQuery]:
    """The driver sweep as picklable shard queries (both polarities)."""
    queries: List[BatchQuery] = []
    for positive in (True, False):
        for handlers in sizes:
            spec = DriverSpec(
                name=f"driver-{handlers}-{'pos' if positive else 'neg'}",
                handlers=handlers,
                flags=min(4, handlers),
                helpers=max(1, handlers // 2),
                positive=positive,
            )
            queries.append(
                BatchQuery(
                    name=spec.name,
                    program=make_driver(spec),
                    target=spec.target,
                    algorithm=algorithm,
                    expected=positive,
                )
            )
    return queries


@pytest.mark.parametrize("jobs", [1, 4], ids=["jobs1", "jobs4"])
def test_driver_sharded(benchmark, jobs):
    """Parallel mode: the driver sweep fanned out over per-shard managers."""
    report = measure(benchmark, run_batch, batch_queries(), jobs=jobs)
    assert not report.failures() and not report.mismatches()
    benchmark.extra_info["mode"] = report.mode
    benchmark.extra_info["speedup"] = round(report.speedup, 2)


@pytest.mark.parametrize("algorithm", ["summary", "ef-opt"])
def test_driver_session_reuse(benchmark, algorithm):
    """Session mode: one compile + solve answers the whole multi-target sweep
    (verdicts must match fresh per-target runs)."""
    spec = DriverSpec(name="driver-3", handlers=3, flags=3, helpers=1, positive=True)
    program = make_driver(spec)
    targets = multi_target_sweep(program, spec.target)
    fresh = [
        run_sequential(program, locations, algorithm=algorithm) for locations in targets
    ]

    def session_sweep():
        with AnalysisSession(program, default_algorithm=algorithm) as session:
            return session.check_all(targets)

    reused = measure(benchmark, session_sweep)
    assert [r.reachable for r in reused] == [r.reachable for r in fresh]
    benchmark.extra_info["targets"] = len(targets)
    benchmark.extra_info["reused_solves"] = sum(
        1 for r in reused if r.details["reused_solve"]
    )
