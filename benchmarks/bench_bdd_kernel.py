"""Micro-benchmarks of the BDD kernel, independent of the end-to-end figures.

The end-to-end tables (Figures 2/3) mix encoder, fixed-point and kernel time;
this module tracks the kernel's trajectory in isolation so a regression in
one apply recursion or quantifier path is visible without re-running whole
benchmark sweeps.  The workload is a synthetic symbolic transition system —
an ``n``-bit counter with nondeterministic stutter, encoded over interleaved
current/next bit variables exactly like the template encoders lay out state
copies — exercised through five kernel pillars:

* ``apply``     — building the transition relation (iff/and/or recursions),
* ``quantify``  — existential/universal quantification over the next-state cube,
* ``rename``    — the order-preserving prime/unprime shift (fast path) and a
                  deliberately order-reversing mapping (ite fall-back),
* ``relprod``   — reachability via ``and_exists`` image iteration,
* ``negation``  — an entry-forward-opt-shaped workload that negates the
                  running summary on every round (the ``Relevant`` relation
                  shape of Section 4.3), run with a low GC trigger so the
                  mark-and-sweep collector reclaims each round's residues,
* ``count``     — repeated model counting over the relation and reach sets
                  (the struct-of-arrays store answers these with one
                  vectorised bottom-up pass; the dict store recurses with a
                  per-call memo).

Every case accepts a ``store`` argument (``"array"``/``"dict"``) so the two
node-store layouts run the identical workload; :func:`compare_report` times
them side by side and asserts checksum identity, and ``--array-smoke`` is
the CI gate: parity-or-faster on every op, at least one op >= 1.5x.

Each case is exposed three ways: as a plain callable returning a
:class:`KernelResult` (checksum + peak/live node counts + GC collections,
used by ``benchmarks/report.py kernel``), as a pytest-benchmark test, and —
for the negation case — through the ``--smoke`` CLI mode used by CI, which
asserts the complement-edge invariants:

* ``not_`` is O(1): no node allocation, no cache lookup, involution by edge
  arithmetic;
* peak node count on the negation-heavy workload is at most 60% of the value
  recorded for the pre-complement-edge seed kernel
  (:data:`SEED_NEGATION_PEAK`).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, NamedTuple, Tuple

from repro.bdd import BddManager

try:  # The plain-text report harness must work without pytest installed.
    import pytest
    from conftest import measure
except ImportError:  # pragma: no cover
    pytest = None

#: Default bit width of the synthetic counter for the report harness.
DEFAULT_BITS = 14

#: Increments of the multi-delta counter (``next = current + d`` for some d).
DELTAS = (1, 2, 3, 5, 7, 11)

#: Peak node counts of the negation workload measured on the seed kernel
#: (no complement edges, no GC) — the baseline for the ``--smoke`` assertion.
SEED_NEGATION_PEAK = {8: 2403, 10: 8035, 12: 29718}

#: The smoke mode must beat this fraction of the seed peak.
SMOKE_PEAK_RATIO = 0.60


class KernelResult(NamedTuple):
    """Outcome of one kernel case: a correctness checksum plus node/GC stats."""

    checksum: int
    peak_nodes: int
    live_nodes: int
    gc_collections: int


def _result(mgr: BddManager, checksum: int) -> KernelResult:
    stats = mgr.stats()
    return KernelResult(
        checksum=checksum,
        peak_nodes=stats["peak_nodes"],
        live_nodes=stats["nodes"],
        gc_collections=stats["gc"]["collections"],
    )


def _make_manager(bits: int, store: str | None = None, **kwargs) -> BddManager:
    """Interleaved current/next variables: c0, n0, c1, n1, ..."""
    names: List[str] = []
    for i in range(bits):
        names.append(f"c{i}")
        names.append(f"n{i}")
    if store is not None:
        kwargs["store"] = store
    return BddManager(names, **kwargs)


def _adder(mgr: BddManager, bits: int, delta: int) -> int:
    """``next = current + delta (mod 2**bits)``, ripple-carry encoded.

    A typical mix of xor/and/or/iff apply calls over interleaved variables —
    the same shape the template encoders produce for assignments.
    """
    node = mgr.TRUE
    carry = mgr.FALSE
    for i in range(bits):
        current = mgr.var(f"c{i}")
        nxt = mgr.var(f"n{i}")
        d = mgr.TRUE if (delta >> i) & 1 else mgr.FALSE
        total = mgr.xor(mgr.xor(current, d), carry)
        node = mgr.and_(node, mgr.iff(nxt, total))
        carry = mgr.or_(mgr.and_(current, d), mgr.and_(carry, mgr.xor(current, d)))
    return node


def _transition(mgr: BddManager, bits: int) -> int:
    """Disjunction of the adders for every delta in :data:`DELTAS`."""
    return mgr.disjoin(_adder(mgr, bits, delta) for delta in DELTAS)


def bench_apply(bits: int = DEFAULT_BITS, store: str | None = None) -> KernelResult:
    """Build the multi-delta transition relation (pure apply recursions)."""
    mgr = _make_manager(bits, store)
    relation = _transition(mgr, bits)
    # Extra apply pressure: constrain the relation by fixed low/high bits.
    evens = mgr.conjoin(mgr.nvar(f"c{i}") for i in range(0, bits, 2))
    odds = mgr.conjoin(mgr.var(f"c{i}") for i in range(1, bits, 2))
    node = mgr.or_(mgr.and_(relation, evens), mgr.and_(relation, odds))
    return _result(mgr, mgr.node_count(relation) + mgr.node_count(node))


def bench_quantify(bits: int = DEFAULT_BITS, store: str | None = None) -> KernelResult:
    """Partial existential/universal quantification of the transition."""
    mgr = _make_manager(bits, store)
    relation = _transition(mgr, bits)
    odd_next = [f"n{i}" for i in range(1, bits, 2)]
    even_next = [f"n{i}" for i in range(0, bits, 2)]
    exists_odd = mgr.exists(relation, odd_next)
    forall_even = mgr.forall(relation, even_next)
    exists_both = mgr.exists(exists_odd, even_next)
    return _result(
        mgr,
        mgr.node_count(exists_odd)
        + mgr.node_count(forall_even)
        + mgr.node_count(exists_both),
    )


def _image_set(mgr: BddManager, bits: int, relation: int, steps: int) -> int:
    """The set of states reachable from 0 in at most ``steps`` images."""
    current_bits = [f"c{i}" for i in range(bits)]
    unprime = {f"n{i}": f"c{i}" for i in range(bits)}
    reached = mgr.conjoin(mgr.nvar(bit) for bit in current_bits)
    for _ in range(steps):
        image = mgr.and_exists(reached, relation, current_bits)
        reached = mgr.or_(reached, mgr.rename(image, unprime))
    return reached


def bench_rename(bits: int = DEFAULT_BITS, store: str | None = None) -> KernelResult:
    """Prime/unprime shifts (fast path) and an order-reversing rename (fall-back)."""
    mgr = _make_manager(bits, store)
    # An extra block of variables for the order-reversing case.
    for i in range(bits):
        mgr.add_var(f"r{i}")
    relation = _transition(mgr, bits)
    state_set = _image_set(mgr, bits, relation, 6)
    # The prime/unprime shifts are order-preserving on the support (c and n
    # copies are interleaved), so these take the structural fast path.
    prime = {f"c{i}": f"n{i}" for i in range(bits)}
    unprime = {f"n{i}": f"c{i}" for i in range(bits)}
    total = 0
    for _ in range(5):
        primed = mgr.rename(state_set, prime)
        total += mgr.node_count(primed)
        assert mgr.rename(primed, unprime) == state_set
    # Order-reversing mapping: the c-bits land in the r-block in reverse,
    # violating the support order, which forces the ite rebuild.
    onto_reversed = {f"c{i}": f"r{bits - 1 - i}" for i in range(bits)}
    reversed_node = mgr.rename(state_set, onto_reversed)
    total += mgr.node_count(reversed_node)
    return _result(mgr, total)


def bench_relprod(bits: int = DEFAULT_BITS, store: str | None = None) -> KernelResult:
    """Full reachability from state 0 by ``and_exists`` image iteration."""
    mgr = _make_manager(bits, store)
    relation = _transition(mgr, bits)
    current_bits = [f"c{i}" for i in range(bits)]
    unprime = {f"n{i}": f"c{i}" for i in range(bits)}
    reached = mgr.conjoin(mgr.nvar(bit) for bit in current_bits)
    frontier = reached
    iterations = 0
    while frontier != mgr.FALSE:
        iterations += 1
        image = mgr.and_exists(frontier, relation, current_bits)
        image = mgr.rename(image, unprime)
        frontier = mgr.and_(image, mgr.not_(reached))
        reached = mgr.or_(reached, frontier)
    assert mgr.count_sat(reached, current_bits) == 1 << bits
    return _result(mgr, iterations)


def bench_negation(
    bits: int = DEFAULT_BITS,
    store: str | None = None,
    gc_threshold: int = 2048,
) -> KernelResult:
    """Negation-heavy reachability: the entry-forward-opt ``Relevant`` shape.

    Every round negates the running summary, the image and the frontier —
    the residue pattern of the non-monotone Section 4.3 system.  On the seed
    kernel each negation copied the whole BDD; with complement edges all
    three are edge flips.  The manager runs with a deliberately low GC
    trigger, and each round's safe point passes the genuinely live edges as
    roots so the collector reclaims the round residues.
    """
    mgr = _make_manager(bits, store, gc_threshold=gc_threshold)
    relation = mgr.ref(_transition(mgr, bits))
    current_bits = [f"c{i}" for i in range(bits)]
    unprime = {f"n{i}": f"c{i}" for i in range(bits)}
    reached = mgr.conjoin(mgr.nvar(b) for b in current_bits)
    frontier = reached
    checksum = 0
    while frontier != mgr.FALSE:
        image = mgr.and_exists(frontier, relation, current_bits)
        image = mgr.rename(image, unprime)
        relevant = mgr.and_(mgr.not_(reached), image)
        irrelevant = mgr.not_(relevant)
        blocked = mgr.or_(mgr.not_(image), mgr.not_(frontier))
        checksum += (
            mgr.node_count(relevant)
            + mgr.node_count(irrelevant)
            + mgr.node_count(blocked)
        )
        frontier = relevant
        reached = mgr.or_(reached, frontier)
        mgr.maybe_collect((reached, frontier))
    return _result(mgr, checksum)


def _hidden_weighted_bit(mgr: BddManager, names: List[str]) -> int:
    """``f(x) = x_{weight(x)}`` — a provably large ROBDD under any order.

    The weight-``k`` indicators are built by dynamic programming (binomial-
    sized intermediates); their var-selected disjunction is the classic
    hidden-weighted-bit blow-up.  This is the *summary relation* shape:
    thousands of nodes with heavy sharing, exactly what ``count_sat`` walks
    when a solver reports reachable-state counts.
    """
    nvars = len(names)
    weight = [mgr.TRUE] + [mgr.FALSE] * nvars
    for name in names:
        v = mgr.var(name)
        nv = mgr.not_(v)
        new = [mgr.and_(weight[0], nv)]
        for k in range(1, nvars + 1):
            new.append(
                mgr.or_(mgr.and_(weight[k], nv), mgr.and_(weight[k - 1], v))
            )
        weight = new
    f = mgr.FALSE
    for k in range(1, nvars + 1):
        f = mgr.or_(f, mgr.and_(weight[k], mgr.var(names[k - 1])))
    return f


def bench_count(bits: int = DEFAULT_BITS, store: str | None = None) -> KernelResult:
    """Repeated model counting: the vectorised bottom-up pass's home turf.

    Builds the hidden-weighted-bit function over all ``2 * bits`` variables
    (a large, heavily shared BDD — the summary-relation shape), sweeps the
    construction residues, then counts it and several derived functions
    over and over, full-support and restricted — the ``count_sat`` pattern
    of summary-state reporting and the snapshot post-passes.  The array
    store answers each count with one bottom-up pass over the flat vectors;
    the dict store re-runs the memoised big-int recursion per call.
    """
    mgr = _make_manager(bits, store)
    names = list(mgr.var_names)
    f = mgr.ref(_hidden_weighted_bit(mgr, names))
    mgr.collect_garbage()
    functions = (
        f,
        mgr.not_(f),
        mgr.xor(f, mgr.var(names[0])),
        mgr.and_(f, mgr.var(names[-1])),
    )
    checksum = 0
    for _ in range(8):
        for node in functions:
            checksum = (checksum + mgr.count_sat(node)) % (1 << 61)
        checksum = (checksum + mgr.count_sat(f, names)) % (1 << 61)
    return _result(mgr, checksum)


#: name -> callable for the report harness (each returns a KernelResult).
KERNEL_CASES: Dict[str, Callable[..., KernelResult]] = {
    "apply": bench_apply,
    "quantify": bench_quantify,
    "rename": bench_rename,
    "relprod": bench_relprod,
    "negation": bench_negation,
    "count": bench_count,
}


def kernel_report(
    bits: int = DEFAULT_BITS, store: str | None = None
) -> List[Tuple[str, float, KernelResult]]:
    """Run every kernel case once; return (name, seconds, result) rows."""
    rows = []
    for name, case in KERNEL_CASES.items():
        started = time.perf_counter()
        result = case(bits, store=store)
        rows.append((name, time.perf_counter() - started, result))
    return rows


class CompareRow(NamedTuple):
    """One kernel case timed on both node-store layouts (same workload)."""

    case: str
    dict_seconds: float
    array_seconds: float
    dict_result: KernelResult
    array_result: KernelResult

    @property
    def speedup(self) -> float:
        return self.dict_seconds / max(self.array_seconds, 1e-9)


def compare_report(bits: int = DEFAULT_BITS, rounds: int = 1) -> List[CompareRow]:
    """Time every case on the dict and array stores (best of ``rounds``).

    The dict layout is the seed kernel's store, so each row doubles as the
    seed-vs-current record for ``BENCH_kernel.json``.  Checksums must match
    between layouts — a differential guarantee, not just a timing table.
    """
    rows: List[CompareRow] = []
    for name, case in KERNEL_CASES.items():
        timings: Dict[str, float] = {}
        results: Dict[str, KernelResult] = {}
        for store in ("dict", "array"):
            best = float("inf")
            for _ in range(rounds):
                started = time.perf_counter()
                result = case(bits, store=store)
                best = min(best, time.perf_counter() - started)
            timings[store] = best
            results[store] = result
        assert results["dict"].checksum == results["array"].checksum, (
            f"{name}: store layouts disagree "
            f"(dict={results['dict'].checksum}, array={results['array'].checksum})"
        )
        rows.append(
            CompareRow(name, timings["dict"], timings["array"],
                       results["dict"], results["array"])
        )
    return rows


#: Per-op parity tolerance for ``array_smoke``: the array store may be up to
#: this factor slower than dict on any single op (CI timer noise), plus a
#: small absolute floor for sub-50ms cases.
SMOKE_PARITY_FACTOR = 1.15
SMOKE_PARITY_FLOOR = 0.02

#: At least one op must be at least this much faster on the array store.
SMOKE_SPEEDUP_TARGET = 1.5


def array_smoke(bits: int = 12, rounds: int = 3) -> int:
    """CI gate for the struct-of-arrays store: parity everywhere, a win somewhere.

    Runs :func:`compare_report` (which already asserts checksum identity per
    case) and enforces the performance acceptance bar: the array store is at
    parity-or-faster on *every* op (within timer-noise tolerance) and at
    least :data:`SMOKE_SPEEDUP_TARGET` times faster on at least one.
    """
    rows = compare_report(bits, rounds=rounds)
    slow = [
        row
        for row in rows
        if row.array_seconds
        > row.dict_seconds * SMOKE_PARITY_FACTOR + SMOKE_PARITY_FLOOR
    ]
    assert not slow, (
        "array store lost parity on: "
        + ", ".join(
            f"{row.case} (dict={row.dict_seconds:.3f}s array={row.array_seconds:.3f}s)"
            for row in slow
        )
    )
    best = max(rows, key=lambda row: row.speedup)
    for row in rows:
        print(
            f"array smoke: {row.case:10s} dict={row.dict_seconds:7.3f}s "
            f"array={row.array_seconds:7.3f}s speedup={row.speedup:5.2f}x "
            f"checksum ok"
        )
    assert best.speedup >= SMOKE_SPEEDUP_TARGET, (
        f"no kernel op reached the {SMOKE_SPEEDUP_TARGET}x bar "
        f"(best was {best.case} at {best.speedup:.2f}x)"
    )
    print(
        f"array smoke OK: parity on all {len(rows)} ops, best win "
        f"{best.case} at {best.speedup:.2f}x (bits={bits}, best of {rounds})"
    )
    return 0


# ---------------------------------------------------------------------------
# CI smoke mode
# ---------------------------------------------------------------------------
def smoke(bits: int = 10) -> int:
    """Fast perf-smoke assertions for CI (complement edges + GC).

    Asserts that negation is O(1) — no node allocation, no cache traffic —
    and that the negation-heavy workload's peak node count is at most
    :data:`SMOKE_PEAK_RATIO` of the recorded seed value.  Returns 0 on
    success; raises AssertionError on regression.
    """
    # --- O(1) negation: flip a large BDD many times without allocating.
    mgr = _make_manager(bits)
    relation = _transition(mgr, bits)
    before = mgr.stats()
    node = relation
    for _ in range(1_000):
        node = mgr.not_(node)
    assert node == relation, "negation is not an involution"
    assert mgr.not_(relation) != relation
    after = mgr.stats()
    assert after["nodes"] == before["nodes"], "not_ allocated nodes"
    assert after["capacity"] == before["capacity"], "not_ grew the node table"
    assert after["cache_sizes"] == before["cache_sizes"], "not_ touched a cache"
    assert after["ops"] == before["ops"], "not_ performed cache lookups"
    print(f"smoke: O(1) negation ok (1000 flips of a {after['nodes']}-node table)")

    # --- Peak node count on the negation-heavy workload vs the seed kernel.
    seed_peak = SEED_NEGATION_PEAK[bits]
    result = bench_negation(bits)
    budget = int(seed_peak * SMOKE_PEAK_RATIO)
    assert result.peak_nodes <= budget, (
        f"negation workload peaked at {result.peak_nodes} nodes; "
        f"budget is {budget} (= {SMOKE_PEAK_RATIO:.0%} of seed {seed_peak})"
    )
    print(
        f"smoke: negation workload ok (peak {result.peak_nodes} <= {budget} "
        f"= {SMOKE_PEAK_RATIO:.0%} of seed {seed_peak}; live {result.live_nodes}, "
        f"{result.gc_collections} gc collections)"
    )
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the CI perf-smoke assertions (O(1) negation, peak-node budget)",
    )
    parser.add_argument(
        "--array-smoke",
        action="store_true",
        help="run the CI array-store assertions (parity per op, >=1.5x on one)",
    )
    parser.add_argument(
        "--store",
        choices=["array", "dict"],
        default=None,
        help="node-store layout for the report table (default: manager default)",
    )
    parser.add_argument(
        "--bits",
        type=int,
        default=None,
        help="counter width (default: 10 for --smoke, 14 otherwise)",
    )
    args = parser.parse_args(argv)
    if args.array_smoke:
        return array_smoke(args.bits if args.bits is not None else 12)
    if args.smoke:
        bits = args.bits if args.bits is not None else 10
        if bits not in SEED_NEGATION_PEAK:
            parser.error(
                f"--smoke needs a recorded seed baseline; have {sorted(SEED_NEGATION_PEAK)}"
            )
        return smoke(bits)
    bits = args.bits if args.bits is not None else DEFAULT_BITS
    for name, seconds, result in kernel_report(bits, store=args.store):
        print(
            f"{name:10s}  {seconds:9.3f}s  checksum={result.checksum}  "
            f"peak={result.peak_nodes}  live={result.live_nodes}  "
            f"gc={result.gc_collections}"
        )
    return 0


# ---------------------------------------------------------------------------
# pytest-benchmark integration
# ---------------------------------------------------------------------------
if pytest is not None:

    @pytest.mark.parametrize("case", sorted(KERNEL_CASES))
    def test_kernel(benchmark, case):
        result = measure(benchmark, KERNEL_CASES[case], DEFAULT_BITS)
        benchmark.extra_info["bits"] = DEFAULT_BITS
        benchmark.extra_info["checksum"] = result.checksum
        benchmark.extra_info["peak_nodes"] = result.peak_nodes
        benchmark.extra_info["gc_collections"] = result.gc_collections


if __name__ == "__main__":
    sys.exit(main())
