"""Micro-benchmarks of the BDD kernel, independent of the end-to-end figures.

The end-to-end tables (Figures 2/3) mix encoder, fixed-point and kernel time;
this module tracks the kernel's trajectory in isolation so a regression in
one apply recursion or quantifier path is visible without re-running whole
benchmark sweeps.  The workload is a synthetic symbolic transition system —
an ``n``-bit counter with nondeterministic stutter, encoded over interleaved
current/next bit variables exactly like the template encoders lay out state
copies — exercised through the four kernel pillars:

* ``apply``     — building the transition relation (iff/and/or recursions),
* ``quantify``  — existential/universal quantification over the next-state cube,
* ``rename``    — the order-preserving prime/unprime shift (fast path) and a
                  deliberately order-reversing mapping (ite fall-back),
* ``relprod``   — reachability via ``and_exists`` image iteration.

Each case is exposed twice: as a plain callable (used by
``benchmarks/report.py kernel``) and as a pytest-benchmark test.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Tuple

from repro.bdd import BddManager

try:  # The plain-text report harness must work without pytest installed.
    import pytest
    from conftest import measure
except ImportError:  # pragma: no cover
    pytest = None

#: Default bit width of the synthetic counter for the report harness.
DEFAULT_BITS = 14

#: Increments of the multi-delta counter (``next = current + d`` for some d).
DELTAS = (1, 2, 3, 5, 7, 11)


def _make_manager(bits: int) -> BddManager:
    """Interleaved current/next variables: c0, n0, c1, n1, ..."""
    names: List[str] = []
    for i in range(bits):
        names.append(f"c{i}")
        names.append(f"n{i}")
    return BddManager(names)


def _adder(mgr: BddManager, bits: int, delta: int) -> int:
    """``next = current + delta (mod 2**bits)``, ripple-carry encoded.

    A typical mix of xor/and/or/iff apply calls over interleaved variables —
    the same shape the template encoders produce for assignments.
    """
    node = mgr.TRUE
    carry = mgr.FALSE
    for i in range(bits):
        current = mgr.var(f"c{i}")
        nxt = mgr.var(f"n{i}")
        d = mgr.TRUE if (delta >> i) & 1 else mgr.FALSE
        total = mgr.xor(mgr.xor(current, d), carry)
        node = mgr.and_(node, mgr.iff(nxt, total))
        carry = mgr.or_(mgr.and_(current, d), mgr.and_(carry, mgr.xor(current, d)))
    return node


def _transition(mgr: BddManager, bits: int) -> int:
    """Disjunction of the adders for every delta in :data:`DELTAS`."""
    return mgr.disjoin(_adder(mgr, bits, delta) for delta in DELTAS)


def bench_apply(bits: int = DEFAULT_BITS) -> int:
    """Build the multi-delta transition relation (pure apply recursions)."""
    mgr = _make_manager(bits)
    relation = _transition(mgr, bits)
    # Extra apply pressure: constrain the relation by fixed low/high bits.
    evens = mgr.conjoin(mgr.nvar(f"c{i}") for i in range(0, bits, 2))
    odds = mgr.conjoin(mgr.var(f"c{i}") for i in range(1, bits, 2))
    node = mgr.or_(mgr.and_(relation, evens), mgr.and_(relation, odds))
    return mgr.node_count(relation) + mgr.node_count(node)


def bench_quantify(bits: int = DEFAULT_BITS) -> int:
    """Partial existential/universal quantification of the transition."""
    mgr = _make_manager(bits)
    relation = _transition(mgr, bits)
    odd_next = [f"n{i}" for i in range(1, bits, 2)]
    even_next = [f"n{i}" for i in range(0, bits, 2)]
    exists_odd = mgr.exists(relation, odd_next)
    forall_even = mgr.forall(relation, even_next)
    exists_both = mgr.exists(exists_odd, even_next)
    return (
        mgr.node_count(exists_odd)
        + mgr.node_count(forall_even)
        + mgr.node_count(exists_both)
    )


def _image_set(mgr: BddManager, bits: int, relation: int, steps: int) -> int:
    """The set of states reachable from 0 in at most ``steps`` images."""
    current_bits = [f"c{i}" for i in range(bits)]
    unprime = {f"n{i}": f"c{i}" for i in range(bits)}
    reached = mgr.conjoin(mgr.nvar(bit) for bit in current_bits)
    for _ in range(steps):
        image = mgr.and_exists(reached, relation, current_bits)
        reached = mgr.or_(reached, mgr.rename(image, unprime))
    return reached


def bench_rename(bits: int = DEFAULT_BITS) -> int:
    """Prime/unprime shifts (fast path) and an order-reversing rename (fall-back)."""
    mgr = _make_manager(bits)
    # An extra block of variables for the order-reversing case.
    for i in range(bits):
        mgr.add_var(f"r{i}")
    relation = _transition(mgr, bits)
    state_set = _image_set(mgr, bits, relation, 6)
    # The prime/unprime shifts are order-preserving on the support (c and n
    # copies are interleaved), so these take the structural fast path.
    prime = {f"c{i}": f"n{i}" for i in range(bits)}
    unprime = {f"n{i}": f"c{i}" for i in range(bits)}
    total = 0
    for _ in range(5):
        primed = mgr.rename(state_set, prime)
        total += mgr.node_count(primed)
        assert mgr.rename(primed, unprime) == state_set
    # Order-reversing mapping: the c-bits land in the r-block in reverse,
    # violating the support order, which forces the ite rebuild.
    onto_reversed = {f"c{i}": f"r{bits - 1 - i}" for i in range(bits)}
    reversed_node = mgr.rename(state_set, onto_reversed)
    total += mgr.node_count(reversed_node)
    return total


def bench_relprod(bits: int = DEFAULT_BITS) -> int:
    """Full reachability from state 0 by ``and_exists`` image iteration."""
    mgr = _make_manager(bits)
    relation = _transition(mgr, bits)
    current_bits = [f"c{i}" for i in range(bits)]
    unprime = {f"n{i}": f"c{i}" for i in range(bits)}
    reached = mgr.conjoin(mgr.nvar(bit) for bit in current_bits)
    frontier = reached
    iterations = 0
    while frontier != mgr.FALSE:
        iterations += 1
        image = mgr.and_exists(frontier, relation, current_bits)
        image = mgr.rename(image, unprime)
        frontier = mgr.and_(image, mgr.not_(reached))
        reached = mgr.or_(reached, frontier)
    assert mgr.count_sat(reached, current_bits) == 1 << bits
    return iterations


#: name -> (callable, kwargs) for the plain-text report harness.
KERNEL_CASES: Dict[str, Callable[[], int]] = {
    "apply": bench_apply,
    "quantify": bench_quantify,
    "rename": bench_rename,
    "relprod": bench_relprod,
}


def kernel_report(bits: int = DEFAULT_BITS) -> List[Tuple[str, float, int]]:
    """Run every kernel case once; return (name, seconds, checksum) rows."""
    rows = []
    for name, case in KERNEL_CASES.items():
        started = time.perf_counter()
        checksum = case(bits)
        rows.append((name, time.perf_counter() - started, checksum))
    return rows


# ---------------------------------------------------------------------------
# pytest-benchmark integration
# ---------------------------------------------------------------------------
if pytest is not None:

    @pytest.mark.parametrize("case", sorted(KERNEL_CASES))
    def test_kernel(benchmark, case):
        checksum = measure(benchmark, KERNEL_CASES[case], DEFAULT_BITS)
        benchmark.extra_info["bits"] = DEFAULT_BITS
        benchmark.extra_info["checksum"] = checksum
