"""Figure 2, rows "Regression (positive / negative)".

The paper runs GETAFIX (entry-forward and optimised entry-forward), MOPED and
BEBOP over the SLAM regression suite — 99 programs with a reachable target and
79 without — and reports ~1 second and tiny BDDs for every tool.  Here each
benchmark runs one engine over the full synthetic regression suite (one
program per feature template, per polarity) and reports the aggregate time;
EXPERIMENTS.md compares the resulting rows with the paper's.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.algorithms import run_batch, run_sequential
from repro.baselines import run_bebop, run_moped
from repro.benchgen import regression_suite
from repro.frontends import resolve_target
from repro.parallel import BatchQuery

from conftest import measure

ENGINES = {
    "getafix-ef": lambda program, locations: run_sequential(program, locations, algorithm="ef"),
    "getafix-ef-opt": lambda program, locations: run_sequential(
        program, locations, algorithm="ef-opt"
    ),
    "getafix-summary": lambda program, locations: run_sequential(
        program, locations, algorithm="summary"
    ),
    "bebop": run_bebop,
    "moped": run_moped,
}


def _suite(positive: bool):
    cases = regression_suite(positive)
    prepared = []
    for case in cases:
        prepared.append((case, resolve_target(case.program, case.target)))
    return prepared


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("positive", [True, False], ids=["positive", "negative"])
def test_regression_suite(benchmark, engine, positive):
    suite = _suite(positive)
    runner = ENGINES[engine]

    def run_suite():
        results = [runner(case.program, locations) for case, locations in suite]
        for (case, _), result in zip(suite, results):
            assert result.reachable == case.expected, case.name
        return results

    results = measure(benchmark, run_suite)
    benchmark.extra_info["programs"] = len(suite)
    benchmark.extra_info["max_summary_nodes"] = max(r.summary_nodes for r in results)


def batch_queries(algorithm: str = "ef-opt") -> List[BatchQuery]:
    """The full regression sweep as picklable shard queries (both polarities)."""
    return [
        BatchQuery(
            name=case.name,
            program=case.program,
            target=case.target,
            algorithm=algorithm,
            expected=case.expected,
        )
        for positive in (True, False)
        for case in regression_suite(positive)
    ]


@pytest.mark.parametrize("jobs", [1, 4], ids=["jobs1", "jobs4"])
def test_regression_suite_sharded(benchmark, jobs):
    """Parallel mode: the sweep fanned out over per-shard BDD managers."""
    queries = batch_queries()
    report = measure(benchmark, run_batch, queries, jobs=jobs)
    assert not report.failures() and not report.mismatches()
    benchmark.extra_info["mode"] = report.mode
    benchmark.extra_info["speedup"] = round(report.speedup, 2)
    benchmark.extra_info["worker_pids"] = len(report.worker_pids())


def test_regression_session_reuse(benchmark):
    """Session mode over the suite: each program opens one session, solves the
    summary fixed point once and answers its target plus every procedure exit;
    verdicts must match fresh per-target runs."""
    from bench_fig2_drivers import multi_target_sweep

    from repro.api import AnalysisSession

    suite = [
        (case, multi_target_sweep(case.program, case.target))
        for case in regression_suite(True)[:3] + regression_suite(False)[:3]
    ]
    fresh = [
        [run_sequential(case.program, locations, algorithm="summary") for locations in targets]
        for case, targets in suite
    ]

    def session_sweeps():
        results = []
        for case, targets in suite:
            with AnalysisSession(case.program, default_algorithm="summary") as session:
                results.append(session.check_all(targets))
        return results

    reused = measure(benchmark, session_sweeps)
    for fresh_results, session_results in zip(fresh, reused):
        assert [r.reachable for r in session_results] == [r.reachable for r in fresh_results]
    benchmark.extra_info["programs"] = len(suite)
    benchmark.extra_info["queries"] = sum(len(targets) for _, targets in suite)
