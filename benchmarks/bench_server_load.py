"""Replayable Zipf load generator for the analysis daemon.

Drives :class:`repro.service.AnalysisDaemon` through the request mix a
long-lived service actually sees — a few hot programs and a long tail
(Zipf-distributed over a ``repro.benchgen`` random-program corpus) — with
the chaos scenarios from ``repro.testing.faults`` layered on top:

* a worker killed mid-request on the hottest program (failover retry),
* a deadline-exhaustion storm (typed errors, sessions stay usable),
* memory-budget pressure forcing pool eviction (cold re-solve),
* a shed burst past the admission threshold (degradation-ladder fallback),
* a graceful drain at the end (in-flight answered, workers stopped).

When the pool runs with ``workers >= 1`` the daemon also publishes
shared-memory snapshots of solved tables (disable with ``--no-snapshots``):
rebuilt or evicted workers must re-answer from a snapshot attach instead of
a cold re-solve, with identical verdicts, and the drain must leave no
``repro-snap-*`` segment behind in ``/dev/shm``.

The load is fully replayable: one ``--seed`` fixes the corpus, the Zipf
draw and the burst schedule.  Every verdict the service produces is
checked against the offline batch path (``run_batch``) — fault tolerance
must never change answers.  The run fails (exit 1) on any verdict
mismatch, or if the service never demonstrated a warm-session reuse, a
shed-to-ladder event, a failover retry, or a forced eviction.

Usage::

    PYTHONPATH=src python benchmarks/bench_server_load.py --smoke
    PYTHONPATH=src python benchmarks/bench_server_load.py --requests 200 --json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms import run_batch  # noqa: E402
from repro.benchgen import random_program_source  # noqa: E402
from repro.parallel import BatchQuery  # noqa: E402
from repro.bdd import snapshot as bdd_snapshot  # noqa: E402
from repro.service import AnalysisDaemon, DaemonConfig  # noqa: E402
from repro.testing import FaultPlan  # noqa: E402

TARGET = "main:target"


def build_corpus(size: int, seed: int) -> List[Tuple[str, str]]:
    """``size`` distinct (name, source) programs, deterministic in ``seed``."""
    return [
        (f"zipf-{seed}-{index}", random_program_source(seed * 1000 + index))
        for index in range(size)
    ]


def zipf_schedule(corpus, requests: int, exponent: float, seed: int) -> List[str]:
    """A replayable request schedule: rank-``i`` program drawn ∝ 1/(i+1)^s."""
    names = [name for name, _ in corpus]
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(names))]
    rng = random.Random(seed)
    schedule = rng.choices(names, weights=weights, k=requests)
    # The hottest program must appear at least twice so a warm reuse is
    # possible even on tiny --smoke schedules.
    if schedule.count(names[0]) < 2:
        schedule[:2] = [names[0], names[0]]
    return schedule


def offline_verdicts(corpus) -> Dict[str, bool]:
    """Ground truth from the offline batch path, sequentially, no faults."""
    report = run_batch(
        [
            BatchQuery(name=name, program=source, target=TARGET)
            for name, source in corpus
        ],
        jobs=1,
    )
    failures = report.failures()
    if failures:
        raise SystemExit(
            f"offline baseline failed on {[shard.name for shard in failures]}"
        )
    return report.verdicts()


async def drive(args, corpus, schedule, expected) -> Dict[str, object]:
    sources = dict(corpus)
    hot_name = corpus[0][0]
    chaos = args.workers >= 1 and not args.no_chaos
    snapshots = args.workers >= 1 and not args.no_snapshots
    segments_before = set(bdd_snapshot.list_segments())
    latch_dir = tempfile.mkdtemp(prefix="repro-bench-latch-")
    plan = (
        FaultPlan(kill_query=hot_name, once_token=str(Path(latch_dir) / "kill"))
        if chaos
        else None
    )
    daemon = AnalysisDaemon(
        DaemonConfig(
            workers=args.workers,
            memory_budget_nodes=None,  # clamped mid-run to force eviction
            max_pending=max(64, args.burst * 2),
            shed_threshold=max(64, args.burst * 2),  # lowered for the shed burst
            breaker_threshold=10_000,  # the storm must not convict programs
            retry_backoff=0.01,
            fault_plan=plan,
            snapshots=snapshots,
        )
    )
    await daemon.start()

    mismatches: List[str] = []
    events = {
        "warm": 0,
        "shed": 0,
        "retried": 0,
        "coalesced": 0,
        "timeouts": 0,
        "snapshot_attached": 0,
    }

    def request(name: str, **fields) -> Dict[str, object]:
        body = {"op": "query", "name": name, "program": sources[name], "target": TARGET}
        body.update(fields)
        return body

    def check(response: Dict[str, object]) -> None:
        name = response.get("name")
        if not response.get("ok"):
            mismatches.append(f"{name}: unexpected failure {response.get('status')}")
            return
        if response.get("reachable") != expected[name]:
            mismatches.append(
                f"{name}: service said {response.get('reachable')}, "
                f"offline said {expected[name]}"
            )
        events["warm"] += 1 if response.get("warm") else 0
        events["shed"] += 1 if response.get("shed") else 0
        events["coalesced"] += 1 if response.get("coalesced") else 0
        events["snapshot_attached"] += 1 if response.get("snapshot_attached") else 0
        if response.get("status") == "retried":
            events["retried"] += 1

    try:
        # -- phase 1: the Zipf replay, issued in bursts so identical hot
        # requests can coalesce.  The chaos plan kills a worker on the hot
        # program's first touch; failover must answer it anyway.
        for start in range(0, len(schedule), args.burst):
            burst = schedule[start : start + args.burst]
            responses = await asyncio.gather(
                *[daemon.handle_request(request(name)) for name in burst]
            )
            for response in responses:
                check(response)

        # -- phase 2: shed burst.  Drop the soft threshold to 1 and fire
        # distinct programs concurrently: all but the first in flight must
        # shed to the degradation ladder (cheaper algorithm, same verdict).
        daemon.config.shed_threshold = 1
        responses = await asyncio.gather(
            *[daemon.handle_request(request(name, id=f"shed-{name}"))
              for name, _ in corpus]
        )
        for response in responses:
            check(response)
        daemon.config.shed_threshold = max(64, args.burst * 2)

        # -- phase 3: deadline storm.  Zero deadlines exhaust immediately
        # with typed errors; the pooled sessions must stay usable.
        storm = await asyncio.gather(
            *[
                daemon.handle_request(
                    request(name, id=f"storm-{name}", deadline_seconds=0.0)
                )
                for name, _ in corpus[: min(4, len(corpus))]
            ]
        )
        for response in storm:
            if response.get("status") == "timeout":
                events["timeouts"] += 1
            else:
                mismatches.append(
                    f"storm {response.get('name')}: expected a typed timeout, "
                    f"got {response.get('status')}"
                )

        # -- phase 4: memory pressure.  Clamp the budget below the pool and
        # touch the hot program: the LRU tail must be evicted worker-side,
        # and evicted programs must re-solve cold to the same verdict.
        total = daemon.pool_index.total_live_nodes()
        daemon.pool_index.memory_budget_nodes = max(1, int(total * 0.6))
        check(await daemon.handle_request(request(hot_name, id="pressure")))
        for _ in range(200):
            if daemon.counters["evicted_nodes"] > 0:
                break
            await asyncio.sleep(0.02)
        for name, _ in corpus:
            check(await daemon.handle_request(request(name, id=f"cold-{name}")))

        metrics = daemon.metrics()
        health = daemon.health()
    finally:
        await daemon.shutdown()

    late = await daemon.handle_request(request(hot_name, id="late"))
    leaked = sorted(set(bdd_snapshot.list_segments()) - segments_before)
    return {
        "mismatches": mismatches,
        "events": events,
        "counters": metrics["counters"],
        "statuses": metrics["statuses"],
        "queries_per_solve": metrics["queries_per_solve"],
        "restarts": health["workers"]["restarts"],
        "drained": {
            "late_status": late.get("status"),
            "workers_alive": daemon._pool.alive_count(),
        },
        "chaos": chaos,
        "snapshots": snapshots,
        "leaked_segments": leaked,
    }


def verify(report: Dict[str, object]) -> List[str]:
    problems = list(report["mismatches"])
    counters = report["counters"]
    if counters["warm_queries"] < 1:
        problems.append("no warm-session reuse was observed")
    if counters["shed_ladder"] < 1:
        problems.append("no shed-to-ladder event was observed")
    if counters["evictions"] < 1 or counters["evicted_nodes"] <= 0:
        problems.append("memory pressure never forced an eviction")
    if report["events"]["timeouts"] < 1:
        problems.append("the deadline storm produced no typed timeouts")
    if report["chaos"]:
        if counters["retried"] < 1:
            problems.append("the worker kill was never failed over (no retry)")
        if report["restarts"] < 1:
            problems.append("the killed worker was never rebuilt")
    if report["drained"]["late_status"] != "draining":
        problems.append("post-shutdown request was not answered with 'draining'")
    if report["drained"]["workers_alive"] != 0:
        problems.append("workers survived the drain")
    if report["snapshots"]:
        if counters.get("snapshots_published", 0) < 1:
            problems.append("snapshots enabled but nothing was ever published")
        if counters.get("snapshot_attaches", 0) < 1:
            problems.append(
                "no query was ever served from a snapshot attach "
                "(eviction/rebuild should have forced one)"
            )
    if report["leaked_segments"]:
        problems.append(
            f"drain leaked shared-memory segments: {report['leaked_segments']}"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--corpus", type=int, default=8, help="distinct programs")
    parser.add_argument("--requests", type=int, default=80, help="Zipf replay length")
    parser.add_argument("--zipf", type=float, default=1.2, help="Zipf exponent s")
    parser.add_argument("--burst", type=int, default=8, help="requests per burst")
    parser.add_argument("--seed", type=int, default=7, help="replay seed")
    parser.add_argument("--workers", type=int, default=2, help="pool workers (0 = inline)")
    parser.add_argument("--no-chaos", action="store_true", help="skip fault injection")
    parser.add_argument(
        "--no-snapshots",
        action="store_true",
        help="disable the shared-memory snapshot catalog",
    )
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    parser.add_argument(
        "--smoke", action="store_true", help="small fast preset for CI (overrides sizes)"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.corpus, args.requests, args.burst = 4, 24, 6

    corpus = build_corpus(args.corpus, args.seed)
    schedule = zipf_schedule(corpus, args.requests, args.zipf, args.seed)
    expected = offline_verdicts(corpus)
    report = asyncio.run(drive(args, corpus, schedule, expected))
    problems = verify(report)

    if args.json:
        print(json.dumps({**report, "problems": problems}, indent=2, default=str))
    else:
        counters = report["counters"]
        print(
            f"replayed {counters['requests']} requests over {args.corpus} programs "
            f"(zipf s={args.zipf}, seed={args.seed}, workers={args.workers})"
        )
        print(
            f"  warm={counters['warm_queries']} solves={counters['solves']} "
            f"queries/solve={report['queries_per_solve']:.2f} "
            f"coalesced={counters['coalesced']}"
        )
        print(
            f"  shed_ladder={counters['shed_ladder']} retried={counters['retried']} "
            f"restarts={report['restarts']} evictions={counters['evictions']} "
            f"evicted_nodes={counters['evicted_nodes']}"
        )
        if report["snapshots"]:
            print(
                f"  snapshots: published={counters.get('snapshots_published', 0)} "
                f"attaches={counters.get('snapshot_attaches', 0)} "
                f"served={report['events']['snapshot_attached']} "
                f"leaked={len(report['leaked_segments'])}"
            )
        print(f"  statuses={report['statuses']}")
        print(f"  drain: late={report['drained']['late_status']} "
              f"alive={report['drained']['workers_alive']}")
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("OK: all verdicts identical to the offline batch path")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
