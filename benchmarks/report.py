#!/usr/bin/env python3
"""Regenerate the rows of Figure 2 and Figure 3 as plain-text tables.

Unlike the pytest-benchmark files (which integrate with ``pytest
--benchmark-only``), this harness prints tables in the same layout as the
paper so the results can be compared side by side and pasted into
EXPERIMENTS.md.

Usage::

    python benchmarks/report.py figure2            # sequential suites
    python benchmarks/report.py figure2-parallel   # sharded sweep + speedup
    python benchmarks/report.py figure3            # Bluetooth, explicit engine
    python benchmarks/report.py figure3-symbolic   # Bluetooth, fixed-point engine
    python benchmarks/report.py figure3-parallel   # Bluetooth, sharded symbolic
    python benchmarks/report.py session            # fresh vs session-reuse sweep
    python benchmarks/report.py kernel             # BDD kernel micro-benchmarks
    python benchmarks/report.py kernel --emit-json BENCH_kernel.json
                                                   # dict-vs-array record
    python benchmarks/report.py parallel-smoke     # CI: pool pickling smoke
    python benchmarks/report.py session-smoke      # CI: per-shard session reuse
    python benchmarks/report.py faults             # limits-armed overhead table
    python benchmarks/report.py faults-smoke       # CI: worker-kill retry smoke
    python benchmarks/report.py array-kernel-smoke # CI: SoA parity + count win
    python benchmarks/report.py snapshot-smoke     # CI: copy-free attach + fan-out
    python benchmarks/report.py optimize           # -O0 vs -O2 pre-analysis table
    python benchmarks/report.py optimize-smoke     # CI: -O2 differential gate
    python benchmarks/report.py all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Sequence, Tuple

from repro.algorithms import run_batch, run_concurrent, run_sequential
from repro.api import AnalysisSession
from repro.baselines import run_bebop, run_concurrent_explicit, run_moped
from repro.benchgen import (
    DriverSpec,
    TerminatorSpec,
    driver_suite,
    make_bluetooth,
    make_driver,
    make_terminator,
    regression_suite,
)
from repro.encode.concurrent import ConcurrentEncoder
from repro.frontends import resolve_target

SEQUENTIAL_ENGINES: Dict[str, Callable] = {
    "EF": lambda p, locs: run_sequential(p, locs, algorithm="ef"),
    "EFopt": lambda p, locs: run_sequential(p, locs, algorithm="ef-opt"),
    "Bebop": run_bebop,
    "Moped": run_moped,
}


def _sequential_row(name: str, program, locations, expected: bool) -> str:
    cells = [f"{name:28s}", "Yes" if expected else "No "]
    nodes = 0
    stats_line = "  (no kernel statistics)"
    for engine_name, runner in SEQUENTIAL_ENGINES.items():
        started = time.perf_counter()
        result = runner(program, locations)
        elapsed = time.perf_counter() - started
        assert result.reachable == expected, f"{name}: {engine_name} disagrees"
        if engine_name == "EFopt":
            nodes = result.summary_nodes
            stats_line = _kernel_stats_line(result)
        cells.append(f"{elapsed:7.2f}")
    cells.insert(2, f"{nodes:8d}")
    return "  ".join(cells) + "\n" + stats_line


def _kernel_stats_line(result) -> str:
    """One-line kernel summary (hoists, memo/apply hit rates, node/GC counts)."""
    stats = result.stats
    if not stats:
        return "  (no kernel statistics)"
    manager = stats.get("manager", {})
    and_rate = manager.get("ops", {}).get("and", {}).get("hit_rate", 0.0)
    gc = manager.get("gc", {})
    states = (
        f"summary_states={result.summary_states} "
        if result.summary_states is not None
        else ""
    )
    return (
        f"  kernel: {states}static_hoists={stats.get('static_hoists', 0)} "
        f"plan_memo_hit_rate={stats.get('plan_memo_hit_rate', 0.0):.2f} "
        f"and_hit_rate={and_rate:.2f} "
        f"peak_nodes={manager.get('peak_nodes', 0)} "
        f"live_nodes={manager.get('nodes', 0)} "
        f"gc_collections={gc.get('collections', 0)} "
        f"gc_reclaimed={gc.get('reclaimed', 0)}"
    )


def figure2(sizes: Sequence[int] = (2, 3), counter_bits: Sequence[int] = (2, 3)) -> None:
    """The sequential suites of Figure 2 (regression, drivers, terminator)."""
    header = (
        f"{'benchmark':28s}  {'Reach?':4s}  {'EFopt BDD':>8s}  "
        + "  ".join(f"{name:>7s}" for name in SEQUENTIAL_ENGINES)
    )
    print("== Figure 2: sequential Boolean programs (times in seconds) ==")
    print(header)
    print("-" * len(header))
    for positive in (True, False):
        suite = regression_suite(positive)
        label = f"Regression ({'positive' if positive else 'negative'}, {len(suite)} programs)"
        totals = {name: 0.0 for name in SEQUENTIAL_ENGINES}
        nodes = 0
        for case in suite:
            locations = resolve_target(case.program, case.target)
            for engine_name, runner in SEQUENTIAL_ENGINES.items():
                started = time.perf_counter()
                result = runner(case.program, locations)
                totals[engine_name] += time.perf_counter() - started
                assert result.reachable == case.expected
                if engine_name == "EFopt":
                    nodes = max(nodes, result.summary_nodes)
        row = [f"{label:28s}", "Yes" if positive else "No ", f"{nodes:8d}"]
        row += [f"{totals[name]:7.2f}" for name in SEQUENTIAL_ENGINES]
        print("  ".join(row))
    for positive in (True, False):
        for handlers in sizes:
            spec = DriverSpec(
                name=f"Driver {handlers} handlers ({'pos' if positive else 'neg'})",
                handlers=handlers,
                flags=min(4, handlers),
                helpers=max(1, handlers // 2),
                positive=positive,
            )
            program = make_driver(spec)
            print(_sequential_row(spec.name, program, resolve_target(program, spec.target), positive))
    for positive in (True, False):
        for bits in counter_bits:
            for variant in ("iterative", "schoose"):
                spec = TerminatorSpec(
                    name=f"Terminator {variant} {bits}b ({'pos' if positive else 'neg'})",
                    counter_bits=bits,
                    variant=variant,
                    positive=positive,
                )
                program = make_terminator(spec)
                print(
                    _sequential_row(
                        spec.name, program, resolve_target(program, spec.target), positive
                    )
                )


def _figure2_queries():
    """The Figure 2 EFopt sweep as shard queries, from the benchmark drivers."""
    from bench_fig2_drivers import batch_queries as driver_queries
    from bench_fig2_regression import batch_queries as regression_queries
    from bench_fig2_terminator import batch_queries as terminator_queries

    return regression_queries() + driver_queries() + terminator_queries()


def _parallel_table(queries, jobs: int, title: str) -> None:
    """Run a batch sequentially and sharded; print the table and speedup.

    Verdicts must be identical per row between the two runs — per-shard
    managers share nothing, so any disagreement is a bug, not noise.
    """
    print(title)
    sequential = run_batch(queries, jobs=1)
    parallel = run_batch(queries, jobs=jobs)
    for seq_shard, par_shard in zip(sequential.shards, parallel.shards):
        assert seq_shard.ok and par_shard.ok, (
            f"{par_shard.name}: {seq_shard.error or par_shard.error}"
        )
        assert seq_shard.result.reachable == par_shard.result.reachable, (
            f"{par_shard.name}: sequential and sharded verdicts disagree"
        )
    mismatches = parallel.mismatches()
    assert not mismatches, f"verdict mismatches: {[s.name for s in mismatches]}"
    print(parallel.format_table())
    print(
        f"sequential wall={sequential.wall_seconds:.2f}s  "
        f"parallel wall={parallel.wall_seconds:.2f}s  "
        f"speedup={sequential.wall_seconds / max(parallel.wall_seconds, 1e-9):.2f}x "
        f"(jobs={jobs}, mode={parallel.mode})"
    )


def figure2_parallel(jobs: int = 4) -> None:
    """The Figure 2 sweep, sharded over per-query BDD managers."""
    _parallel_table(
        _figure2_queries(),
        jobs,
        f"== Figure 2 (sharded): EFopt sweep over {jobs} worker processes ==",
    )


def figure3_parallel(jobs: int = 4) -> None:
    """The symbolic Bluetooth sweep, sharded over per-query BDD managers."""
    from bench_fig3_bluetooth import batch_queries as bluetooth_queries

    _parallel_table(
        bluetooth_queries(),
        jobs,
        f"== Figure 3 (sharded): symbolic Bluetooth sweep over {jobs} worker processes ==",
    )


def _session_sweep(max_targets: int = 8):
    """The Figure 2 driver/terminator programs as multi-target sweeps.

    Each program gets one query per procedure exit plus the suite's own
    target — the compile-once/query-many shape ("which procedures can
    return, and is the bug reachable?") that a session amortises; the
    target construction is shared with the driver/terminator/regression
    pytest benchmarks so both harnesses measure the same workload.
    """
    from bench_fig2_drivers import multi_target_sweep

    sweeps = []
    specs = []
    for positive in (True, False):
        for handlers in (2, 3):
            specs.append(
                (
                    make_driver(
                        DriverSpec(
                            name=f"driver-{handlers}",
                            handlers=handlers,
                            flags=min(4, handlers),
                            helpers=max(1, handlers // 2),
                            positive=positive,
                        )
                    ),
                    f"Driver {handlers} ({'pos' if positive else 'neg'})",
                    "error",
                )
            )
    for positive in (True, False):
        spec = TerminatorSpec(
            name="terminator-2b", counter_bits=2, variant="iterative", positive=positive
        )
        specs.append(
            (make_terminator(spec), f"Terminator 2b ({'pos' if positive else 'neg'})", spec.target)
        )
    for program, label, primary in specs:
        targets = multi_target_sweep(program, primary)
        sweeps.append((label, program, targets[:max_targets]))
    return sweeps


def session_table(algorithm: str = "summary") -> None:
    """Fresh-run vs session-reuse wall clock on multi-target Figure 2 sweeps.

    Fresh: one full ``run_sequential`` per target (validate + CFG + encode +
    solve each time).  Session: one ``AnalysisSession`` per program — solve
    once, answer every target as a query post-pass.  Verdicts must be
    identical; for the target-free ``summary`` algorithm the session total
    is asserted strictly below the fresh total (the solve amortises).
    """
    print(f"== Session reuse: fresh vs compile-once/query-many ({algorithm}) ==")
    header = (
        f"{'program':26s}  {'targets':>7s}  {'fresh (s)':>9s}  {'session (s)':>11s}  "
        f"{'speedup':>7s}  {'reused':>6s}  {'states':>7s}"
    )
    print(header)
    print("-" * len(header))
    total_fresh = 0.0
    total_session = 0.0
    for label, program, targets in _session_sweep():
        started = time.perf_counter()
        fresh = [
            run_sequential(program, locations, algorithm=algorithm) for locations in targets
        ]
        fresh_seconds = time.perf_counter() - started
        started = time.perf_counter()
        with AnalysisSession(program, default_algorithm=algorithm) as session:
            reused = session.check_all(targets, algorithm=algorithm)
        session_seconds = time.perf_counter() - started
        for fresh_result, session_result in zip(fresh, reused):
            assert fresh_result.reachable == session_result.reachable, (
                f"{label}: fresh and session verdicts disagree"
            )
        reuse_count = sum(1 for r in reused if r.details.get("reused_solve"))
        states = reused[-1].summary_states
        total_fresh += fresh_seconds
        total_session += session_seconds
        print(
            f"{label:26s}  {len(targets):7d}  {fresh_seconds:9.2f}  {session_seconds:11.2f}  "
            f"{fresh_seconds / max(session_seconds, 1e-9):6.2f}x  {reuse_count:6d}  "
            f"{states if states is not None else 0:7d}"
        )
    print(
        f"total: fresh={total_fresh:.2f}s session={total_session:.2f}s "
        f"speedup={total_fresh / max(total_session, 1e-9):.2f}x"
    )
    if algorithm == "summary":
        assert total_session < total_fresh, (
            "session reuse must beat fresh runs on the summary algorithm "
            f"(fresh={total_fresh:.2f}s, session={total_session:.2f}s)"
        )
        print("session reuse OK: identical verdicts, solve amortised across targets")


def session_smoke(jobs: int = 2) -> None:
    """CI smoke: per-shard session reuse inside a jobs=2 process pool.

    One program with several targets must group onto one session (>= 1
    reused solve), a second program keeps the pool honest, and the grouped
    verdicts must match an ungrouped (one query per shard) fresh run.
    """
    from repro.parallel import BatchQuery

    multi = """
    decl g;
    main() begin
      g := T;
      if (g) then a: skip; fi
      if (!g) then b: skip; fi
      c: skip;
    end
    """
    other = """
    decl h;
    main() begin
      h := F;
      if (h) then hit: skip; fi
    end
    """
    queries = [
        BatchQuery(name="multi:a", program=multi, target="main:a", expected=True),
        BatchQuery(name="multi:b", program=multi, target="main:b", expected=False),
        BatchQuery(name="multi:c", program=multi, target="main:c", expected=True),
        BatchQuery(name="other:hit", program=other, target="main:hit", expected=False),
    ]
    fresh = run_batch(queries, jobs=1, group_by_program=False)
    reused = run_batch(queries, jobs=jobs)
    assert reused.mode == "process-pool", f"expected a process pool, ran {reused.mode}"
    assert not fresh.failures() and not reused.failures(), (
        [s.error for s in fresh.failures() + reused.failures()]
    )
    assert not reused.mismatches(), [s.name for s in reused.mismatches()]
    assert fresh.verdicts() == reused.verdicts(), "grouped verdicts diverged from fresh"
    assert reused.reused_count >= 1, "expected at least one reused solve in the group"
    assert fresh.reused_count == 0, "ungrouped batch must not report reuse"
    print(reused.format_table())
    print(
        f"session smoke OK: identical verdicts fresh vs reused, "
        f"{reused.reused_count} reused solve(s), "
        f"queries/solve={reused.queries_per_solve:.2f} at jobs={jobs}"
    )


def parallel_smoke() -> None:
    """CI smoke: a jobs=2 pool over two small regression programs.

    Exercises process-pool pickling of programs, targets and results on
    every push; fails loudly if the pool silently degraded to the
    sequential fallback.
    """
    from repro.parallel import BatchQuery

    cases = regression_suite(True)[:1] + regression_suite(False)[:1]
    queries = [
        BatchQuery(
            name=case.name, program=case.program, target=case.target, expected=case.expected
        )
        for case in cases
    ]
    report = run_batch(queries, jobs=2)
    assert report.mode == "process-pool", f"expected a process pool, ran {report.mode}"
    assert not report.failures(), [s.error for s in report.failures()]
    assert not report.mismatches(), [s.name for s in report.mismatches()]
    assert len(report.worker_pids()) >= 1
    print(report.format_table())
    print("parallel smoke OK: pool pickling of programs/targets/results works")


def faults_table(rounds: int = 3, overhead_budget: float = 0.05) -> None:
    """Overhead of an armed-but-unhit resource envelope on the Figure 2 sweep.

    Runs the summary-algorithm Figure 2 regression sweep twice per round —
    once bare, once under generous limits (a deadline and node budget far
    above what the sweep needs, so enforcement checkpoints run but never
    trip) — and compares best-of-``rounds`` wall clocks.  The cooperative
    checks live on the ``_mk`` hot path, so this table is the evidence that
    governance is affordable: the armed run must stay within
    ``overhead_budget`` (plus a small absolute floor for timer noise) of the
    bare run, with identical verdicts.
    """
    from repro.limits import ResourceLimits

    print("== Resource-governance overhead: Figure 2 regression sweep (summary) ==")
    cases = regression_suite(True) + regression_suite(False)
    resolved = [
        (case, resolve_target(case.program, case.target)) for case in cases
    ]
    limits = ResourceLimits(deadline_seconds=600.0, node_budget=50_000_000)

    def sweep(armed: bool) -> float:
        started = time.perf_counter()
        for case, locations in resolved:
            result = run_sequential(
                case.program,
                locations,
                algorithm="summary",
                limits=limits if armed else None,
            )
            assert result.reachable == case.expected, (
                f"{case.name}: verdict changed under "
                f"{'armed' if armed else 'bare'} run"
            )
        return time.perf_counter() - started

    bare = min(sweep(armed=False) for _ in range(rounds))
    armed = min(sweep(armed=True) for _ in range(rounds))
    overhead = (armed - bare) / max(bare, 1e-9)
    print(
        f"{'run':10s}  {'programs':>8s}  {'best of':>7s}  {'wall (s)':>8s}"
    )
    print(f"{'bare':10s}  {len(cases):8d}  {rounds:7d}  {bare:8.3f}")
    print(f"{'governed':10s}  {len(cases):8d}  {rounds:7d}  {armed:8.3f}")
    print(f"overhead: {overhead * 100:+.1f}% (budget {overhead_budget * 100:.0f}%)")
    # Tiny sweeps are timer-noise bound: allow a small absolute floor so the
    # relative budget only bites once the sweep is long enough to measure.
    assert armed <= bare * (1.0 + overhead_budget) + 0.05, (
        f"governance overhead {overhead * 100:.1f}% exceeds the "
        f"{overhead_budget * 100:.0f}% budget (bare={bare:.3f}s armed={armed:.3f}s)"
    )
    print("faults overhead OK: armed limits stay within budget, verdicts identical")


def faults_smoke(jobs: int = 2) -> None:
    """CI smoke: a worker killed mid-batch is retried, answers unchanged.

    Runs a two-group batch clean, then again with a one-shot injected worker
    kill (latched on a token file, so exactly one attempt dies).  The
    scheduler must rebuild the pool, re-run only the killed group, preserve
    the completed shard, and report identical verdicts with the retry
    recorded in the shard statuses.
    """
    import os
    import tempfile

    from repro.parallel import BatchQuery, run_shards
    from repro.testing import FaultPlan

    positive = """
    decl g;
    main() begin
      g := T;
      if (g) then target: skip; fi
    end
    """
    negative = """
    decl g;
    main() begin
      g := F;
      if (g) then target: skip; fi
    end
    """
    queries = [
        BatchQuery(name="victim", program=positive, target="main:target", expected=True),
        BatchQuery(name="bystander", program=negative, target="main:target", expected=False),
    ]
    clean = run_batch(queries, jobs=jobs)
    assert clean.mode == "process-pool", f"expected a process pool, ran {clean.mode}"
    assert not clean.failures(), [s.error for s in clean.failures()]
    token = tempfile.mktemp(prefix="getafix-fault-latch-")
    try:
        plan = FaultPlan(kill_query="victim", once_token=token)
        results, mode, _ = run_shards(queries, jobs=jobs, fault_plan=plan)
    finally:
        if os.path.exists(token):
            os.unlink(token)
    assert mode == "process-pool", f"expected a process pool, ran {mode}"
    by_name = {shard.name: shard for shard in results}
    assert by_name["victim"].status == "retried", (
        f"killed shard was not retried: {by_name['victim']}"
    )
    assert by_name["victim"].retries >= 1
    verdicts = {shard.name: shard.result.reachable for shard in results}
    assert verdicts == clean.verdicts(), (
        f"fault-injected verdicts diverged: {verdicts} vs {clean.verdicts()}"
    )
    assert not any(shard.mismatch for shard in results)
    print(
        f"faults smoke OK: worker kill at jobs={jobs} triggered a pool rebuild, "
        f"victim retried {by_name['victim'].retries}x, verdicts identical to clean run"
    )


def figure3(max_switches: int = 6) -> None:
    """The Bluetooth table of Figure 3, using the explicit engine (all bounds)."""
    print("== Figure 3: Bluetooth driver, explicit engine ==")
    print(f"{'config':6s}  {'switches':>8s}  {'Reachable?':>10s}  {'configs':>10s}  {'time (s)':>9s}")
    for name, (adders, stoppers) in (
        ("1A1S", (1, 1)),
        ("1A2S", (1, 2)),
        ("2A1S", (2, 1)),
        ("2A2S", (2, 2)),
    ):
        program = make_bluetooth(adders, stoppers)
        locations = ConcurrentEncoder(program).error_locations()
        for switches in range(1, max_switches + 1):
            started = time.perf_counter()
            result = run_concurrent_explicit(
                program, locations, context_switches=switches
            )
            elapsed = time.perf_counter() - started
            print(
                f"{name:6s}  {switches:8d}  {result.verdict():>10s}  "
                f"{result.details['configurations']:10d}  {elapsed:9.2f}"
            )


def figure3_symbolic(max_switches: int = 3) -> None:
    """The Bluetooth table of Figure 3, using the Section 5 fixed-point algorithm."""
    print("== Figure 3: Bluetooth driver, symbolic bounded context switching ==")
    print(f"{'config':6s}  {'switches':>8s}  {'Reachable?':>10s}  {'BDD nodes':>10s}  {'time (s)':>9s}")
    for name, (adders, stoppers) in (("1A1S", (1, 1)), ("1A2S", (1, 2)), ("2A2S", (2, 2))):
        program = make_bluetooth(adders, stoppers)
        locations = ConcurrentEncoder(program).error_locations()
        for switches in range(1, max_switches + 1):
            started = time.perf_counter()
            result = run_concurrent(program, locations, context_switches=switches)
            elapsed = time.perf_counter() - started
            print(
                f"{name:6s}  {switches:8d}  {result.verdict():>10s}  "
                f"{result.summary_nodes:10d}  {elapsed:9.2f}"
            )


def kernel(bits: int = 14) -> None:
    """The BDD kernel micro-benchmark table (see bench_bdd_kernel.py)."""
    from bench_bdd_kernel import kernel_report

    print(f"== BDD kernel micro-benchmarks ({bits}-bit synthetic counter) ==")
    print(
        f"{'case':10s}  {'time (s)':>9s}  {'checksum':>10s}  "
        f"{'peak nodes':>10s}  {'live nodes':>10s}  {'gc':>4s}"
    )
    for name, seconds, result in kernel_report(bits):
        print(
            f"{name:10s}  {seconds:9.3f}  {result.checksum:10d}  "
            f"{result.peak_nodes:10d}  {result.live_nodes:10d}  "
            f"{result.gc_collections:4d}"
        )


def kernel_json(path: str, bits: int = 12, rounds: int = 3) -> None:
    """Write the dict-vs-array kernel record to ``path`` (committed policy).

    The dict layout is the seed kernel's node store, so each row is a
    seed-vs-current comparison: per-case wall clock for both layouts,
    speedup, plus the array store's peak/live node counts and GC
    collections.  Checksum identity between layouts is asserted inside
    :func:`bench_bdd_kernel.compare_report`.
    """
    import json
    import platform

    from bench_bdd_kernel import compare_report

    rows = compare_report(bits, rounds=rounds)
    record = {
        "benchmark": "bdd-kernel-store-comparison",
        "bits": bits,
        "rounds": rounds,
        "python": platform.python_version(),
        "baseline_store": "dict (seed layout)",
        "candidate_store": "array (struct-of-arrays)",
        "rows": [
            {
                "case": row.case,
                "dict_seconds": round(row.dict_seconds, 6),
                "array_seconds": round(row.array_seconds, 6),
                "speedup": round(row.speedup, 3),
                "checksum": row.array_result.checksum,
                "peak_nodes": row.array_result.peak_nodes,
                "live_nodes": row.array_result.live_nodes,
                "gc_collections": row.array_result.gc_collections,
            }
            for row in rows
        ],
    }
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"wrote {path}: {len(rows)} cases at bits={bits}, best of {rounds}")
    for row in rows:
        print(
            f"  {row.case:10s} dict={row.dict_seconds:7.3f}s "
            f"array={row.array_seconds:7.3f}s speedup={row.speedup:5.2f}x"
        )


def array_kernel_smoke(bits: int | None = None) -> None:
    """CI gate for the struct-of-arrays store (see bench_bdd_kernel.array_smoke)."""
    from bench_bdd_kernel import array_smoke

    array_smoke(**({} if bits is None else {"bits": bits}))


def _vm_rss_bytes() -> int:
    """Resident set size of this process, from /proc (Linux CI runners)."""
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("VmRSS not found in /proc/self/status")


def snapshot_smoke(jobs: int = 2) -> None:
    """CI smoke for shared-memory snapshots: copy-free attach + jobs=2 fan-out.

    Two assertions:

    * **Copy-free attach** — freezing a solved table and attaching a view +
      overlay must grow this process's RSS by far less than the segment
      size (the mapping is lazy; nothing is deserialised), while answering
      the same ``count_sat`` as the live manager.
    * **Fan-out identity** — ``run_shards_snapshot`` at ``--jobs 2`` must
      take the snapshot-pool path, answer every target with the classic
      grouped path's verdict, attribute exactly one solve, and leave no
      ``repro-snap-*`` segment behind.
    """
    import os

    from repro.bdd import BddManager, SnapshotOverlayManager, SnapshotView
    from repro.bdd import snapshot as bdd_snapshot
    from repro.parallel import BatchQuery, run_shards, run_shards_snapshot

    from bench_bdd_kernel import _hidden_weighted_bit, _make_manager

    before_segments = set(bdd_snapshot.list_segments())

    # -- copy-free attach with a bounded RSS delta.
    mgr = _make_manager(10)
    f = mgr.ref(_hidden_weighted_bit(mgr, list(mgr.var_names)))
    mgr.collect_garbage()
    expected_count = mgr.count_sat(f)
    name = bdd_snapshot.freeze(mgr)
    try:
        segment_bytes = os.path.getsize(f"/dev/shm/{name}")
        rss_before = _vm_rss_bytes()
        view = SnapshotView(name)
        overlay = SnapshotOverlayManager(view)
        rss_delta = _vm_rss_bytes() - rss_before
        budget = max(segment_bytes // 4, 256 * 1024)
        assert rss_delta < budget, (
            f"attach copied the table: RSS grew {rss_delta} bytes against a "
            f"{segment_bytes}-byte segment (budget {budget})"
        )
        assert overlay.count_sat(f) == expected_count, "snapshot count diverged"
        overlay.detach()
    finally:
        bdd_snapshot.unlink(name)
    print(
        f"snapshot smoke: attach ok ({segment_bytes} B segment, "
        f"RSS delta {rss_delta} B, count_sat identical)"
    )

    # -- shard fan-out over one shared solved table.
    program = """
    decl g;
    main() begin
      decl x;
      x := *;
      call set_flag(x);
      if (g) then yes: skip; fi
      if (!g) then no_g: skip; fi
      if (g & !g) then never: skip; fi
      done: skip;
    end
    set_flag(v) begin
      g := v;
      if (!v) then cold: skip; fi
    end
    """
    targets = ["main:yes", "main:no_g", "main:never", "set_flag:cold", "main:done"]
    queries = [
        BatchQuery(name=f"snap:{target}", program=program, target=target)
        for target in targets
    ]
    classic, _, _ = run_shards(queries, jobs=1)
    snap, mode, reason = run_shards_snapshot(queries, jobs=jobs)
    assert mode == "snapshot-pool", f"fan-out fell back ({reason})"
    assert all(shard.ok for shard in snap), [shard.error for shard in snap]
    verdicts = [shard.result.reachable for shard in snap]
    assert verdicts == [shard.result.reachable for shard in classic], (
        "snapshot fan-out verdicts diverged from the classic path"
    )
    solves = [shard.reused_solve for shard in snap].count(False)
    assert solves == 1, f"expected exactly one attributed solve, saw {solves}"
    leaked = set(bdd_snapshot.list_segments()) - before_segments
    assert not leaked, f"leaked segments: {sorted(leaked)}"
    pids = {shard.pid for shard in snap}
    print(
        f"snapshot smoke OK: {len(queries)} targets over {len(pids)} worker "
        f"process(es) at jobs={jobs}, verdicts identical, one solve, "
        f"no leaked segments"
    )


def _optimize_corpus():
    """The full benchgen corpus as (name, program, target, expected) rows.

    Sequential programs only — the pre-analysis pipeline rejects concurrent
    queries, so the Bluetooth configurations stay out.
    """
    from repro.benchgen import make_terminator, terminator_suite

    rows = []
    for positive in (True, False):
        for case in regression_suite(positive):
            rows.append((case.name, case.program, case.target, case.expected))
    for positive in (True, False):
        for spec in driver_suite(positive):
            rows.append((spec.name, make_driver(spec), spec.target, positive))
        for spec in terminator_suite(positive=positive):
            rows.append((spec.name, make_terminator(spec), spec.target, positive))
    return rows


def optimize_table(sizes: Sequence[int] = (2, 3, 4)) -> None:
    """Figure 2 driver sweep, raw vs pre-analyzed (``-O0`` vs ``-O2``).

    For every driver configuration the same query runs through the EFopt
    engine twice — once on the program verbatim, once behind the
    :mod:`repro.analysis` pipeline at level 2 — and the table reports the
    declared BDD variable count, the peak live node count and the wall
    clock of each, plus what the passes removed.  Verdicts are asserted
    identical per row.
    """
    from repro.frontends.getafix import check_reachability

    header = (
        f"{'benchmark':22s}  {'Reach?':6s}  {'vars O0':>7s}  {'vars O2':>7s}  "
        f"{'peak O0':>8s}  {'peak O2':>8s}  {'wall O0':>7s}  {'wall O2':>7s}  removed"
    )
    print("== Static pre-analysis: Figure 2 drivers, -O0 vs -O2 (EFopt) ==")
    print(header)
    print("-" * len(header))
    total_raw = total_opt = 0.0
    for positive in (True, False):
        for handlers in sizes:
            spec = DriverSpec(
                name=f"driver-{handlers}-{'pos' if positive else 'neg'}",
                handlers=handlers,
                flags=min(4, handlers),
                helpers=max(1, handlers // 2),
                positive=positive,
            )
            program = make_driver(spec)
            cells = {}
            for level in (0, 2):
                started = time.perf_counter()
                result = check_reachability(
                    program, target=spec.target, algorithm="ef-opt", optimize=level
                )
                wall = time.perf_counter() - started
                manager = (result.stats or {}).get("manager", {})
                cells[level] = (
                    result.reachable,
                    manager.get("vars", 0),
                    manager.get("peak_nodes", 0),
                    wall,
                    (result.stats or {}).get("optimize", {}),
                )
            assert cells[0][0] == cells[2][0], f"{spec.name}: -O2 changed the verdict"
            total_raw += cells[0][3]
            total_opt += cells[2][3]
            removed = cells[2][4].get("variables_removed", [])
            dropped = cells[2][4].get("procedures_dropped", [])
            print(
                f"{spec.name:22s}  {'Yes' if cells[0][0] else 'No ':6s}  "
                f"{cells[0][1]:7d}  {cells[2][1]:7d}  "
                f"{cells[0][2]:8d}  {cells[2][2]:8d}  "
                f"{cells[0][3]:7.2f}  {cells[2][3]:7.2f}  "
                f"{len(removed)} vars, {len(dropped)} procs"
            )
    print(
        f"{'total wall':22s}  {'':6s}  {'':7s}  {'':7s}  {'':8s}  {'':8s}  "
        f"{total_raw:7.2f}  {total_opt:7.2f}"
    )


def optimize_smoke(jobs: int = 2, random_count: int = 200) -> None:
    """CI differential gate for the static pre-analysis pipeline.

    Four assertions:

    * **Corpus identity** — every sequential benchgen corpus program gets
      the expected verdict from all three fixed-point algorithms at ``-O0``,
      ``-O1`` and ``-O2``.
    * **Fuzz identity** — ``random_count`` random programs agree with the
      explicit BEBOP replay at every level, for all three algorithms.
    * **Sharded identity** — the driver corpus re-run through
      ``run_shards`` at ``--jobs 2`` with ``optimize=2`` matches the
      ``optimize=0`` verdicts (the grouped-session path slices toward the
      union of the group's targets).
    * **Measured reduction** — on the driver corpus the pipeline removes at
      least ``flags + handlers`` declared variables per program (the dead
      SLAM artifacts), so the optimization is doing real work, not just
      passing programs through.
    """
    from repro.benchgen import random_program
    from repro.frontends.getafix import check_reachability
    from repro.parallel import BatchQuery, run_shards

    algorithms = ("summary", "ef", "ef-opt")
    corpus = _optimize_corpus()
    for name, program, target, expected in corpus:
        for level in (0, 1, 2):
            for algorithm in algorithms:
                result = check_reachability(
                    program, target=target, algorithm=algorithm, optimize=level
                )
                assert result.reachable == expected, (
                    f"{name}: {algorithm} at -O{level} returned "
                    f"{result.reachable}, expected {expected}"
                )
    print(
        f"optimize smoke: corpus identity ok ({len(corpus)} programs x "
        f"3 algorithms x 3 levels)"
    )

    mismatches = 0
    for seed in range(random_count):
        program = random_program(seed)
        locations = resolve_target(program, "main:target")
        expected = run_bebop(program, locations).reachable
        for level in (0, 1, 2):
            for algorithm in algorithms:
                got = check_reachability(
                    program, target="main:target", algorithm=algorithm, optimize=level
                ).reachable
                if got != expected:
                    mismatches += 1
                    print(f"  MISMATCH seed={seed} -O{level} {algorithm}: {got}")
    assert not mismatches, f"{mismatches} fuzz verdict mismatches"
    print(f"optimize smoke: fuzz identity ok ({random_count} random programs)")

    driver_rows = [
        (spec.name, make_driver(spec), spec.target, positive)
        for positive in (True, False)
        for spec in driver_suite(positive)
    ]
    for level in (0, 2):
        queries = [
            BatchQuery(name=name, program=program, target=target, optimize=level)
            for name, program, target, _ in driver_rows
        ]
        shards, _, _ = run_shards(queries, jobs=jobs)
        assert all(shard.ok for shard in shards), [s.error for s in shards]
        verdicts = [shard.result.reachable for shard in shards]
        expected = [row[3] for row in driver_rows]
        assert verdicts == expected, f"-O{level} sharded verdicts {verdicts} != {expected}"
    print(f"optimize smoke: sharded identity ok (jobs={jobs}, -O2 vs -O0)")

    from repro.analysis import optimize as run_passes

    for positive in (True, False):
        for spec in driver_suite(positive):
            _, report = run_passes(make_driver(spec), level=2)
            floor = spec.flags + spec.handlers
            removed = len(report.variables_removed)
            assert removed >= floor, (
                f"{spec.name}: only {removed} variables removed "
                f"(expected >= {floor})"
            )
    print("optimize smoke OK: measured variable reduction on the driver corpus")


def witness_smoke(jobs: int = 2) -> None:
    """CI gate for counterexample witness traces.

    Over the full sequential benchgen corpus, for all three fixed-point
    algorithms:

    * every **reachable** query run with ``witness=True`` yields a trace
      that passed the explicit-semantics replay (``validated``) with no
      recorded ``witness_error``, and the verdict equals the expected one
      (extraction never flips a verdict);
    * every **unreachable** query yields no trace at all;
    * the sharded path (``run_shards`` at ``--jobs 2`` with
      ``BatchQuery.witness``) reproduces the same contract through pooled
      group sessions.
    """
    from repro.frontends.getafix import check_reachability
    from repro.parallel import BatchQuery, run_shards

    algorithms = ("summary", "ef", "ef-opt")
    corpus = _optimize_corpus()
    traced = 0
    for name, program, target, expected in corpus:
        for algorithm in algorithms:
            result = check_reachability(
                program, target=target, algorithm=algorithm, witness=True
            )
            assert result.reachable == expected, (
                f"{name}: {algorithm} with witness extraction returned "
                f"{result.reachable}, expected {expected}"
            )
            error = result.details.get("witness_error")
            assert error is None, f"{name}: {algorithm} witness failed: {error}"
            if expected:
                assert result.witness is not None, f"{name}: {algorithm} missing trace"
                assert result.witness["validated"], f"{name}: {algorithm} not replayed"
                assert result.witness["length"] == len(result.witness["steps"])
                traced += 1
            else:
                assert result.witness is None, f"{name}: trace for unreachable target"
    print(
        f"witness smoke: direct path ok ({len(corpus)} programs x "
        f"{len(algorithms)} algorithms, {traced} replay-validated traces)"
    )

    queries = [
        BatchQuery(name=name, program=program, target=target, witness=True)
        for name, program, target, _ in corpus
    ]
    shards, _, _ = run_shards(queries, jobs=jobs)
    assert all(shard.ok for shard in shards), [s.error for s in shards]
    traced = 0
    for shard, (name, _, _, expected) in zip(shards, corpus):
        result = shard.result
        assert result.reachable == expected, (
            f"{name}: sharded witness verdict {result.reachable} != {expected}"
        )
        error = result.details.get("witness_error")
        assert error is None, f"{name}: sharded witness failed: {error}"
        if expected:
            assert result.witness is not None and result.witness["validated"], (
                f"{name}: sharded query missing a validated trace"
            )
            traced += 1
        else:
            assert result.witness is None, f"{name}: sharded trace for unreachable"
    print(
        f"witness smoke OK: sharded path at jobs={jobs}, "
        f"{traced} replay-validated traces, verdicts identical"
    )


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "what",
        choices=[
            "figure2",
            "figure2-parallel",
            "figure3",
            "figure3-symbolic",
            "figure3-parallel",
            "session",
            "kernel",
            "parallel-smoke",
            "session-smoke",
            "faults",
            "faults-smoke",
            "array-kernel-smoke",
            "snapshot-smoke",
            "optimize",
            "optimize-smoke",
            "witness-smoke",
            "all",
        ],
        help="which table to regenerate",
    )
    parser.add_argument("--max-switches", type=int, default=6)
    parser.add_argument(
        "--jobs", type=int, default=4, help="worker processes for the parallel tables"
    )
    parser.add_argument(
        "--kernel-bits", type=int, default=14, help="counter width for the kernel table"
    )
    parser.add_argument(
        "--emit-json",
        metavar="PATH",
        default=None,
        help="with 'kernel': write the dict-vs-array comparison record to PATH",
    )
    parser.add_argument(
        "--algorithm",
        default="summary",
        choices=["summary", "ef", "ef-opt"],
        help="algorithm for the session table",
    )
    parser.add_argument(
        "--random",
        type=int,
        default=200,
        help="with 'optimize-smoke': number of random fuzz programs",
    )
    args = parser.parse_args(argv)
    if args.what in ("figure2", "all"):
        figure2()
        print()
    if args.what in ("figure2-parallel", "all"):
        figure2_parallel(jobs=args.jobs)
        print()
    if args.what in ("figure3", "all"):
        figure3(max_switches=args.max_switches)
        print()
    if args.what in ("figure3-symbolic", "all"):
        figure3_symbolic(max_switches=min(args.max_switches, 3))
        print()
    if args.what in ("figure3-parallel", "all"):
        figure3_parallel(jobs=args.jobs)
        print()
    if args.what in ("session", "all"):
        session_table(algorithm=args.algorithm)
        print()
    if args.what in ("kernel", "all"):
        if args.emit_json:
            kernel_json(args.emit_json, bits=min(args.kernel_bits, 12))
        else:
            kernel(bits=args.kernel_bits)
    if args.what == "array-kernel-smoke":
        array_kernel_smoke()
    if args.what == "snapshot-smoke":
        snapshot_smoke(jobs=min(args.jobs, 2))
    if args.what in ("optimize", "all"):
        optimize_table()
        if args.what == "all":
            print()
    if args.what == "optimize-smoke":
        optimize_smoke(jobs=min(args.jobs, 2), random_count=args.random)
    if args.what == "witness-smoke":
        witness_smoke(jobs=min(args.jobs, 2))
    if args.what == "parallel-smoke":
        parallel_smoke()
    if args.what == "session-smoke":
        session_smoke()
    if args.what in ("faults", "all"):
        faults_table()
        if args.what == "all":
            print()
    if args.what == "faults-smoke":
        faults_smoke(jobs=min(args.jobs, 2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
