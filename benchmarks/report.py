#!/usr/bin/env python3
"""Regenerate the rows of Figure 2 and Figure 3 as plain-text tables.

Unlike the pytest-benchmark files (which integrate with ``pytest
--benchmark-only``), this harness prints tables in the same layout as the
paper so the results can be compared side by side and pasted into
EXPERIMENTS.md.

Usage::

    python benchmarks/report.py figure2            # sequential suites
    python benchmarks/report.py figure3            # Bluetooth, explicit engine
    python benchmarks/report.py figure3-symbolic   # Bluetooth, fixed-point engine
    python benchmarks/report.py kernel             # BDD kernel micro-benchmarks
    python benchmarks/report.py all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Sequence, Tuple

from repro.algorithms import run_concurrent, run_sequential
from repro.baselines import run_bebop, run_concurrent_explicit, run_moped
from repro.benchgen import (
    DriverSpec,
    TerminatorSpec,
    make_bluetooth,
    make_driver,
    make_terminator,
    regression_suite,
)
from repro.encode.concurrent import ConcurrentEncoder
from repro.frontends import resolve_target

SEQUENTIAL_ENGINES: Dict[str, Callable] = {
    "EF": lambda p, locs: run_sequential(p, locs, algorithm="ef"),
    "EFopt": lambda p, locs: run_sequential(p, locs, algorithm="ef-opt"),
    "Bebop": run_bebop,
    "Moped": run_moped,
}


def _sequential_row(name: str, program, locations, expected: bool) -> str:
    cells = [f"{name:28s}", "Yes" if expected else "No "]
    nodes = 0
    stats_line = "  (no kernel statistics)"
    for engine_name, runner in SEQUENTIAL_ENGINES.items():
        started = time.perf_counter()
        result = runner(program, locations)
        elapsed = time.perf_counter() - started
        assert result.reachable == expected, f"{name}: {engine_name} disagrees"
        if engine_name == "EFopt":
            nodes = result.summary_nodes
            stats_line = _kernel_stats_line(result)
        cells.append(f"{elapsed:7.2f}")
    cells.insert(2, f"{nodes:8d}")
    return "  ".join(cells) + "\n" + stats_line


def _kernel_stats_line(result) -> str:
    """One-line kernel summary (hoists, memo/apply hit rates, node/GC counts)."""
    stats = result.stats
    if not stats:
        return "  (no kernel statistics)"
    manager = stats.get("manager", {})
    and_rate = manager.get("ops", {}).get("and", {}).get("hit_rate", 0.0)
    gc = manager.get("gc", {})
    return (
        f"  kernel: static_hoists={stats.get('static_hoists', 0)} "
        f"plan_memo_hit_rate={stats.get('plan_memo_hit_rate', 0.0):.2f} "
        f"and_hit_rate={and_rate:.2f} "
        f"peak_nodes={manager.get('peak_nodes', 0)} "
        f"live_nodes={manager.get('nodes', 0)} "
        f"gc_collections={gc.get('collections', 0)} "
        f"gc_reclaimed={gc.get('reclaimed', 0)}"
    )


def figure2(sizes: Sequence[int] = (2, 3), counter_bits: Sequence[int] = (2, 3)) -> None:
    """The sequential suites of Figure 2 (regression, drivers, terminator)."""
    header = (
        f"{'benchmark':28s}  {'Reach?':4s}  {'EFopt BDD':>8s}  "
        + "  ".join(f"{name:>7s}" for name in SEQUENTIAL_ENGINES)
    )
    print("== Figure 2: sequential Boolean programs (times in seconds) ==")
    print(header)
    print("-" * len(header))
    for positive in (True, False):
        suite = regression_suite(positive)
        label = f"Regression ({'positive' if positive else 'negative'}, {len(suite)} programs)"
        totals = {name: 0.0 for name in SEQUENTIAL_ENGINES}
        nodes = 0
        for case in suite:
            locations = resolve_target(case.program, case.target)
            for engine_name, runner in SEQUENTIAL_ENGINES.items():
                started = time.perf_counter()
                result = runner(case.program, locations)
                totals[engine_name] += time.perf_counter() - started
                assert result.reachable == case.expected
                if engine_name == "EFopt":
                    nodes = max(nodes, result.summary_nodes)
        row = [f"{label:28s}", "Yes" if positive else "No ", f"{nodes:8d}"]
        row += [f"{totals[name]:7.2f}" for name in SEQUENTIAL_ENGINES]
        print("  ".join(row))
    for positive in (True, False):
        for handlers in sizes:
            spec = DriverSpec(
                name=f"Driver {handlers} handlers ({'pos' if positive else 'neg'})",
                handlers=handlers,
                flags=min(4, handlers),
                helpers=max(1, handlers // 2),
                positive=positive,
            )
            program = make_driver(spec)
            print(_sequential_row(spec.name, program, resolve_target(program, spec.target), positive))
    for positive in (True, False):
        for bits in counter_bits:
            for variant in ("iterative", "schoose"):
                spec = TerminatorSpec(
                    name=f"Terminator {variant} {bits}b ({'pos' if positive else 'neg'})",
                    counter_bits=bits,
                    variant=variant,
                    positive=positive,
                )
                program = make_terminator(spec)
                print(
                    _sequential_row(
                        spec.name, program, resolve_target(program, spec.target), positive
                    )
                )


def figure3(max_switches: int = 6) -> None:
    """The Bluetooth table of Figure 3, using the explicit engine (all bounds)."""
    print("== Figure 3: Bluetooth driver, explicit engine ==")
    print(f"{'config':6s}  {'switches':>8s}  {'Reachable?':>10s}  {'configs':>10s}  {'time (s)':>9s}")
    for name, (adders, stoppers) in (
        ("1A1S", (1, 1)),
        ("1A2S", (1, 2)),
        ("2A1S", (2, 1)),
        ("2A2S", (2, 2)),
    ):
        program = make_bluetooth(adders, stoppers)
        locations = ConcurrentEncoder(program).error_locations()
        for switches in range(1, max_switches + 1):
            started = time.perf_counter()
            result = run_concurrent_explicit(
                program, locations, context_switches=switches
            )
            elapsed = time.perf_counter() - started
            print(
                f"{name:6s}  {switches:8d}  {result.verdict():>10s}  "
                f"{result.details['configurations']:10d}  {elapsed:9.2f}"
            )


def figure3_symbolic(max_switches: int = 3) -> None:
    """The Bluetooth table of Figure 3, using the Section 5 fixed-point algorithm."""
    print("== Figure 3: Bluetooth driver, symbolic bounded context switching ==")
    print(f"{'config':6s}  {'switches':>8s}  {'Reachable?':>10s}  {'BDD nodes':>10s}  {'time (s)':>9s}")
    for name, (adders, stoppers) in (("1A1S", (1, 1)), ("1A2S", (1, 2)), ("2A2S", (2, 2))):
        program = make_bluetooth(adders, stoppers)
        locations = ConcurrentEncoder(program).error_locations()
        for switches in range(1, max_switches + 1):
            started = time.perf_counter()
            result = run_concurrent(program, locations, context_switches=switches)
            elapsed = time.perf_counter() - started
            print(
                f"{name:6s}  {switches:8d}  {result.verdict():>10s}  "
                f"{result.summary_nodes:10d}  {elapsed:9.2f}"
            )


def kernel(bits: int = 14) -> None:
    """The BDD kernel micro-benchmark table (see bench_bdd_kernel.py)."""
    from bench_bdd_kernel import kernel_report

    print(f"== BDD kernel micro-benchmarks ({bits}-bit synthetic counter) ==")
    print(
        f"{'case':10s}  {'time (s)':>9s}  {'checksum':>10s}  "
        f"{'peak nodes':>10s}  {'live nodes':>10s}  {'gc':>4s}"
    )
    for name, seconds, result in kernel_report(bits):
        print(
            f"{name:10s}  {seconds:9.3f}  {result.checksum:10d}  "
            f"{result.peak_nodes:10d}  {result.live_nodes:10d}  "
            f"{result.gc_collections:4d}"
        )


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "what",
        choices=["figure2", "figure3", "figure3-symbolic", "kernel", "all"],
        help="which table to regenerate",
    )
    parser.add_argument("--max-switches", type=int, default=6)
    parser.add_argument(
        "--kernel-bits", type=int, default=14, help="counter width for the kernel table"
    )
    args = parser.parse_args(argv)
    if args.what in ("figure2", "all"):
        figure2()
        print()
    if args.what in ("figure3", "all"):
        figure3(max_switches=args.max_switches)
        print()
    if args.what in ("figure3-symbolic", "all"):
        figure3_symbolic(max_switches=min(args.max_switches, 3))
        print()
    if args.what in ("kernel", "all"):
        kernel(bits=args.kernel_bits)
    return 0


if __name__ == "__main__":
    sys.exit(main())
