"""Figure 2, rows "TERMINATOR-A/B/C" (iterative and schoose variants).

The TERMINATOR benchmarks have few procedures but many global bits and complex
loop structure, producing much larger reachable-state BDDs; in the paper this
is where GETAFIX clearly beats MOPED and BEBOP (both time out on some
variants).  The synthetic generator reproduces the shape with a Boolean
ripple-carry counter driven by nested loops, in the paper's two encodings of
the ``dead`` statement (``iterative`` and ``schoose``).
"""

from __future__ import annotations

from typing import List, Sequence

import pytest

from repro.algorithms import run_batch, run_sequential
from repro.baselines import run_bebop, run_moped
from repro.benchgen import TerminatorSpec, make_terminator
from repro.frontends import resolve_target
from repro.parallel import BatchQuery

from conftest import measure

ENGINES = {
    "getafix-ef": lambda program, locations: run_sequential(program, locations, algorithm="ef"),
    "getafix-ef-opt": lambda program, locations: run_sequential(
        program, locations, algorithm="ef-opt"
    ),
    "bebop": run_bebop,
    "moped": run_moped,
}


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("variant", ["iterative", "schoose"])
@pytest.mark.parametrize("bits", [2, 3])
@pytest.mark.parametrize("positive", [True, False], ids=["positive", "negative"])
def test_terminator(benchmark, engine, variant, bits, positive):
    spec = TerminatorSpec(
        name=f"terminator-{variant}-{bits}b",
        counter_bits=bits,
        variant=variant,
        positive=positive,
    )
    program = make_terminator(spec)
    locations = resolve_target(program, spec.target)
    runner = ENGINES[engine]

    result = measure(benchmark, runner, program, locations)
    assert result.reachable == positive
    benchmark.extra_info["globals"] = len(program.globals)
    benchmark.extra_info["summary_nodes"] = result.summary_nodes


def batch_queries(
    counter_bits: Sequence[int] = (2, 3), algorithm: str = "ef-opt"
) -> List[BatchQuery]:
    """The terminator sweep as picklable shard queries (both encodings)."""
    queries: List[BatchQuery] = []
    for positive in (True, False):
        for bits in counter_bits:
            for variant in ("iterative", "schoose"):
                spec = TerminatorSpec(
                    name=f"terminator-{variant}-{bits}b-{'pos' if positive else 'neg'}",
                    counter_bits=bits,
                    variant=variant,
                    positive=positive,
                )
                queries.append(
                    BatchQuery(
                        name=spec.name,
                        program=make_terminator(spec),
                        target=spec.target,
                        algorithm=algorithm,
                        expected=positive,
                    )
                )
    return queries


@pytest.mark.parametrize("jobs", [1, 4], ids=["jobs1", "jobs4"])
def test_terminator_sharded(benchmark, jobs):
    """Parallel mode: the terminator sweep fanned out over per-shard managers."""
    report = measure(benchmark, run_batch, batch_queries(), jobs=jobs)
    assert not report.failures() and not report.mismatches()
    benchmark.extra_info["mode"] = report.mode
    benchmark.extra_info["speedup"] = round(report.speedup, 2)


@pytest.mark.parametrize("variant", ["iterative", "schoose"])
def test_terminator_session_reuse(benchmark, variant):
    """Session mode: one compile + solve answers the whole multi-target sweep."""
    from bench_fig2_drivers import multi_target_sweep

    from repro.api import AnalysisSession

    spec = TerminatorSpec(
        name=f"terminator-{variant}-2b", counter_bits=2, variant=variant, positive=True
    )
    program = make_terminator(spec)
    targets = multi_target_sweep(program, spec.target)
    fresh = [
        run_sequential(program, locations, algorithm="summary") for locations in targets
    ]

    def session_sweep():
        with AnalysisSession(program, default_algorithm="summary") as session:
            return session.check_all(targets)

    reused = measure(benchmark, session_sweep)
    assert [r.reachable for r in reused] == [r.reachable for r in fresh]
    benchmark.extra_info["targets"] = len(targets)
    benchmark.extra_info["reused_solves"] = sum(
        1 for r in reused if r.details["reused_solve"]
    )
