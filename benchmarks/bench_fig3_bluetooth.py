"""Figure 3: bounded context-switching analysis of the Bluetooth driver model.

The paper reports, for four thread configurations (adders x stoppers) and
context-switch bounds 1..6: whether the assertion violation is reachable, the
size of the reachable set, and the analysis time.  Two groups of benchmarks
reproduce the figure:

* ``test_bluetooth_symbolic`` — the paper's fixed-point algorithm (Section 5)
  evaluated symbolically.  Pure-Python BDDs are orders of magnitude slower
  than MUCKE, so the symbolic sweep covers the small/medium bounds; the
  qualitative verdict pattern (which configuration finds the bug at which
  bound) matches Figure 3 exactly.
* ``test_bluetooth_explicit`` — the explicit-state engine covering the full
  k = 1..6 range of the figure, used for the Reachable? column and as a
  cross-check of the symbolic verdicts.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import pytest

from repro.algorithms import run_batch, run_concurrent
from repro.baselines import run_concurrent_explicit
from repro.benchgen import make_bluetooth
from repro.encode.concurrent import ConcurrentEncoder
from repro.parallel import BatchQuery

from conftest import measure

#: (configuration name, adders, stoppers, expected bound at which the bug appears
#:  or None if unreachable within 6 switches) — the Figure 3 pattern.
CONFIGURATIONS = [
    ("1A1S", 1, 1, None),
    ("1A2S", 1, 2, 3),
    ("2A1S", 2, 1, 4),
    ("2A2S", 2, 2, 3),
]

#: Symbolic sweep kept to bounds that finish in tens of seconds in pure Python.
SYMBOLIC_CASES = [
    ("1A1S", 1, 1, 1, False),
    ("1A1S", 1, 1, 2, False),
    ("1A2S", 1, 2, 2, False),
    ("1A2S", 1, 2, 3, True),
    ("2A2S", 2, 2, 3, True),
]


def _locations(program):
    return ConcurrentEncoder(program).error_locations()


@pytest.mark.parametrize("name,adders,stoppers,switches,expected", SYMBOLIC_CASES,
                         ids=[f"{c[0]}-k{c[3]}" for c in SYMBOLIC_CASES])
def test_bluetooth_symbolic(benchmark, name, adders, stoppers, switches, expected):
    program = make_bluetooth(adders, stoppers)
    locations = _locations(program)
    result = measure(
        benchmark, run_concurrent, program, locations, context_switches=switches,
    )
    assert result.reachable == expected
    benchmark.extra_info["configuration"] = name
    benchmark.extra_info["context_switches"] = switches
    benchmark.extra_info["reach_bdd_nodes"] = result.summary_nodes


@pytest.mark.parametrize("name,adders,stoppers,bug_at", CONFIGURATIONS,
                         ids=[c[0] for c in CONFIGURATIONS])
@pytest.mark.parametrize("switches", [1, 2, 3, 4, 5, 6])
def test_bluetooth_explicit(benchmark, name, adders, stoppers, bug_at, switches):
    program = make_bluetooth(adders, stoppers)
    locations = _locations(program)
    result = measure(
        benchmark,
        run_concurrent_explicit,
        program,
        locations,
        context_switches=switches,
    )
    expected = bug_at is not None and switches >= bug_at
    assert result.reachable == expected
    benchmark.extra_info["configuration"] = name
    benchmark.extra_info["context_switches"] = switches
    benchmark.extra_info["explored_configurations"] = result.details["configurations"]


def batch_queries(
    cases: Sequence[Tuple[str, int, int, int, bool]] = SYMBOLIC_CASES,
) -> List[BatchQuery]:
    """The symbolic Bluetooth sweep as picklable shard queries."""
    return [
        BatchQuery(
            name=f"{name}-k{switches}",
            program=make_bluetooth(adders, stoppers),
            target="error",
            concurrent=True,
            context_switches=switches,
            expected=expected,
        )
        for name, adders, stoppers, switches, expected in cases
    ]


@pytest.mark.parametrize("jobs", [1, 4], ids=["jobs1", "jobs4"])
def test_bluetooth_sharded(benchmark, jobs):
    """Parallel mode: the symbolic sweep fanned out over per-shard managers."""
    report = measure(benchmark, run_batch, batch_queries(), jobs=jobs)
    assert not report.failures() and not report.mismatches()
    benchmark.extra_info["mode"] = report.mode
    benchmark.extra_info["speedup"] = round(report.speedup, 2)


def test_bluetooth_grouping_keeps_concurrent_queries_solo(benchmark):
    """Concurrent queries use the bounded context-switching engine, which has
    no session support: batch grouping must leave every query its own shard
    (one solve per query, no reuse flags)."""
    from repro.parallel import group_queries

    queries = batch_queries()
    assert group_queries(queries) == [[index] for index in range(len(queries))]
    report = measure(benchmark, run_batch, queries[:2], jobs=1)
    assert not report.failures() and not report.mismatches()
    assert report.reused_count == 0
    assert report.queries_per_solve == 1.0
