"""Shared fixtures and helpers for the benchmark harness.

Every benchmark uses ``benchmark.pedantic(..., rounds=1, iterations=1)``: the
engines are deterministic and far too slow (pure Python) for statistical
repetition to be informative; one measured run per configuration mirrors how
the paper reports a single wall-clock time per benchmark.
"""

from __future__ import annotations

import pytest


def measure(benchmark, function, *args, **kwargs):
    """Run ``function`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture()
def run_once():
    """Fixture exposing :func:`measure` to benchmark modules."""
    return measure
