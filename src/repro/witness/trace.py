"""Witness trace records and the statement renderer.

A trace is a list of :class:`WitnessStep`; each step is a *state* of the
explicit semantics — procedure, program counter and the full Boolean
valuation of the procedure's locals and the globals — plus the move kind
that produced it (``start``, ``internal``, ``call`` or ``return``) and,
once the trace has been replay-validated, the source statement of the CFG
edge that was taken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..boolprog.cfg import CallEdge, InternalEdge

__all__ = [
    "WitnessError",
    "WitnessExtractionError",
    "WitnessValidationError",
    "WitnessStep",
    "WitnessTrace",
    "format_internal_edge",
    "format_call_edge",
    "format_return_edge",
]


class WitnessError(RuntimeError):
    """Base class of witness-subsystem failures (extraction or validation)."""


class WitnessExtractionError(WitnessError):
    """The symbolic walk could not produce a trace for a reachable verdict."""


class WitnessValidationError(WitnessError):
    """An extracted trace failed the explicit-semantics replay."""


@dataclass
class WitnessStep:
    """One state of the trace plus the move that reached it.

    ``kind`` is ``start`` (the initial state of ``main``), ``internal``
    (an intra-procedural move), ``call`` (the callee's entry state) or
    ``return`` (the caller's state after a matching return).  ``statement``
    is the rendered source statement of the CFG edge taken, filled in by
    replay validation.
    """

    kind: str
    procedure: str
    pc: int
    locals: Dict[str, bool]
    globals: Dict[str, bool]
    statement: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "procedure": self.procedure,
            "pc": self.pc,
            "statement": self.statement,
            "locals": dict(self.locals),
            "globals": dict(self.globals),
        }


@dataclass
class WitnessTrace:
    """A complete counterexample: start state to target, one move per step."""

    algorithm: str
    target: List[Tuple[int, int]]
    steps: List[WitnessStep] = field(default_factory=list)
    validated: bool = False

    def __len__(self) -> int:
        return len(self.steps)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready rendering (the shape documented in the README)."""
        return {
            "algorithm": self.algorithm,
            "target": [[module, pc] for module, pc in self.target],
            "length": len(self.steps),
            "validated": self.validated,
            "steps": [step.to_dict() for step in self.steps],
        }


# ---------------------------------------------------------------------------
# Statement rendering (filled in during replay, from the matched CFG edge)
# ---------------------------------------------------------------------------
def format_internal_edge(edge: InternalEdge) -> str:
    """Render an internal CFG edge in source syntax (guard + assignments)."""
    parts: List[str] = []
    if edge.guard is not None:
        parts.append(f"assume({edge.guard})")
    if edge.assigns:
        targets = ", ".join(edge.assigns)
        values = ", ".join(str(expr) for expr in edge.assigns.values())
        parts.append(f"{targets} := {values}")
    if not parts:
        return "skip"
    return "; ".join(parts)


def format_call_edge(edge: CallEdge) -> str:
    """Render a call CFG edge in source syntax."""
    args = ", ".join(str(expr) for expr in edge.args)
    call = f"{edge.callee}({args})"
    if edge.targets:
        return f"{', '.join(edge.targets)} := {call}"
    return f"call {call}"


def format_return_edge(edge: CallEdge, callee: str) -> str:
    """Render the return move matching a call edge."""
    return f"return from {callee} to pc {edge.return_pc}"
