"""Counterexample witness traces for `reachable` verdicts.

A *witness trace* turns a symbolic ``reachable`` answer into a concrete,
statement-level execution: a sequence of program states (procedure, program
counter, local and global valuations) connected by the internal, call and
return moves of the control-flow graph, starting in the initial state of
``main`` and ending at the queried target.

The subsystem has three layers:

:mod:`repro.witness.trace`
    The :class:`WitnessStep` / :class:`WitnessTrace` records, the typed
    error hierarchy and the statement renderer.
:mod:`repro.witness.extract`
    :class:`WitnessExtractor` — replays the entry-forward fixed point in
    Kleene layers over the session's retained base interpretations and
    walks one satisfying cube per step backward through the layers (the
    deterministic ``pick_cube`` kernel primitive), across procedure calls
    and returns.
:mod:`repro.witness.replay`
    :func:`validate_trace` — replays every extracted trace through the
    explicit-state semantics of :mod:`repro.baselines.semantics`; a trace
    that does not drive the program to the target is rejected with a typed
    error and never reported (the verdict is unchanged either way).
"""

from .trace import (
    WitnessError,
    WitnessExtractionError,
    WitnessStep,
    WitnessTrace,
    WitnessValidationError,
)
from .extract import WitnessExtractor
from .replay import validate_trace

__all__ = [
    "WitnessError",
    "WitnessExtractionError",
    "WitnessValidationError",
    "WitnessStep",
    "WitnessTrace",
    "WitnessExtractor",
    "validate_trace",
]
