"""Replay validation of witness traces through the explicit semantics.

Every extracted trace is driven step by step through
:class:`~repro.baselines.semantics.ExplicitContext` — the same transition
relation the BEBOP baseline executes — with a frame stack for calls and
returns.  A step that no CFG edge can produce, a call/return mismatch, or a
final state outside the target locations raises
:class:`~repro.witness.trace.WitnessValidationError`; the symbolic verdict
is unchanged either way, a failed validation only withholds the trace.

As a side effect of a successful replay every step is annotated with the
source statement of the CFG edge that produced it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..baselines.semantics import ExplicitContext
from ..boolprog.cfg import ProgramCfg
from .trace import (
    WitnessTrace,
    WitnessValidationError,
    format_call_edge,
    format_internal_edge,
    format_return_edge,
)

__all__ = ["validate_trace"]


def _locals_tuple(cfg, procedure: str, named) -> Tuple[bool, ...]:
    proc_cfg = cfg.procedure_cfg(procedure)
    slots = sorted(proc_cfg.slot_of.items(), key=lambda item: item[1])
    missing = [name for name, _ in slots if name not in named]
    if missing:
        raise WitnessValidationError(
            f"step omits locals {missing} of procedure {procedure!r}"
        )
    values = [False] * (max((slot for _, slot in slots), default=-1) + 1)
    for name, slot in slots:
        values[slot] = bool(named[name])
    return tuple(values)


def _globals_tuple(cfg, named) -> Tuple[bool, ...]:
    names = cfg.program.globals
    missing = [name for name in names if name not in named]
    if missing:
        raise WitnessValidationError(f"step omits globals {missing}")
    return tuple(bool(named[name]) for name in names)


def validate_trace(
    cfg: ProgramCfg,
    trace: WitnessTrace,
    target_locations: Sequence[Tuple[int, int]],
) -> WitnessTrace:
    """Replay ``trace`` through the explicit semantics; raise on any mismatch.

    Returns the same trace with ``validated`` set and every step annotated
    with the statement of the CFG edge that matched it.
    """
    context = ExplicitContext(cfg)
    program = cfg.program
    steps = trace.steps
    if not steps:
        raise WitnessValidationError("empty trace")

    first = steps[0]
    main_cfg = cfg.procedure_cfg(program.main)
    if first.kind != "start":
        raise WitnessValidationError(f"trace starts with a {first.kind!r} step")
    if first.procedure != program.main or first.pc != main_cfg.entry:
        raise WitnessValidationError(
            f"trace starts at {first.procedure}:{first.pc}, "
            f"not at {program.main}:{main_cfg.entry}"
        )
    procedure = program.main
    pc = main_cfg.entry
    locals_ = _locals_tuple(cfg, procedure, first.locals)
    globals_ = _globals_tuple(cfg, first.globals)
    if locals_ != context.initial_locals(procedure) or globals_ != context.initial_globals():
        raise WitnessValidationError("trace does not start in the initial state")
    first.statement = f"start of {program.main}"
    # Call stack: (caller procedure, call edge, caller locals at the call).
    stack: List[Tuple[str, object, Tuple[bool, ...]]] = []

    for position, step in enumerate(steps[1:], start=1):
        if step.kind == "internal":
            if step.procedure != procedure:
                raise WitnessValidationError(
                    f"step {position}: internal move changes procedure "
                    f"{procedure!r} -> {step.procedure!r}"
                )
            want_locals = _locals_tuple(cfg, procedure, step.locals)
            want_globals = _globals_tuple(cfg, step.globals)
            proc_cfg = cfg.procedure_cfg(procedure)
            matched = None
            for edge in proc_cfg.internal_edges:
                if edge.source != pc or edge.target != step.pc:
                    continue
                for next_locals, next_globals in context.internal_successors(
                    procedure, edge, locals_, globals_
                ):
                    if next_locals == want_locals and next_globals == want_globals:
                        matched = edge
                        break
                if matched is not None:
                    break
            if matched is None:
                raise WitnessValidationError(
                    f"step {position}: no internal edge of {procedure!r} produces "
                    f"pc {pc} -> {step.pc} with the claimed valuation"
                )
            step.statement = format_internal_edge(matched)
            pc, locals_, globals_ = step.pc, want_locals, want_globals
        elif step.kind == "call":
            want_locals = _locals_tuple(cfg, step.procedure, step.locals)
            want_globals = _globals_tuple(cfg, step.globals)
            if want_globals != globals_:
                raise WitnessValidationError(
                    f"step {position}: call into {step.procedure!r} changes globals"
                )
            callee_cfg = cfg.procedure_cfg(step.procedure)
            if step.pc != callee_cfg.entry:
                raise WitnessValidationError(
                    f"step {position}: call lands at pc {step.pc}, "
                    f"not at the entry of {step.procedure!r}"
                )
            proc_cfg = cfg.procedure_cfg(procedure)
            matched = None
            for edge in proc_cfg.call_edges:
                if edge.source != pc or edge.callee != step.procedure:
                    continue
                for entry_locals in context.call_entry_locals(
                    procedure, edge, locals_, globals_
                ):
                    if entry_locals == want_locals:
                        matched = edge
                        break
                if matched is not None:
                    break
            if matched is None:
                raise WitnessValidationError(
                    f"step {position}: no call edge of {procedure!r} at pc {pc} "
                    f"enters {step.procedure!r} with the claimed valuation"
                )
            step.statement = format_call_edge(matched)
            stack.append((procedure, matched, locals_))
            procedure = step.procedure
            pc, locals_, globals_ = callee_cfg.entry, want_locals, want_globals
        elif step.kind == "return":
            if not stack:
                raise WitnessValidationError(
                    f"step {position}: return with an empty call stack"
                )
            exit_pc = cfg.procedure_cfg(procedure).exit
            if pc != exit_pc:
                raise WitnessValidationError(
                    f"step {position}: return from {procedure!r} at pc {pc}, "
                    f"not at its exit {exit_pc}"
                )
            caller, edge, caller_locals = stack.pop()
            if step.procedure != caller or step.pc != edge.return_pc:
                raise WitnessValidationError(
                    f"step {position}: return lands at {step.procedure}:{step.pc}, "
                    f"expected {caller}:{edge.return_pc}"
                )
            next_locals, next_globals = context.apply_return(
                caller, edge, caller_locals, locals_, globals_
            )
            want_locals = _locals_tuple(cfg, caller, step.locals)
            want_globals = _globals_tuple(cfg, step.globals)
            if next_locals != want_locals or next_globals != want_globals:
                raise WitnessValidationError(
                    f"step {position}: return valuation does not match "
                    f"the call at {caller}:{edge.source}"
                )
            step.statement = format_return_edge(edge, procedure)
            procedure = caller
            pc, locals_, globals_ = edge.return_pc, next_locals, next_globals
        else:
            raise WitnessValidationError(
                f"step {position}: unknown step kind {step.kind!r}"
            )

    final = (cfg.module_of(procedure), pc)
    if final not in {tuple(loc) for loc in target_locations}:
        raise WitnessValidationError(
            f"trace ends at {procedure}:{pc}, which is not a target location"
        )
    trace.validated = True
    return trace
