"""Symbolic witness extraction from retained summary interpretations.

The extractor re-derives the *entry-forward* least fixed point (Section 4.2
of the paper) in explicit Kleene layers ``L[0] = FALSE``, ``L[k+1] =
F(L[k])`` over the session's retained base interpretations, then walks one
step at a time *backward* through the layers: a pair ``(u, v)`` that first
appears in layer ``k`` was produced by one of the entry-forward clauses from
pairs in layer ``k - 1``, and restricting the clause body to the concrete
pair leaves a satisfiable BDD over the intermediate states from which the
deterministic :meth:`~repro.bdd.BddManager.pick_cube` kernel primitive picks
one witness.  Ranks strictly decrease along the walk, so it terminates, and
every picked state satisfies the domain constraints of its sort.

All three sequential algorithms feed the same extractor: their solved
relations select a reachable ``(entry, target)`` pair (Theorems 2 and 3
relate ``Summary``/``ReachEntry`` and ``SummaryEFopt`` to the entry-forward
relation), and the layer walk itself only uses the base program templates.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..boolprog.cfg import ProgramCfg
from ..fixedpoint import And, BOOL, Eq, Exists, Or, RelationDecl, Var
from .trace import WitnessExtractionError, WitnessStep, WitnessTrace

__all__ = ["WitnessExtractor"]

# The moves of the entry-forward fixed point, keyed by the clause that
# produced the new pair.  ``picks`` names the existential variables whose
# witnesses the backward walk recovers from the clause body.
_INTERNAL = "internal"
_CALL = "call"
_ENTRY = "entry"


class WitnessExtractor:
    """Backward trace extraction over a session's symbolic backend.

    The extractor allocates in the session's own BDD manager (so the solved
    interpretations stay valid handles) and GC-pins everything it keeps
    across calls — the Kleene layers and the per-layer clause bodies — via
    the backend's retain counts.  :meth:`close` releases them all.
    """

    def __init__(self, backend, templates, cfg: ProgramCfg) -> None:
        self.backend = backend
        self.manager = backend.manager
        self.context = backend.context
        self.templates = templates
        self.cfg = cfg
        self.space = templates.space
        state = self.space.state_sort
        self.state_sort = state
        self.decls = templates.decls
        self.base_interps: Dict[str, int] = templates.interps()
        self.u = Var("u", state)
        self.v = Var("v", state)
        self.x = Var("x", state)
        self.y = Var("y", state)
        self.z = Var("z", state)
        u, v, x, y, z = self.u, self.v, self.x, self.y, self.z

        ProgramInt = self.decls["ProgramInt"]
        IntoCall = self.decls["IntoCall"]
        Return = self.decls["Return"]
        Entry = self.decls["Entry"]
        Exit = self.decls["Exit"]
        Init = self.decls["Init"]
        S = RelationDecl("SummaryEF", [("u", state), ("v", state)])

        # The entry-forward operator (mirrors algorithms/entry_forward.py).
        self._ef_body = Or(
            And(Entry(u.mod, u.pc), Eq(u, v), Init(u)),
            Exists(x, And(S(u, x), ProgramInt(x, v))),
            Exists([x, y], And(S(x, y), IntoCall(y, u), Eq(u, v))),
            Exists(
                [x, y, z],
                And(S(u, x), IntoCall(x, y), S(y, z), Exit(z.mod, z.pc), Return(x, z, v)),
            ),
        )
        # Open clause bodies for the backward walk (no existentials: the
        # walk needs the intermediate-state witnesses, not their projection).
        self._clauses = {
            _INTERNAL: (And(S(u, x), ProgramInt(x, v)), (x,)),
            _CALL: (
                And(S(u, x), IntoCall(x, y), S(y, z), Exit(z.mod, z.pc), Return(x, z, v)),
                (x, y, z),
            ),
            _ENTRY: (And(S(x, y), IntoCall(y, u)), (x, y)),
        }
        self._initial = And(Entry(u.mod, u.pc), Init(u))

        self._module_name = {index: name for name, index in templates.module_index.items()}
        self._layers: List[int] = []
        self._clause_cache: Dict[Tuple[str, int], int] = {}
        self._init_node: Optional[int] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release every GC-pinned node the extractor holds."""
        if self._closed:
            return
        self._closed = True
        for node in self._clause_cache.values():
            self.backend.release(node)
        self._clause_cache.clear()
        for node in self._layers[1:]:
            self.backend.release(node)
        self._layers = []
        if self._init_node is not None:
            self.backend.release(self._init_node)
            self._init_node = None

    # ------------------------------------------------------------------
    # The public entry point
    # ------------------------------------------------------------------
    def extract(
        self,
        algorithm: str,
        solved_interps: Mapping[str, int],
        target_node: int,
        target_locations: Sequence[Tuple[int, int]],
    ) -> Optional[WitnessTrace]:
        """Extract a trace for ``algorithm``'s solved relations, or ``None``.

        ``None`` means the target is unreachable under the solved
        interpretations — extraction never flips a verdict.  A reachable
        pair that cannot be walked back raises
        :class:`~repro.witness.trace.WitnessExtractionError`.
        """
        mgr = self.manager
        interps = dict(self.base_interps)
        interps.update(solved_interps)
        interps["Target"] = target_node
        node = self.backend.eval_formula(self._pair_formula(algorithm), interps)
        node = mgr.and_(node, self.context.domain_constraint(self.u))
        node = mgr.and_(node, self.context.domain_constraint(self.v))
        if node == mgr.FALSE:
            return None
        picked = self._pick(node, {}, (self.u, self.v))
        assert picked is not None
        u_val, v_val = picked
        self._ensure_layers()
        steps = self._entry_steps(u_val) + self._path_steps(u_val, v_val)
        return WitnessTrace(
            algorithm=algorithm,
            target=[(module, pc) for module, pc in target_locations],
            steps=steps,
        )

    # ------------------------------------------------------------------
    # Pair selection per algorithm
    # ------------------------------------------------------------------
    def _pair_formula(self, algorithm: str):
        state = self.state_sort
        u, v = self.u, self.v
        Target = self.decls["Target"]
        if algorithm == "summary":
            Summary = RelationDecl("Summary", [("u", state), ("v", state)])
            ReachEntry = RelationDecl("ReachEntry", [("u", state)])
            return And(ReachEntry(u), Summary(u, v), Target(v.mod, v.pc))
        if algorithm == "ef":
            S = RelationDecl("SummaryEF", [("u", state), ("v", state)])
            return And(S(u, v), Target(v.mod, v.pc))
        if algorithm == "ef-opt":
            S = RelationDecl(
                "SummaryEFopt", [("fr", BOOL), ("u", state), ("v", state)]
            )
            return And(S(True, u, v), Target(v.mod, v.pc))
        raise WitnessExtractionError(
            f"no witness extraction for algorithm {algorithm!r}"
        )

    # ------------------------------------------------------------------
    # Kleene layers of the entry-forward operator
    # ------------------------------------------------------------------
    def _ensure_layers(self) -> List[int]:
        if self._layers:
            return self._layers
        mgr = self.manager
        layers = [mgr.FALSE]
        interps = dict(self.base_interps)
        while True:
            interps["SummaryEF"] = layers[-1]
            node = self.backend.eval_formula(self._ef_body, interps)
            if node == layers[-1]:
                break
            self.backend.retain(node)
            layers.append(node)
        self._layers = layers
        self._init_node = self.backend.retain(
            self.backend.eval_formula(self._initial, self.base_interps)
        )
        return layers

    def _clause_node(self, kind: str, k: int) -> int:
        """The clause body at layer ``k`` (domain-constrained picks), pinned."""
        key = (kind, k)
        node = self._clause_cache.get(key)
        if node is None:
            formula, picks = self._clauses[kind]
            interps = dict(self.base_interps)
            # The entry clause asks for callers *in* layer k; the step
            # clauses ask how a layer-k pair arose from layer k - 1.
            interps["SummaryEF"] = self._layers[k if kind == _ENTRY else k - 1]
            node = self.backend.eval_formula(formula, interps)
            for var in picks:
                node = self.manager.and_(node, self.context.domain_constraint(var))
            self.backend.retain(node)
            self._clause_cache[key] = node
        return node

    # ------------------------------------------------------------------
    # Cube picking and state plumbing
    # ------------------------------------------------------------------
    def _bits(self, var: Var, value) -> Dict[str, bool]:
        return dict(zip(var.bit_names(), self.state_sort.encode(value)))

    def _same(self, a, b) -> bool:
        return self.state_sort.canonical(a) == self.state_sort.canonical(b)

    def _pick(self, node: int, pins: Dict[str, bool], picks: Sequence[Var]):
        mgr = self.manager
        restricted = mgr.restrict(node, pins) if pins else node
        if restricted == mgr.FALSE:
            return None
        names: List[str] = []
        for var in picks:
            names.extend(var.bit_names())
        cube = mgr.pick_cube(restricted, names)
        named = {mgr.var_name(index): value for index, value in cube.items()}
        return tuple(self.context.decode_assignment(var, named) for var in picks)

    def _rank(self, u_val, v_val) -> int:
        bits = {**self._bits(self.u, u_val), **self._bits(self.v, v_val)}
        mgr = self.manager
        for k, layer in enumerate(self._layers):
            if layer != mgr.FALSE and mgr.eval(layer, bits):
                return k
        raise WitnessExtractionError(
            "selected summary pair is outside the entry-forward fixed point"
        )

    def _is_initial(self, u_val) -> bool:
        assert self._init_node is not None
        return self.manager.eval(self._init_node, self._bits(self.u, u_val))

    def _step(self, kind: str, value) -> WitnessStep:
        fields = self.state_sort.as_dict(value)
        module = int(fields["mod"])
        pc = int(fields["pc"])
        procedure = self._module_name.get(module)
        if procedure is None:
            raise WitnessExtractionError(f"picked state has no procedure (module {module})")
        proc_cfg = self.cfg.procedure_cfg(procedure)
        locals_bits = self.space.locals_sort.as_dict(fields["L"])
        locals_named = {
            name: bool(locals_bits[self.space.local_field(slot)])
            for name, slot in sorted(proc_cfg.slot_of.items(), key=lambda item: item[1])
        }
        globals_bits = self.space.globals_sort.as_dict(fields["G"])
        globals_named = {name: bool(globals_bits[name]) for name in self.space.global_names}
        return WitnessStep(
            kind=kind,
            procedure=procedure,
            pc=pc,
            locals=locals_named,
            globals=globals_named,
        )

    # ------------------------------------------------------------------
    # The backward walks
    # ------------------------------------------------------------------
    def _path_steps(self, from_val, to_val) -> List[WitnessStep]:
        """Steps of a same-procedure summary path from ``from_val`` (excluded)
        to ``to_val`` (included), recursing through calls."""
        out: List[WitnessStep] = []
        # Explicit work stack (LIFO): path segments expand, emits append.
        work: List[Tuple] = [("path", from_val, to_val)]
        while work:
            item = work.pop()
            if item[0] == "emit":
                out.append(item[1])
                continue
            _, a, b = item
            if self._same(a, b):
                continue
            k = self._rank(a, b)
            pins = {**self._bits(self.u, a), **self._bits(self.v, b)}
            picked = self._pick(self._clause_node(_INTERNAL, k), pins, (self.x,))
            if picked is not None:
                (x_val,) = picked
                work.append(("emit", self._step("internal", b)))
                work.append(("path", a, x_val))
                continue
            picked = self._pick(self._clause_node(_CALL, k), pins, (self.x, self.y, self.z))
            if picked is None:
                raise WitnessExtractionError(
                    "no entry-forward clause explains a summary pair "
                    f"(rank {k}, {self._step('internal', b).procedure})"
                )
            x_val, y_val, z_val = picked
            work.append(("emit", self._step("return", b)))
            work.append(("path", y_val, z_val))
            work.append(("emit", self._step("call", y_val)))
            work.append(("path", a, x_val))
        return out

    def _entry_steps(self, entry_val) -> List[WitnessStep]:
        """Steps from the program's initial state up to ``entry_val``
        (included), following the call chain that made the entry reachable."""
        segments: List[Tuple] = []
        current = entry_val
        while not self._is_initial(current):
            picked = None
            pins = self._bits(self.u, current)
            for j in range(len(self._layers)):
                picked = self._pick(self._clause_node(_ENTRY, j), pins, (self.x, self.y))
                if picked is not None:
                    break
            if picked is None:
                raise WitnessExtractionError(
                    "no caller found for a non-initial reachable entry"
                )
            x_val, y_val = picked
            segments.append((x_val, y_val, current))
            current = x_val
        steps = [self._step("start", current)]
        for x_val, y_val, entry in reversed(segments):
            steps.extend(self._path_steps(x_val, y_val))
            steps.append(self._step("call", entry))
        return steps
