"""Static pre-analysis: dataflow passes and linting over Boolean programs.

See :mod:`repro.analysis.passes` for the optimizer (liveness, constants,
slicing, pruning — composed by :func:`optimize`) and
:mod:`repro.analysis.lint` for the diagnostics built on the same machinery.
"""

from .lint import LintFinding, lint_program
from .passes import (
    PassReport,
    eliminate_dead,
    fold_constants,
    fold_expr,
    normalise_slice_targets,
    optimize,
    prune_branches,
    prune_unreachable,
    slice_to_targets,
)

__all__ = [
    "LintFinding",
    "lint_program",
    "PassReport",
    "optimize",
    "fold_constants",
    "eliminate_dead",
    "prune_branches",
    "slice_to_targets",
    "prune_unreachable",
    "fold_expr",
    "normalise_slice_targets",
]
