"""Pre-analysis diagnostics: the pass manager doubled as a program linter.

:func:`lint_program` runs the same static machinery the optimizer uses
(reachability closure, relevance closure, constant folding) in *reporting*
mode: instead of rewriting the program it emits structured findings —
unreachable procedures and statements, dead writes, ``assume(F)`` blocks,
constant branch conditions and always-False reads.  The CLI ``lint``
subcommand and the daemon's ``lint`` op serialise the findings as JSON and
map "any findings" to exit code 1 (see :mod:`repro.frontends.cli`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Union

from ..boolprog import parse_program
from ..boolprog.ast import (
    Assert,
    Assign,
    Assume,
    CallAssign,
    If,
    Lit,
    Program,
    Stmt,
    While,
)
from ..boolprog.typecheck import check_program
from .passes import (
    _stops_execution,
    _walk_statements,
    call_closure,
    constant_false_keys,
    fold_expr,
    relevant_keys,
)

__all__ = ["LintFinding", "lint_program"]


@dataclass(frozen=True)
class LintFinding:
    """One diagnostic: a stable code, the procedure it concerns, a message."""

    code: str
    procedure: str
    message: str
    severity: str = "warning"

    def to_dict(self) -> Dict[str, str]:
        return {
            "code": self.code,
            "procedure": self.procedure,
            "message": self.message,
            "severity": self.severity,
        }


def _describe(statement: Stmt) -> str:
    kind = type(statement).__name__.lower()
    if statement.label is not None:
        return f"{kind} (label {statement.label!r})"
    return kind


def lint_program(program: Union[str, Program], name: str = "<input>") -> List[LintFinding]:
    """Static diagnostics for one program (parsed if given as source)."""
    if not isinstance(program, Program):
        program = parse_program(program, name=name)
    check_program(program)
    findings: List[LintFinding] = []

    # Unreachable procedures (never transitively called from main).
    reachable = call_closure(program)
    for proc_name in program.procedures:
        if proc_name not in reachable:
            findings.append(
                LintFinding(
                    code="unreachable-procedure",
                    procedure=proc_name,
                    message=f"procedure {proc_name!r} is never called from "
                    f"{program.main!r}",
                )
            )

    # Variable-level findings from the optimizer's closures.
    relevant = relevant_keys(program)
    const_false = constant_false_keys(program)
    for global_name in program.globals:
        if ("", global_name) not in relevant:
            findings.append(
                LintFinding(
                    code="dead-variable",
                    procedure="",
                    message=f"global {global_name!r} never influences control "
                    "flow (writes to it are dead)",
                )
            )
    for proc_name, proc in program.procedures.items():
        for local in proc.all_locals():
            if (proc_name, local) not in relevant:
                findings.append(
                    LintFinding(
                        code="dead-variable",
                        procedure=proc_name,
                        message=f"variable {local!r} never influences control "
                        "flow (writes to it are dead)",
                    )
                )

    written: Set[str] = set()
    for proc in program.procedures.values():
        for statement in _walk_statements(proc.body):
            if isinstance(statement, Assign):
                written.update(
                    t if t in program.globals else f"{proc.name}:{t}"
                    for t in statement.targets
                )
            elif isinstance(statement, CallAssign):
                written.update(
                    t if t in program.globals else f"{proc.name}:{t}"
                    for t in statement.targets
                )

    # Statement-level findings.
    for proc_name, proc in program.procedures.items():
        local_names = set(proc.all_locals())
        for statement in _walk_statements(proc.body):
            if isinstance(statement, Assign):
                for target in statement.targets:
                    key = (
                        ("", target)
                        if target not in local_names
                        else (proc_name, target)
                    )
                    if key not in relevant:
                        findings.append(
                            LintFinding(
                                code="dead-write",
                                procedure=proc_name,
                                message=f"assignment to {target!r} is dead "
                                "(the value never influences control flow)",
                            )
                        )
            if isinstance(statement, Assume):
                folded = fold_expr(statement.condition)
                if folded == Lit(False):
                    findings.append(
                        LintFinding(
                            code="assume-false",
                            procedure=proc_name,
                            message="assume(F): execution never continues past "
                            "this statement",
                        )
                    )
            if isinstance(statement, (If, While)):
                folded = fold_expr(statement.condition)
                if isinstance(folded, Lit):
                    findings.append(
                        LintFinding(
                            code="constant-condition",
                            procedure=proc_name,
                            message=f"{_describe(statement)} condition is "
                            f"constantly {folded}",
                        )
                    )
            if isinstance(statement, (If, While, Assume, Assert)):
                for var in sorted(statement.condition.variables()):
                    key = ("", var) if var not in local_names else (proc_name, var)
                    written_key = var if var not in local_names else f"{proc_name}:{var}"
                    if key in const_false and written_key not in written:
                        findings.append(
                            LintFinding(
                                code="always-false-read",
                                procedure=proc_name,
                                message=f"{var!r} is read in a condition but "
                                "never assigned a non-F value (variables "
                                "initialise to F)",
                            )
                        )

        # Unreachable statements after return/goto/assume(F) in a block.
        findings.extend(_unreachable_code(proc_name, proc.body))
    seen: Set[LintFinding] = set()
    unique: List[LintFinding] = []
    for finding in findings:
        if finding not in seen:
            seen.add(finding)
            unique.append(finding)
    return unique


def _unreachable_code(proc_name: str, statements: List[Stmt]) -> List[LintFinding]:
    findings: List[LintFinding] = []
    dead = False
    for statement in statements:
        if dead and statement.label is None:
            findings.append(
                LintFinding(
                    code="unreachable-code",
                    procedure=proc_name,
                    message=f"{_describe(statement)} is unreachable (follows a "
                    "statement that never falls through)",
                )
            )
            continue
        if dead and statement.label is not None:
            dead = False
        if isinstance(statement, If):
            findings.extend(_unreachable_code(proc_name, statement.then_branch))
            findings.extend(_unreachable_code(proc_name, statement.else_branch))
        elif isinstance(statement, While):
            findings.extend(_unreachable_code(proc_name, statement.body))
        if _stops_execution(statement):
            dead = True
    return findings
