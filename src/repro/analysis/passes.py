"""Static dataflow passes over Boolean programs (pre-analysis, PR 9).

The fixed-point engines pay for every variable the encoder declares — each
global or local slot is a BDD level in every frame constraint — and for every
program location the Kleene iteration revisits.  The passes here shrink the
program *before* encoding, as a source-to-source ``Program -> Program``
rewrite, the way the Bebop/Moped frontends did:

* :func:`fold_constants` — constant propagation with ``assume``/``assert``
  condition strengthening.  A greatest-fixpoint finds variables that are
  constantly ``False`` (every variable starts ``False``; a variable stays
  in the set while every write to it is provably ``False``), a local
  flow-sensitive pass tracks literal values through straight-line code, and
  every read of a known variable is replaced by its literal.  Expressions
  are algebraically folded throughout.
* :func:`eliminate_dead` — interprocedural live-variable analysis.  The
  verdict of a reachability query depends only on control flow, so the
  *relevant* variables are the backward closure of the branch/``assume``/
  ``assert`` condition variables under assignment, parameter and
  return-value dependency edges.  Everything else is deleted: declarations,
  dead parameters (and the matching arguments at every call site), dead
  return indexes (and the matching call-assignment targets), and every
  write to a dead variable.  A flow-sensitive dead-store elimination then
  drops writes that are re-written before any read.
* :func:`prune_branches` — removes statically decided branches
  (``if (T)``, ``while (F)``) and code made unreachable by
  ``assume(F)``/``return``/``goto``.
* :func:`slice_to_targets` — target-directed slicing: given the query's
  target specs, deletes statements and regions from which no execution can
  reach any target.
* :func:`prune_unreachable` — drops procedures not transitively callable
  from ``main``.

:func:`optimize` composes them, returning the rewritten program and a
:class:`PassReport`.  The first two passes are *pc-stable*: the CFG assigns
program counters by statement structure only (one pc per simple statement,
independent of assignment or call arity), so replacing a dead assignment by
``skip`` or rewriting an expression never renumbers locations and numeric
``(module, pc)`` targets stay valid.  The last three are *structural* —
they renumber pcs and module indexes — so they only run at level 2, and
callers holding numeric targets must cap the level at 1 (see
:attr:`PassReport.pc_stable`).

Soundness invariants shared by every pass:

* labelled statements, ``assert``, ``return`` and ``goto`` statements are
  never deleted (labels are ``goto`` and query targets; asserts define the
  error locations; ``return``/``goto`` redirect control);
* deleting a statement may only *add* executions that fall through to its
  continuation, so statements are deleted only when their continuation
  provably cannot reach a target;
* ``main`` is always kept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..boolprog.ast import (
    Assert,
    Assign,
    Assume,
    BinOp,
    Call,
    CallAssign,
    Expr,
    Goto,
    If,
    Lit,
    Nondet,
    NotE,
    Procedure,
    Program,
    Return,
    Skip,
    Stmt,
    VarRef,
    While,
)
from ..boolprog.cfg import RETURN_SLOT_PREFIX
from ..boolprog.typecheck import check_program

__all__ = [
    "PassReport",
    "optimize",
    "fold_constants",
    "eliminate_dead",
    "prune_branches",
    "slice_to_targets",
    "prune_unreachable",
    "fold_expr",
    "normalise_slice_targets",
]

#: A variable key: ``("", name)`` for globals, ``(proc, name)`` for locals,
#: parameters and the synthetic ``__ret<i>`` return slots of a procedure.
VarKey = Tuple[str, str]


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------
@dataclass
class PassReport:
    """What the pass pipeline did to one program (carried into results)."""

    level: int = 0
    rounds: int = 0
    #: ``proc:name`` / ``name`` labels of deleted locals and globals.
    variables_removed: List[str] = field(default_factory=list)
    statements_deleted: int = 0
    #: Dead pairs dropped from (call-)assignments without deleting the
    #: statement (pc-stable).
    assignments_dropped: int = 0
    #: Expressions rewritten by folding/substitution, plus ``assume(T)``
    #: statements relaxed to ``skip``.
    statements_simplified: int = 0
    branches_pruned: int = 0
    procedures_dropped: List[str] = field(default_factory=list)
    #: The target specs the program was sliced for (``None``: not sliced).
    sliced_for: Optional[Tuple[str, ...]] = None
    #: Number of changes made by structural (pc-renumbering) passes; numeric
    #: ``(module, pc)`` targets resolved against the raw program are only
    #: valid while this is 0.
    structural_changes: int = 0
    #: Set when the pipeline crashed and the caller fell back to the raw
    #: program (the exception's repr).
    failed: Optional[str] = None

    @property
    def pc_stable(self) -> bool:
        return self.structural_changes == 0

    def changes(self) -> int:
        """Total rewrite count (the driver's fixpoint metric)."""
        return (
            len(self.variables_removed)
            + self.statements_deleted
            + self.assignments_dropped
            + self.statements_simplified
            + self.branches_pruned
            + len(self.procedures_dropped)
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "rounds": self.rounds,
            "variables_removed": list(self.variables_removed),
            "statements_deleted": self.statements_deleted,
            "assignments_dropped": self.assignments_dropped,
            "statements_simplified": self.statements_simplified,
            "branches_pruned": self.branches_pruned,
            "procedures_dropped": list(self.procedures_dropped),
            "sliced_for": list(self.sliced_for) if self.sliced_for else None,
            "pc_stable": self.pc_stable,
            "failed": self.failed,
        }


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------
def _local_names(procedure: Procedure) -> Set[str]:
    return set(procedure.all_locals())


def _key(program: Program, proc: Procedure, name: str) -> VarKey:
    if name in _local_names(proc):
        return (proc.name, name)
    return ("", name)


def _var_label(key: VarKey) -> str:
    return key[1] if key[0] == "" else f"{key[0]}:{key[1]}"


def _ret_key(proc_name: str, index: int) -> VarKey:
    return (proc_name, f"{RETURN_SLOT_PREFIX}{index}")


def _walk_statements(statements: Iterable[Stmt]) -> Iterable[Stmt]:
    """Every statement in a block, depth first."""
    for statement in statements:
        yield statement
        if isinstance(statement, If):
            yield from _walk_statements(statement.then_branch)
            yield from _walk_statements(statement.else_branch)
        elif isinstance(statement, While):
            yield from _walk_statements(statement.body)


def _contains(statements: Sequence[Stmt], kinds: tuple) -> bool:
    return any(isinstance(s, kinds) for s in _walk_statements(statements))


def _has_label(statements: Sequence[Stmt]) -> bool:
    return any(s.label is not None for s in _walk_statements(statements))


def _deletable(statement: Stmt) -> bool:
    """May ``statement`` be deleted outright?

    Labels are goto/query targets, asserts define error locations, and
    ``return``/``goto`` redirect control — all must survive every pass.
    """
    return not _has_label([statement]) and not _contains(
        [statement], (Assert, Return, Goto)
    )


def _expr_deterministic(expression: Expr) -> bool:
    if isinstance(expression, Nondet):
        return False
    if isinstance(expression, NotE):
        return _expr_deterministic(expression.operand)
    if isinstance(expression, BinOp):
        return _expr_deterministic(expression.left) and _expr_deterministic(
            expression.right
        )
    return True


def fold_expr(expression: Expr) -> Expr:
    """Algebraically simplify one expression (bottom-up, semantics-exact).

    Identical-subtree rules (``e & e -> e`` ...) apply only to deterministic
    subtrees: two occurrences of ``*`` may evaluate differently.
    """
    if isinstance(expression, NotE):
        operand = fold_expr(expression.operand)
        if isinstance(operand, Lit):
            return Lit(not operand.value)
        if isinstance(operand, NotE):
            return operand.operand
        return NotE(operand) if operand is not expression.operand else expression
    if not isinstance(expression, BinOp):
        return expression
    left = fold_expr(expression.left)
    right = fold_expr(expression.right)
    op = expression.op
    if isinstance(left, Lit) and isinstance(right, Lit):
        return Lit(_apply_op(op, left.value, right.value))
    for lit, other in ((left, right), (right, left)):
        if not isinstance(lit, Lit):
            continue
        if op == "&":
            return other if lit.value else Lit(False)
        if op == "|":
            return Lit(True) if lit.value else other
        if op in ("^", "!="):
            return fold_expr(NotE(other)) if lit.value else other
        if op == "==":
            return other if lit.value else fold_expr(NotE(other))
    if left == right and _expr_deterministic(left):
        if op in ("&", "|"):
            return left
        if op in ("^", "!="):
            return Lit(False)
        if op == "==":
            return Lit(True)
    if left is expression.left and right is expression.right:
        return expression
    return BinOp(op, left, right)


def _apply_op(op: str, left: bool, right: bool) -> bool:
    if op == "&":
        return left and right
    if op == "|":
        return left or right
    if op in ("^", "!="):
        return left != right
    if op == "==":
        return left == right
    raise ValueError(f"unknown operator {op!r}")


def _eval3(
    expression: Expr, proc: Procedure, program: Program, const_false: Set[VarKey]
) -> Optional[bool]:
    """Three-valued evaluation under "these variables are constantly F"."""
    if isinstance(expression, Lit):
        return expression.value
    if isinstance(expression, Nondet):
        return None
    if isinstance(expression, VarRef):
        if _key(program, proc, expression.name) in const_false:
            return False
        return None
    if isinstance(expression, NotE):
        value = _eval3(expression.operand, proc, program, const_false)
        return None if value is None else not value
    if isinstance(expression, BinOp):
        left = _eval3(expression.left, proc, program, const_false)
        right = _eval3(expression.right, proc, program, const_false)
        op = expression.op
        if op == "&":
            if left is False or right is False:
                return False
            if left is True and right is True:
                return True
            return None
        if op == "|":
            if left is True or right is True:
                return True
            if left is False and right is False:
                return False
            return None
        if left is None or right is None:
            return None
        return _apply_op(op, left, right)
    raise ValueError(f"cannot evaluate {expression!r}")


def call_sites(program: Program) -> Iterable[Tuple[Procedure, Stmt]]:
    """All (caller, call statement) pairs of a program."""
    for proc in program.procedures.values():
        for statement in _walk_statements(proc.body):
            if isinstance(statement, (Call, CallAssign)):
                yield proc, statement


def call_closure(program: Program, roots: Optional[Iterable[str]] = None) -> Set[str]:
    """Procedure names transitively callable from ``roots`` (default: main)."""
    seen: Set[str] = set()
    frontier = [program.main] if roots is None else list(roots)
    while frontier:
        name = frontier.pop()
        if name in seen or name not in program.procedures:
            continue
        seen.add(name)
        for statement in _walk_statements(program.procedures[name].body):
            if isinstance(statement, (Call, CallAssign)):
                frontier.append(statement.callee)
    return seen


# ---------------------------------------------------------------------------
# Pass 1: constant propagation / assume-aware folding (pc-stable)
# ---------------------------------------------------------------------------
def constant_false_keys(program: Program) -> Set[VarKey]:
    """Greatest fixpoint of "this variable is constantly False".

    Every variable (and return slot) starts ``False``; a key stays in the
    set while every write to it provably evaluates to ``False`` under the
    current set: assignments, call-assignment targets (via the callee's
    return-slot constancy), parameters (via every call site's argument) and
    return slots (via every ``return`` statement's value).
    """
    const_false: Set[VarKey] = {("", name) for name in program.globals}
    for proc in program.procedures.values():
        for name in proc.all_locals():
            const_false.add((proc.name, name))
        for index in range(proc.num_returns):
            const_false.add(_ret_key(proc.name, index))
    changed = True
    while changed:
        changed = False

        def demote(key: VarKey) -> None:
            nonlocal changed
            if key in const_false:
                const_false.discard(key)
                changed = True

        for proc in program.procedures.values():
            for statement in _walk_statements(proc.body):
                if isinstance(statement, Assign):
                    for target, value in zip(statement.targets, statement.values):
                        if _eval3(value, proc, program, const_false) is not False:
                            demote(_key(program, proc, target))
                elif isinstance(statement, CallAssign):
                    for index, target in enumerate(statement.targets):
                        if _ret_key(statement.callee, index) not in const_false:
                            demote(_key(program, proc, target))
                elif isinstance(statement, Return):
                    for index, value in enumerate(statement.values):
                        if _eval3(value, proc, program, const_false) is not False:
                            demote(_ret_key(proc.name, index))
                if isinstance(statement, (Call, CallAssign)):
                    callee = program.procedures.get(statement.callee)
                    if callee is None:
                        continue
                    for param, argument in zip(callee.params, statement.args):
                        if _eval3(argument, proc, program, const_false) is not False:
                            demote((callee.name, param))
    return const_false


#: The flow-sensitive literal knowledge a condition establishes on its
#: true/false continuation: ``v`` / ``!v`` patterns only.
def _condition_facts(condition: Expr, holds: bool) -> Dict[str, bool]:
    if isinstance(condition, VarRef):
        return {condition.name: holds}
    if isinstance(condition, NotE) and isinstance(condition.operand, VarRef):
        return {condition.operand.name: not holds}
    return {}


class _ConstFolder:
    """Rebuilds one procedure with constant reads replaced and folded.

    ``known`` maps variable names to literal values that definitely hold at
    the current point of straight-line code; it is cleared at every point
    control may enter with unknown state (labelled statements, loop heads)
    and killed on writes and on calls (which may write any global).
    """

    def __init__(
        self, program: Program, proc: Procedure, const_false: Set[VarKey], report: PassReport
    ) -> None:
        self.program = program
        self.proc = proc
        self.const_false = const_false
        self.report = report
        self.globals = set(program.globals)

    def expr(self, expression: Expr, known: Dict[str, bool]) -> Expr:
        rewritten = self._subst(expression, known)
        folded = fold_expr(rewritten)
        if folded != expression:
            self.report.statements_simplified += 1
        return folded

    def _subst(self, expression: Expr, known: Dict[str, bool]) -> Expr:
        if isinstance(expression, VarRef):
            if _key(self.program, self.proc, expression.name) in self.const_false:
                return Lit(False)
            if expression.name in known:
                return Lit(known[expression.name])
            return expression
        if isinstance(expression, NotE):
            return NotE(self._subst(expression.operand, known))
        if isinstance(expression, BinOp):
            return BinOp(
                expression.op,
                self._subst(expression.left, known),
                self._subst(expression.right, known),
            )
        return expression

    def block(self, statements: List[Stmt], known: Dict[str, bool]) -> List[Stmt]:
        out: List[Stmt] = []
        for statement in statements:
            out.append(self.statement(statement, known))
        return out

    def _kill_call(self, known: Dict[str, bool], targets: Sequence[str] = ()) -> None:
        for name in list(known):
            if name in self.globals:
                del known[name]
        for target in targets:
            known.pop(target, None)

    def statement(self, statement: Stmt, known: Dict[str, bool]) -> Stmt:
        if statement.label is not None:
            # A goto may enter here with arbitrary state.
            known.clear()
        if isinstance(statement, Skip):
            return statement
        if isinstance(statement, Assign):
            values = [self.expr(value, known) for value in statement.values]
            for target, value in zip(statement.targets, values):
                if isinstance(value, Lit):
                    known[target] = value.value
                else:
                    known.pop(target, None)
            if values == statement.values:
                return statement
            return Assign(list(statement.targets), values, label=statement.label)
        if isinstance(statement, CallAssign):
            args = [self.expr(argument, known) for argument in statement.args]
            self._kill_call(known, statement.targets)
            if args == statement.args:
                return statement
            return CallAssign(
                list(statement.targets), statement.callee, args, label=statement.label
            )
        if isinstance(statement, Call):
            args = [self.expr(argument, known) for argument in statement.args]
            self._kill_call(known)
            if args == statement.args:
                return statement
            return Call(statement.callee, args, label=statement.label)
        if isinstance(statement, Return):
            values = [self.expr(value, known) for value in statement.values]
            known.clear()
            if values == statement.values:
                return statement
            return Return(values, label=statement.label)
        if isinstance(statement, Goto):
            known.clear()
            return statement
        if isinstance(statement, Assume):
            condition = self.expr(statement.condition, known)
            if isinstance(condition, Lit) and condition.value:
                self.report.statements_simplified += 1
                return Skip(label=statement.label)
            known.update(_condition_facts(condition, True))
            if condition == statement.condition:
                return statement
            return Assume(condition, label=statement.label)
        if isinstance(statement, Assert):
            condition = self.expr(statement.condition, known)
            # The fall-through continuation only runs when the assertion
            # held (the failing branch jumps to the error location).
            known.update(_condition_facts(condition, True))
            if condition == statement.condition:
                return statement
            return Assert(condition, label=statement.label)
        if isinstance(statement, If):
            condition = self.expr(statement.condition, known)
            known_then = dict(known)
            known_then.update(_condition_facts(condition, True))
            known_else = dict(known)
            known_else.update(_condition_facts(condition, False))
            then_branch = self.block(statement.then_branch, known_then)
            else_branch = self.block(statement.else_branch, known_else)
            known.clear()
            known.update(
                {
                    name: value
                    for name, value in known_then.items()
                    if known_else.get(name) is value
                }
            )
            if (
                condition == statement.condition
                and then_branch == statement.then_branch
                and else_branch == statement.else_branch
            ):
                return statement
            return If(condition, then_branch, else_branch, label=statement.label)
        if isinstance(statement, While):
            # The loop head joins the entry and the back edge: no carried
            # facts.  The body always follows a true evaluation of the
            # (re-checked) condition; the exit a false one.
            known.clear()
            condition = self.expr(statement.condition, known)
            body_known = _condition_facts(condition, True)
            body = self.block(statement.body, body_known)
            known.clear()
            known.update(_condition_facts(condition, False))
            if condition == statement.condition and body == statement.body:
                return statement
            return While(condition, body, label=statement.label)
        raise ValueError(f"cannot fold statement {statement!r}")


def fold_constants(program: Program, report: PassReport) -> Program:
    """Constant propagation and folding (pc-stable; see module docstring)."""
    const_false = constant_false_keys(program)
    procedures: Dict[str, Procedure] = {}
    for name, proc in program.procedures.items():
        folder = _ConstFolder(program, proc, const_false, report)
        body = folder.block(proc.body, {})
        procedures[name] = Procedure(
            name=proc.name,
            params=list(proc.params),
            locals=list(proc.locals),
            body=body,
            num_returns=proc.num_returns,
        )
    return Program(
        globals=list(program.globals),
        procedures=procedures,
        main=program.main,
        name=program.name,
    )


# ---------------------------------------------------------------------------
# Pass 2: interprocedural liveness + dead-store elimination (pc-stable)
# ---------------------------------------------------------------------------
def relevant_keys(program: Program) -> Set[VarKey]:
    """Variables that can influence control flow (backward closure).

    Seeds are the variables read by ``if``/``while``/``assume``/``assert``
    conditions; the closure follows assignment, argument->parameter and
    return-value->call-target dependency edges backwards.
    """
    relevant: Set[VarKey] = set()
    worklist: List[VarKey] = []

    def mark(key: VarKey) -> None:
        if key not in relevant:
            relevant.add(key)
            worklist.append(key)

    def mark_expr(expression: Expr, proc: Procedure) -> None:
        for name in expression.variables():
            mark(_key(program, proc, name))

    for proc in program.procedures.values():
        for statement in _walk_statements(proc.body):
            if isinstance(statement, (If, While, Assume, Assert)):
                mark_expr(statement.condition, proc)

    # Dependency edges, indexed by written key.
    deps: Dict[VarKey, List[Tuple[Procedure, Expr]]] = {}
    links: Dict[VarKey, List[VarKey]] = {}

    def add_dep(key: VarKey, proc: Procedure, expression: Expr) -> None:
        deps.setdefault(key, []).append((proc, expression))

    for proc in program.procedures.values():
        for statement in _walk_statements(proc.body):
            if isinstance(statement, Assign):
                for target, value in zip(statement.targets, statement.values):
                    add_dep(_key(program, proc, target), proc, value)
            elif isinstance(statement, Return):
                for index, value in enumerate(statement.values):
                    add_dep(_ret_key(proc.name, index), proc, value)
            if isinstance(statement, CallAssign):
                for index, target in enumerate(statement.targets):
                    target_key = _key(program, proc, target)
                    ret = _ret_key(statement.callee, index)
                    links.setdefault(target_key, []).append(ret)
                    # A live return index keeps every receiving target
                    # declared: arity forces the target slot to exist at
                    # each call site the index survives at.
                    links.setdefault(ret, []).append(target_key)
            if isinstance(statement, (Call, CallAssign)):
                callee = program.procedures.get(statement.callee)
                if callee is None:
                    continue
                for param, argument in zip(callee.params, statement.args):
                    add_dep((callee.name, param), proc, argument)

    while worklist:
        key = worklist.pop()
        for proc, expression in deps.get(key, ()):
            for name in expression.variables():
                mark(_key(program, proc, name))
        for linked in links.get(key, ()):
            mark(linked)
    return relevant


def _dse_block(
    proc: Procedure,
    globals_set: Set[str],
    statements: List[Stmt],
    overwritten: Set[str],
    report: PassReport,
) -> Tuple[List[Stmt], Set[str]]:
    """Backward dead-store elimination over one block.

    ``overwritten`` holds variables definitely re-written before any read on
    every path from the current point; a pair assigning one is dead.  Only
    runs in goto-free procedures (structured control flow).
    """
    out: List[Stmt] = []
    for statement in reversed(statements):
        statement, overwritten = _dse_stmt(
            proc, globals_set, statement, overwritten, report
        )
        out.append(statement)
    out.reverse()
    return out, overwritten


def _dse_stmt(
    proc: Procedure,
    globals_set: Set[str],
    statement: Stmt,
    overwritten: Set[str],
    report: PassReport,
) -> Tuple[Stmt, Set[str]]:
    if isinstance(statement, Assign):
        kept = [
            (target, value)
            for target, value in zip(statement.targets, statement.values)
            if target not in overwritten
        ]
        dropped = len(statement.targets) - len(kept)
        if dropped:
            report.assignments_dropped += dropped
        reads: Set[str] = set()
        for _, value in kept:
            reads |= value.variables()
        overwritten = (overwritten | {target for target, _ in kept}) - reads
        if not dropped:
            return statement, overwritten
        if not kept:
            return Skip(label=statement.label), overwritten
        return (
            Assign([t for t, _ in kept], [v for _, v in kept], label=statement.label),
            overwritten,
        )
    if isinstance(statement, (Assume, Assert)):
        return statement, overwritten - statement.condition.variables()
    if isinstance(statement, Call):
        reads = set()
        for argument in statement.args:
            reads |= argument.variables()
        return statement, (overwritten - globals_set) - reads
    if isinstance(statement, CallAssign):
        reads = set()
        for argument in statement.args:
            reads |= argument.variables()
        local_targets = {t for t in statement.targets if t not in globals_set}
        return statement, ((overwritten - globals_set) | local_targets) - reads
    if isinstance(statement, Return):
        reads = set()
        for value in statement.values:
            reads |= value.variables()
        # Control leaves the procedure: locals are dead past this point.
        return statement, set(_local_names(proc)) - reads
    if isinstance(statement, If):
        then_branch, over_then = _dse_block(
            proc, globals_set, statement.then_branch, set(overwritten), report
        )
        else_branch, over_else = _dse_block(
            proc, globals_set, statement.else_branch, set(overwritten), report
        )
        joined = (over_then & over_else) - statement.condition.variables()
        if then_branch == statement.then_branch and else_branch == statement.else_branch:
            return statement, joined
        return (
            If(statement.condition, then_branch, else_branch, label=statement.label),
            joined,
        )
    if isinstance(statement, While):
        # The back edge joins the body exit with the loop head: nothing is
        # known overwritten there, and nothing survives past the loop.
        body, _ = _dse_block(proc, globals_set, statement.body, set(), report)
        if body == statement.body:
            return statement, set()
        return While(statement.condition, body, label=statement.label), set()
    # Skip (and, defensively, anything unhandled): no effect.
    return statement, overwritten


class _DeadRewriter:
    """Rebuilds the program without dead variables (see eliminate_dead)."""

    def __init__(
        self,
        program: Program,
        relevant: Set[VarKey],
        dead_params: Dict[str, Set[int]],
        dead_returns: Dict[str, Set[int]],
        report: PassReport,
    ) -> None:
        self.program = program
        self.relevant = relevant
        self.dead_params = dead_params
        self.dead_returns = dead_returns
        self.report = report

    def _alive(self, proc: Procedure, name: str) -> bool:
        return _key(self.program, proc, name) in self.relevant

    def block(self, proc: Procedure, statements: List[Stmt]) -> List[Stmt]:
        return [self.statement(proc, statement) for statement in statements]

    def statement(self, proc: Procedure, statement: Stmt) -> Stmt:
        if isinstance(statement, Assign):
            kept = [
                (target, value)
                for target, value in zip(statement.targets, statement.values)
                if self._alive(proc, target)
            ]
            dropped = len(statement.targets) - len(kept)
            if not dropped:
                return statement
            self.report.assignments_dropped += dropped
            if not kept:
                return Skip(label=statement.label)
            return Assign(
                [t for t, _ in kept], [v for _, v in kept], label=statement.label
            )
        if isinstance(statement, CallAssign):
            dead = self.dead_returns.get(statement.callee, set())
            targets = [
                target
                for index, target in enumerate(statement.targets)
                if index not in dead
            ]
            args = self._args(statement.callee, statement.args)
            self.report.assignments_dropped += len(statement.targets) - len(targets)
            if not targets:
                return Call(statement.callee, args, label=statement.label)
            return CallAssign(targets, statement.callee, args, label=statement.label)
        if isinstance(statement, Call):
            return Call(
                statement.callee,
                self._args(statement.callee, statement.args),
                label=statement.label,
            )
        if isinstance(statement, Return):
            dead = self.dead_returns.get(proc.name, set())
            if not dead:
                return statement
            values = [
                value
                for index, value in enumerate(statement.values)
                if index not in dead
            ]
            return Return(values, label=statement.label)
        if isinstance(statement, If):
            return If(
                statement.condition,
                self.block(proc, statement.then_branch),
                self.block(proc, statement.else_branch),
                label=statement.label,
            )
        if isinstance(statement, While):
            return While(
                statement.condition, self.block(proc, statement.body), label=statement.label
            )
        return statement

    def _args(self, callee_name: str, args: Sequence[Expr]) -> List[Expr]:
        dead = self.dead_params.get(callee_name, set())
        if not dead:
            return list(args)
        return [arg for index, arg in enumerate(args) if index not in dead]


def eliminate_dead(program: Program, report: PassReport) -> Program:
    """Drop dead variables, parameters, return indexes and stores (pc-stable).

    Relevance is the flow-insensitive closure of :func:`relevant_keys`; a
    dead parameter/return index is dropped uniformly (formal list, every
    call site, every ``return``) so arities stay consistent.  A dead
    variable is never *read* in surviving code: every read position of a
    dead variable (a pair assigning a dead target, an argument for a dead
    parameter, a return value for a dead index) is itself deleted by the
    same rewrite.
    """
    relevant = relevant_keys(program)
    dead_params: Dict[str, Set[int]] = {}
    dead_returns: Dict[str, Set[int]] = {}
    for name, proc in program.procedures.items():
        dead_params[name] = {
            index
            for index, param in enumerate(proc.params)
            if (name, param) not in relevant
        }
        dead_returns[name] = {
            index
            for index in range(proc.num_returns)
            if _ret_key(name, index) not in relevant
        }
    rewriter = _DeadRewriter(program, relevant, dead_params, dead_returns, report)
    globals_kept = [name for name in program.globals if ("", name) in relevant]
    for name in program.globals:
        if ("", name) not in relevant:
            report.variables_removed.append(name)
    procedures: Dict[str, Procedure] = {}
    for name, proc in program.procedures.items():
        params = [
            param
            for index, param in enumerate(proc.params)
            if index not in dead_params[name]
        ]
        locals_kept = [local for local in proc.locals if (name, local) in relevant]
        for index in sorted(dead_params[name]):
            report.variables_removed.append(f"{name}:{proc.params[index]}")
        for local in proc.locals:
            if (name, local) not in relevant:
                report.variables_removed.append(f"{name}:{local}")
        for index in sorted(dead_returns[name]):
            report.variables_removed.append(
                f"{name}:{RETURN_SLOT_PREFIX}{index}"
            )
        body = rewriter.block(proc, proc.body)
        rebuilt = Procedure(
            name=name,
            params=params,
            locals=locals_kept,
            body=body,
            num_returns=proc.num_returns - len(dead_returns[name]),
        )
        if not _contains(rebuilt.body, (Goto,)):
            rebuilt.body, _ = _dse_block(
                rebuilt, set(globals_kept), rebuilt.body, set(), report
            )
        procedures[name] = rebuilt
    return Program(
        globals=globals_kept,
        procedures=procedures,
        main=program.main,
        name=program.name,
    )


# ---------------------------------------------------------------------------
# Pass 3: statically decided branches and unreachable code (structural)
# ---------------------------------------------------------------------------
def _stops_execution(statement: Stmt) -> bool:
    """Does control never fall through to the lexical successor?"""
    return isinstance(statement, (Return, Goto)) or (
        isinstance(statement, Assume) and statement.condition == Lit(False)
    )


def _prune_block(statements: List[Stmt], report: PassReport) -> List[Stmt]:
    flat: List[Stmt] = []
    for statement in statements:
        flat.extend(_prune_stmt(statement, report))
    out: List[Stmt] = []
    dead = False
    for statement in flat:
        if dead and _deletable(statement):
            report.statements_deleted += 1
            report.structural_changes += 1
            continue
        out.append(statement)
        if dead and _has_label([statement]):
            # A goto may re-enter here: execution is live again.
            dead = False
        if not dead:
            dead = _stops_execution(statement)
    return out


def _prune_stmt(statement: Stmt, report: PassReport) -> List[Stmt]:
    if isinstance(statement, If):
        condition = statement.condition
        if isinstance(condition, Lit):
            branch = statement.then_branch if condition.value else statement.else_branch
            dropped = (
                statement.else_branch if condition.value else statement.then_branch
            )
            if not _has_label(dropped) and not _contains(dropped, (Assert,)):
                report.branches_pruned += 1
                report.structural_changes += 1
                replacement = _prune_block(branch, report)
                if statement.label is not None:
                    replacement = [Skip(label=statement.label)] + replacement
                return replacement
        return [
            If(
                condition,
                _prune_block(statement.then_branch, report),
                _prune_block(statement.else_branch, report),
                label=statement.label,
            )
        ]
    if isinstance(statement, While):
        condition = statement.condition
        if (
            isinstance(condition, Lit)
            and not condition.value
            and not _has_label(statement.body)
            and not _contains(statement.body, (Assert,))
        ):
            report.branches_pruned += 1
            report.structural_changes += 1
            if statement.label is not None:
                return [Skip(label=statement.label)]
            return []
        return [
            While(condition, _prune_block(statement.body, report), label=statement.label)
        ]
    return [statement]


def prune_branches(program: Program, report: PassReport) -> Program:
    """Remove statically decided branches and unreachable suffixes.

    Structural: deleting statements renumbers program counters.  Dropped
    regions must carry no labels and no asserts (goto/query targets and
    error locations survive every pass).
    """
    procedures: Dict[str, Procedure] = {}
    for name, proc in program.procedures.items():
        body = _prune_block(list(proc.body), report)
        if not body:
            body = [Skip()]
        procedures[name] = Procedure(
            name=name,
            params=list(proc.params),
            locals=list(proc.locals),
            body=body,
            num_returns=proc.num_returns,
        )
    return Program(
        globals=list(program.globals),
        procedures=procedures,
        main=program.main,
        name=program.name,
    )


# ---------------------------------------------------------------------------
# Pass 4: target-directed slicing (structural)
# ---------------------------------------------------------------------------
def normalise_slice_targets(targets: object) -> Optional[Tuple[str, ...]]:
    """String target specs usable for slicing, or ``None``.

    Numeric ``(module, pc)`` specs return ``None``: they are resolved
    against the *raw* program's numbering, which structural passes break.
    """
    if targets is None:
        return None
    if isinstance(targets, str):
        return (targets,)
    try:
        items = list(targets)  # type: ignore[arg-type]
    except TypeError:
        return None
    if not items or not all(isinstance(item, str) for item in items):
        return None
    return tuple(dict.fromkeys(items))


class _Slicer:
    """Target-directed slicing (see :func:`slice_to_targets`)."""

    def __init__(self, program: Program, specs: Tuple[str, ...], report: PassReport):
        self.program = program
        self.report = report
        self.error_targeted = "error" in specs
        self.label_targets: Dict[str, Set[str]] = {}
        for spec in specs:
            if spec == "error" or ":" not in spec:
                continue
            proc, label = spec.split(":", 1)
            self.label_targets.setdefault(proc, set()).add(label)
        #: reaches[p]: can execution entering p reach a target without
        #: returning from p (directly or via callees)?
        self.reaches: Dict[str, bool] = {name: False for name in program.procedures}
        #: return_matters[p]: can execution reach a target after p returns?
        self.return_matters: Dict[str, bool] = {
            name: False for name in program.procedures
        }
        self._solve()

    # -- local hit tests -------------------------------------------------
    def _hits(self, proc_name: str, statement: Stmt) -> bool:
        """Can executing ``statement`` itself reach a target (no suffix)?

        ``goto`` counts as a hit: its continuation is its (arbitrary) label,
        not the lexical suffix the backward walk tracks.
        """
        if statement.label is not None and statement.label in self.label_targets.get(
            proc_name, ()
        ):
            return True
        if isinstance(statement, Assert) and self.error_targeted:
            return True
        if isinstance(statement, Goto):
            return True
        if isinstance(statement, (Call, CallAssign)):
            return self.reaches.get(statement.callee, True)
        if isinstance(statement, If):
            return self._any_hit(proc_name, statement.then_branch) or self._any_hit(
                proc_name, statement.else_branch
            )
        if isinstance(statement, While):
            return self._any_hit(proc_name, statement.body)
        return False

    def _any_hit(self, proc_name: str, statements: Sequence[Stmt]) -> bool:
        return any(self._hits(proc_name, s) for s in statements)

    # -- interprocedural fixpoints ---------------------------------------
    def _solve(self) -> None:
        changed = True
        while changed:
            changed = False
            for name, proc in self.program.procedures.items():
                if not self.reaches[name] and self._any_hit(name, proc.body):
                    self.reaches[name] = True
                    changed = True
            # Propagate return_matters via the flag walk over every caller:
            # a call site whose continuation can reach a target makes the
            # callee's return matter.
            snapshot = dict(self.return_matters)
            for name, proc in self.program.procedures.items():
                self._walk_block(proc.body, self.return_matters[name], name, record=True)
            if snapshot != self.return_matters:
                changed = True

    def _walk_block(
        self, statements: Sequence[Stmt], flag: bool, proc_name: str, record: bool
    ) -> bool:
        """Backward flag propagation: ``flag`` = "the continuation after the
        block can reach a target"; returns the flag before the block."""
        for statement in reversed(statements):
            flag = self._walk_stmt(statement, flag, proc_name, record)
        return flag

    def _walk_stmt(
        self, statement: Stmt, flag_after: bool, proc_name: str, record: bool
    ) -> bool:
        if isinstance(statement, (Call, CallAssign)):
            if record and flag_after and statement.callee in self.return_matters:
                if not self.return_matters[statement.callee]:
                    self.return_matters[statement.callee] = True
            return flag_after or self._hits(proc_name, statement)
        if isinstance(statement, Return):
            return self.return_matters[proc_name]
        if isinstance(statement, Goto):
            return True
        if isinstance(statement, If):
            flag_then = self._walk_block(
                statement.then_branch, flag_after, proc_name, record
            )
            flag_else = self._walk_block(
                statement.else_branch, flag_after, proc_name, record
            )
            return flag_then or flag_else or self._hits(proc_name, statement)
        if isinstance(statement, While):
            # The body exit loops back to the head, so the flag at the body
            # end is the head flag itself (local two-point fixpoint).
            head = flag_after or self._any_hit(proc_name, statement.body)
            self._walk_block(statement.body, head, proc_name, record)
            return head or self._hits(proc_name, statement)
        return flag_after or self._hits(proc_name, statement)

    # -- deletion walk ----------------------------------------------------
    def slice_block(
        self, statements: List[Stmt], flag: bool, proc_name: str
    ) -> Tuple[List[Stmt], bool]:
        out: List[Stmt] = []
        for statement in reversed(statements):
            if not flag and not self._hits(proc_name, statement) and _deletable(
                statement
            ):
                self.report.statements_deleted += 1
                self.report.structural_changes += 1
                continue
            statement, flag = self._slice_stmt(statement, flag, proc_name)
            out.append(statement)
        out.reverse()
        return out, flag

    def _slice_stmt(
        self, statement: Stmt, flag_after: bool, proc_name: str
    ) -> Tuple[Stmt, bool]:
        if isinstance(statement, If):
            then_branch, flag_then = self.slice_block(
                list(statement.then_branch), flag_after, proc_name
            )
            else_branch, flag_else = self.slice_block(
                list(statement.else_branch), flag_after, proc_name
            )
            rebuilt = (
                statement
                if then_branch == statement.then_branch
                and else_branch == statement.else_branch
                else If(
                    statement.condition,
                    then_branch,
                    else_branch,
                    label=statement.label,
                )
            )
            return rebuilt, flag_then or flag_else or self._hits(proc_name, statement)
        if isinstance(statement, While):
            head = flag_after or self._any_hit(proc_name, statement.body)
            body, _ = self.slice_block(list(statement.body), head, proc_name)
            rebuilt = (
                statement
                if body == statement.body
                else While(statement.condition, body, label=statement.label)
            )
            return rebuilt, head or self._hits(proc_name, statement)
        return statement, self._walk_stmt(statement, flag_after, proc_name, record=False)


def slice_to_targets(
    program: Program, specs: Tuple[str, ...], report: PassReport
) -> Program:
    """Delete statements whose execution cannot lead to any target.

    Sound because a statement is deleted only when (a) it cannot itself
    reach a target (no target label/assert inside, no call into a
    target-reaching procedure, no ``goto``) and (b) its lexical
    continuation — including returning to every caller — cannot reach a
    target.  Deleting it can then only add executions that fall through
    into that same target-free continuation.
    """
    slicer = _Slicer(program, specs, report)
    procedures: Dict[str, Procedure] = {}
    for name, proc in program.procedures.items():
        body, _ = slicer.slice_block(list(proc.body), slicer.return_matters[name], name)
        if not body:
            body = [Skip()]
        procedures[name] = Procedure(
            name=name,
            params=list(proc.params),
            locals=list(proc.locals),
            body=body,
            num_returns=proc.num_returns,
        )
    report.sliced_for = tuple(specs)
    return Program(
        globals=list(program.globals),
        procedures=procedures,
        main=program.main,
        name=program.name,
    )


# ---------------------------------------------------------------------------
# Pass 5: unreachable-procedure pruning (structural)
# ---------------------------------------------------------------------------
def prune_unreachable(
    program: Program,
    specs: Optional[Tuple[str, ...]],
    report: PassReport,
) -> Program:
    """Drop procedures not transitively callable from ``main``.

    ``specs`` protects target resolution on the optimized program: with
    explicit specs, the procedures they name (and, for ``"error"``, every
    procedure containing an assert) are kept even when uncalled; without
    specs, any procedure containing an assert or a label is kept, so every
    spec that resolved against the raw program still resolves.
    """
    protect: Set[str] = {program.main}
    if specs is None:
        for name, proc in program.procedures.items():
            if _contains(proc.body, (Assert,)) or _has_label(proc.body):
                protect.add(name)
    else:
        for spec in specs:
            if spec == "error":
                for name, proc in program.procedures.items():
                    if _contains(proc.body, (Assert,)):
                        protect.add(name)
            elif ":" in spec:
                protect.add(spec.split(":", 1)[0])
    # Close over calls from every kept root so protected-but-uncalled
    # procedures keep their callees (no dangling call sites).
    keep = call_closure(program, roots=protect & set(program.procedures) | {program.main})
    dropped = [name for name in program.procedures if name not in keep]
    if not dropped:
        return program
    report.procedures_dropped.extend(dropped)
    report.structural_changes += len(dropped)
    return Program(
        globals=list(program.globals),
        procedures={
            name: proc for name, proc in program.procedures.items() if name in keep
        },
        main=program.main,
        name=program.name,
    )


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------
def optimize(
    program: Program,
    targets: object = None,
    level: int = 1,
    max_rounds: int = 4,
) -> Tuple[Program, PassReport]:
    """Run the pass pipeline at ``level`` and return (program, report).

    ``level`` 0 is the identity; 1 runs the pc-stable passes (constant
    folding, liveness, dead stores) so numeric ``(module, pc)`` targets
    stay valid; 2 adds the structural passes (branch pruning, slicing when
    ``targets`` is a string spec, procedure pruning).  ``targets`` follows
    :data:`repro.frontends.getafix.TargetSpec`; numeric specs implicitly
    cap the level at 1.

    The result is re-checked with ``check_program`` — a pipeline bug
    surfaces here as an exception, which callers may catch to fall back to
    the raw program.
    """
    if level < 0 or level > 2:
        raise ValueError(f"optimize level must be 0, 1 or 2 (got {level!r})")
    specs = normalise_slice_targets(targets)
    if targets is not None and specs is None:
        # Numeric (module, pc) targets: structural passes would invalidate
        # them, so cap to the pc-stable pipeline.
        level = min(level, 1)
    report = PassReport(level=level)
    if level == 0:
        return program, report
    current = program
    for round_index in range(max_rounds):
        before = report.changes()
        current = fold_constants(current, report)
        current = eliminate_dead(current, report)
        if level >= 2:
            current = prune_branches(current, report)
            if specs is not None:
                current = slice_to_targets(current, specs, report)
            current = prune_unreachable(current, specs, report)
        report.rounds = round_index + 1
        if report.changes() == before:
            break
    check_program(current)
    return current, report
