"""Typed resource-exhaustion errors shared across the whole stack.

Every engine in this reproduction runs under a *cooperative* resource
envelope (see :mod:`repro.limits`): the BDD kernel checks its budgets at node
allocations and GC safe points, the fixed-point evaluators bound their outer
iterations, and the explicit baselines bound their state-space exploration.
When a budget is exhausted they all raise a subclass of
:class:`ResourceExhausted`, which carries the consumed-vs-budget context so
callers (the batch layer, the CLI, a future service frontend) can classify
the failure as *resource* rather than *crash* and render a precise message.

The hierarchy deliberately lives at the package root with no imports, so
every layer — ``bdd``, ``fixedpoint``, ``baselines``, ``parallel``,
``frontends`` — can raise and catch these without dependency cycles.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

__all__ = [
    "ResourceExhausted",
    "AnalysisTimeout",
    "NodeBudgetExceeded",
    "ExplorationBudgetExceeded",
]

Number = Union[int, float]


class ResourceExhausted(Exception):
    """A query exceeded its resource envelope (deadline, nodes, iterations).

    Attributes
    ----------
    resource:
        Which budget was exhausted (``"wall-clock"``, ``"bdd-nodes"``,
        ``"iterations"``, ``"path-edges"``, ...).
    consumed:
        How much of the resource was consumed when the limit tripped.
    budget:
        The configured budget.

    The manager/session is left in a *releasable* state when this is raised:
    no cache or node-table invariant is broken, retained interpretations are
    untouched, and ``close()`` still returns the manager to its baseline.
    """

    #: Default resource tag; subclasses override it.
    resource: str = "resource"

    def __init__(
        self,
        message: str,
        *,
        resource: Optional[str] = None,
        consumed: Optional[Number] = None,
        budget: Optional[Number] = None,
    ) -> None:
        super().__init__(message)
        if resource is not None:
            self.resource = resource
        self.consumed = consumed
        self.budget = budget

    def detail(self) -> Dict[str, object]:
        """A JSON-friendly record of the exhaustion (for shard reports)."""
        return {
            "type": type(self).__name__,
            "resource": self.resource,
            "consumed": self.consumed,
            "budget": self.budget,
        }


class AnalysisTimeout(ResourceExhausted):
    """The wall-clock deadline of a query expired (checked at checkpoints)."""

    resource = "wall-clock"

    def __init__(
        self,
        message: Optional[str] = None,
        *,
        consumed: Optional[Number] = None,
        budget: Optional[Number] = None,
    ) -> None:
        if message is None:
            consumed_text = f"{consumed:.3f}s" if consumed is not None else "?"
            budget_text = f"{budget:.3f}s" if budget is not None else "?"
            message = f"analysis deadline exceeded: {consumed_text} elapsed of a {budget_text} budget"
        super().__init__(message, consumed=consumed, budget=budget)


class NodeBudgetExceeded(ResourceExhausted):
    """The BDD manager's live-node budget was exceeded.

    Raised at allocation checkpoints and at GC safe points (after a sweep
    failed to bring the live count back under budget), so a bad variable
    order or an adversarial program cannot grow the node table without
    bound.
    """

    resource = "bdd-nodes"

    def __init__(
        self,
        message: Optional[str] = None,
        *,
        consumed: Optional[Number] = None,
        budget: Optional[Number] = None,
    ) -> None:
        if message is None:
            message = (
                f"BDD node budget exceeded: {consumed} live nodes over a budget of {budget}"
            )
        super().__init__(message, consumed=consumed, budget=budget)


class ExplorationBudgetExceeded(ResourceExhausted):
    """An explicit-state baseline exceeded its state-space budget.

    Replaces the bare ``MemoryError`` the baselines used to raise, so the
    batch layer classifies a blown-up explicit exploration as ``resource``
    rather than ``crashed``.  ``resource`` names the bounded quantity
    (``"path-edges"`` for Bebop, ``"transitions"`` for Moped,
    ``"configurations"`` for the explicit concurrent engine).
    """
