"""The fixed-point calculus: the paper's "high-level programming language".

This package provides:

* typed finite sorts (:mod:`~repro.fixedpoint.sorts`),
* terms and formulas (:mod:`~repro.fixedpoint.terms`,
  :mod:`~repro.fixedpoint.formulas`),
* relation declarations and equation systems
  (:mod:`~repro.fixedpoint.relations`),
* two evaluation backends — symbolic/BDD and explicit
  (:mod:`~repro.fixedpoint.symbolic`, :mod:`~repro.fixedpoint.explicit`),
* the paper's algorithmic (nested Tarskian) evaluation semantics and a
  simultaneous-iteration mode (:mod:`~repro.fixedpoint.evaluator`).
"""

from .sorts import BOOL, BoolSort, EnumSort, Sort, StructSort
from .terms import Const, Field, Term, Var, as_term
from .formulas import (
    FALSE,
    TRUE,
    And,
    BoolAtom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Le,
    Lt,
    Not,
    Or,
    RelApp,
    Succ,
    all_vars,
    free_vars,
    relations_of,
)
from .relations import Equation, EquationSystem, RelationDecl
from .evaluator import (
    EvaluationError,
    EvaluationResult,
    evaluate_nested,
    evaluate_simultaneous,
)
from .symbolic import SymbolicBackend, SymbolicContext, default_bit_order
from .explicit import ExplicitBackend, relation_from_predicate

__all__ = [
    "BOOL",
    "BoolSort",
    "EnumSort",
    "Sort",
    "StructSort",
    "Const",
    "Field",
    "Term",
    "Var",
    "as_term",
    "TRUE",
    "FALSE",
    "And",
    "BoolAtom",
    "Eq",
    "Exists",
    "Forall",
    "Formula",
    "Iff",
    "Implies",
    "Le",
    "Lt",
    "Not",
    "Or",
    "RelApp",
    "Succ",
    "all_vars",
    "free_vars",
    "relations_of",
    "Equation",
    "EquationSystem",
    "RelationDecl",
    "EvaluationError",
    "EvaluationResult",
    "evaluate_nested",
    "evaluate_simultaneous",
    "SymbolicBackend",
    "SymbolicContext",
    "default_bit_order",
    "ExplicitBackend",
    "relation_from_predicate",
]
