"""Relation declarations, equations and equation systems.

An *equation system* is the unit of "programming" in the fixed-point calculus:
it is a set of (possibly mutually recursive, possibly non-monotone) equations
``R(params) = body`` together with a collection of *input relations* whose
interpretations are supplied from the outside (in Getafix these are the
template relations produced by the program encoder).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .formulas import Formula, RelApp, coerce, free_vars, relations_of
from .sorts import Sort
from .terms import Term, Var

__all__ = ["RelationDecl", "Equation", "EquationSystem"]


class RelationDecl:
    """A declared relation with named, typed parameters.

    Calling the declaration with argument terms produces a
    :class:`~repro.fixedpoint.formulas.RelApp` atom, so a declaration doubles
    as the "name" used when writing formulas::

        Summary = RelationDecl("Summary", [("u", Conf), ("v", Conf)])
        body = Summary(u, x) & ProgramInt(x, v)
    """

    def __init__(self, name: str, params: Sequence[Tuple[str, Sort]]) -> None:
        self.name = name
        self.params: Tuple[Tuple[str, Sort], ...] = tuple(params)
        names = [param for param, _ in self.params]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names in relation {name!r}")

    @property
    def arity(self) -> int:
        """Number of parameters."""
        return len(self.params)

    def param_vars(self) -> List[Var]:
        """The canonical parameter variables (one per declared parameter)."""
        return [Var(param, sort) for param, sort in self.params]

    def param_bit_names(self) -> List[str]:
        """BDD bit names of all canonical parameters, in declaration order."""
        names: List[str] = []
        for var in self.param_vars():
            names.extend(var.bit_names())
        return names

    def __call__(self, *args: Any) -> RelApp:
        return RelApp(self, args)

    def __repr__(self) -> str:
        params = ", ".join(f"{name}:{sort.name}" for name, sort in self.params)
        return f"RelationDecl({self.name}({params}))"


class Equation:
    """A recursive definition ``decl(params) = body``.

    The body's free variables whose names coincide with the declaration's
    parameter names denote those parameters; any other free variable is an
    error (caught at system construction).
    """

    def __init__(self, decl: RelationDecl, body: Any) -> None:
        self.decl = decl
        self.body: Formula = coerce(body)

    def referenced_relations(self) -> Set[str]:
        """Names of relations applied in the body (including ``decl`` itself)."""
        return relations_of(self.body)

    def check(self) -> None:
        """Validate that the body's free variables are exactly parameters."""
        params = {name: sort for name, sort in self.decl.params}
        for name, var in free_vars(self.body).items():
            if name not in params:
                raise ValueError(
                    f"equation for {self.decl.name}: free variable {name!r} "
                    "is not a declared parameter"
                )
            if var.sort != params[name]:
                raise TypeError(
                    f"equation for {self.decl.name}: parameter {name!r} used "
                    f"with sort {var.sort.name}, declared {params[name].name}"
                )

    def __repr__(self) -> str:
        return f"Equation({self.decl.name} = {self.body!r})"


class EquationSystem:
    """A set of equations plus the declarations of the input relations."""

    def __init__(
        self,
        equations: Sequence[Equation],
        inputs: Sequence[RelationDecl] = (),
    ) -> None:
        self.equations: Dict[str, Equation] = {}
        for equation in equations:
            name = equation.decl.name
            if name in self.equations:
                raise ValueError(f"relation {name!r} defined twice")
            self.equations[name] = equation
        self.inputs: Dict[str, RelationDecl] = {}
        for decl in inputs:
            if decl.name in self.equations:
                raise ValueError(f"relation {decl.name!r} is both defined and an input")
            if decl.name in self.inputs:
                raise ValueError(f"input relation {decl.name!r} declared twice")
            self.inputs[decl.name] = decl
        self._check()

    def _check(self) -> None:
        for equation in self.equations.values():
            equation.check()
            for name in equation.referenced_relations():
                if name not in self.equations and name not in self.inputs:
                    raise ValueError(
                        f"equation for {equation.decl.name} references unknown "
                        f"relation {name!r}"
                    )

    def equation(self, name: str) -> Equation:
        """Look up the equation defining ``name``."""
        try:
            return self.equations[name]
        except KeyError:
            raise KeyError(f"no equation defines relation {name!r}") from None

    def decl(self, name: str) -> RelationDecl:
        """Look up any declared relation (defined or input) by name."""
        if name in self.equations:
            return self.equations[name].decl
        if name in self.inputs:
            return self.inputs[name]
        raise KeyError(f"unknown relation {name!r}")

    def defined_names(self) -> List[str]:
        """Names of relations defined by equations."""
        return list(self.equations)

    def dependencies(self, name: str) -> Set[str]:
        """Defined relations referenced (directly) by the equation for ``name``."""
        return {
            other
            for other in self.equation(name).referenced_relations()
            if other in self.equations
        }

    def __repr__(self) -> str:
        return (
            f"EquationSystem(defined={sorted(self.equations)}, "
            f"inputs={sorted(self.inputs)})"
        )
