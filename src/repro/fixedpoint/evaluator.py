"""Evaluation strategies for equation systems.

Two strategies are provided, both parametric in the backend (symbolic or
explicit):

* :func:`evaluate_nested` — the *algorithmic semantics* of the paper
  (Section 3): to evaluate a relation ``R`` defined by ``R = B``, start from
  the empty interpretation, and in every round re-evaluate every relation that
  occurs in ``B`` (with ``R`` frozen to its current value) before recomputing
  ``R`` itself; stop when ``R`` stabilises.  This semantics gives meaning to
  *non-monotone* systems such as the optimised entry-forward algorithm
  (Section 4.3), where the auxiliary ``Relevant`` relation uses negation.
* :func:`evaluate_simultaneous` — standard chaotic iteration of all equations
  at once, valid (and typically faster) for monotone systems; used as a
  cross-check in the tests.

Both return an :class:`EvaluationResult` containing the final interpretations
and iteration statistics.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from ..errors import ResourceExhausted
from .relations import EquationSystem

__all__ = ["EvaluationError", "EvaluationResult", "evaluate_nested", "evaluate_simultaneous"]


class EvaluationError(ResourceExhausted):
    """Raised when evaluation exceeds its iteration budget (non-termination guard).

    A :class:`repro.errors.ResourceExhausted` subclass (``resource ==
    "iterations"``) so the batch layer classifies a blown iteration budget
    as a resource failure, with ``consumed``/``budget`` carrying the
    iteration counts.
    """

    resource = "iterations"


@dataclass
class EvaluationResult:
    """Outcome of evaluating an equation system.

    Attributes
    ----------
    target:
        Name of the relation that was requested.
    interpretations:
        Final interpretation of the target relation and (for the nested
        strategy) the last computed value of every auxiliary relation.
    iterations:
        Number of outer iterations performed for the target relation.
    equation_evaluations:
        Total number of equation-body evaluations across all relations.
    elapsed_seconds:
        Wall-clock evaluation time.
    stopped_early:
        True when a ``stop`` predicate ended the iteration before a fixed
        point was reached.
    backend_stats:
        Snapshot of the backend's evaluation statistics (cache hit rates,
        static-hoist counts, node-table size) taken when evaluation finished;
        empty for backends that do not expose ``stats_snapshot``.
    """

    target: str
    interpretations: Dict[str, Any]
    iterations: int
    equation_evaluations: int
    elapsed_seconds: float
    stopped_early: bool = False
    backend_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def value(self) -> Any:
        """The interpretation computed for the target relation."""
        return self.interpretations[self.target]


def _stats_snapshot(backend: Any) -> Dict[str, Any]:
    snapshot = getattr(backend, "stats_snapshot", None)
    return snapshot() if callable(snapshot) else {}


def _gc_step(backend: Any) -> Optional[Callable[[Any], bool]]:
    """The backend's safe-point garbage-collection hook, if it has one.

    Symbolic backends expose ``gc_step(roots)`` (see
    :meth:`repro.fixedpoint.symbolic.SymbolicBackend.gc_step`); the explicit
    backends have nothing to collect.  Both evaluation strategies call the
    hook between outer iterations — the only points where every live
    interpretation edge is enumerable — passing those edges as roots.
    """
    hook = getattr(backend, "gc_step", None)
    return hook if callable(hook) else None


def evaluate_nested(
    system: EquationSystem,
    target: str,
    backend: Any,
    inputs: Mapping[str, Any],
    max_iterations: int = 10_000,
    stop: Optional[Callable[[Mapping[str, Any]], bool]] = None,
    seed: Optional[Mapping[str, Any]] = None,
) -> EvaluationResult:
    """Evaluate ``target`` using the paper's nested ``Evaluate`` algorithm.

    Parameters
    ----------
    system:
        The equation system.
    target:
        Name of the relation to compute.
    backend:
        A backend exposing ``empty``, ``equal`` and ``eval_equation``.
    inputs:
        Interpretations of every input relation of the system.
    max_iterations:
        Safety bound on outer iterations of any single relation; exceeded
        bounds raise :class:`EvaluationError` (the paper's semantics does not
        guarantee termination for non-monotone systems).
    stop:
        Optional early-termination predicate, called after every outer
        iteration of the *target* relation with the current interpretations;
        returning True ends the evaluation (used for "stop as soon as the goal
        is known reachable").
    seed:
        Optional warm-start interpretation of the *target* relation (inner
        relations still restart from empty, as the nested semantics demands).
        Sound only when the seed is an intermediate Kleene iterate of a
        monotone system — iteration then resumes exactly where the seed run
        left off; the session layer enforces the monotonicity restriction.
    """
    missing = set(system.inputs) - set(inputs)
    if missing:
        raise ValueError(f"missing interpretations for input relations: {sorted(missing)}")
    start = time.perf_counter()
    stats = {"evaluations": 0}
    interpretations: Dict[str, Any] = {}
    stopped = {"early": False}
    gc_step = _gc_step(backend)
    # The dependency sets are derived from the (immutable) equation bodies;
    # hoist them out of the iteration loops instead of re-walking every
    # formula on every round.
    dependency_order = {
        name: sorted(system.dependencies(name)) for name in system.equations
    }

    def evaluate(name: str, fixed: Dict[str, Any], depth: int) -> Any:
        equation = system.equation(name)
        current = backend.empty(equation.decl)
        if depth == 0 and seed is not None and name in seed:
            current = seed[name]
        iterations = 0
        while True:
            iterations += 1
            if iterations > max_iterations:
                raise EvaluationError(
                    f"relation {name!r} did not stabilise within {max_iterations} iterations",
                    consumed=iterations,
                    budget=max_iterations,
                )
            env = dict(fixed)
            env[name] = current
            for other in dependency_order[name]:
                if other == name or other in fixed:
                    continue
                env[other] = evaluate(other, env, depth + 1)
            stats["evaluations"] += 1
            updated = backend.eval_equation(equation, env)
            interpretations.update(
                {key: value for key, value in env.items() if key in system.equations}
            )
            interpretations[name] = updated
            if depth == 0 and gc_step is not None:
                # Safe point: every live interpretation edge is in one of
                # these mappings (inner evaluations restart from empty and
                # re-derive everything else from caches that GC may drop).
                gc_step(
                    itertools.chain(
                        fixed.values(),
                        env.values(),
                        interpretations.values(),
                        (current, updated),
                    )
                )
            if depth == 0 and stop is not None and stop(interpretations):
                stopped["early"] = True
                current = updated
                break
            if backend.equal(updated, current):
                current = updated
                break
            current = updated
        if depth == 0:
            interpretations["__iterations__"] = iterations
        return current

    fixed_inputs = dict(inputs)
    value = evaluate(target, fixed_inputs, 0)
    iterations = interpretations.pop("__iterations__", 0)
    interpretations[target] = value
    return EvaluationResult(
        target=target,
        interpretations=interpretations,
        iterations=iterations,
        equation_evaluations=stats["evaluations"],
        elapsed_seconds=time.perf_counter() - start,
        stopped_early=stopped["early"],
        backend_stats=_stats_snapshot(backend),
    )


def evaluate_simultaneous(
    system: EquationSystem,
    target: str,
    backend: Any,
    inputs: Mapping[str, Any],
    max_iterations: int = 10_000,
    stop: Optional[Callable[[Mapping[str, Any]], bool]] = None,
    seed: Optional[Mapping[str, Any]] = None,
) -> EvaluationResult:
    """Evaluate all equations by simultaneous (chaotic) iteration.

    All defined relations start empty (or from ``seed``, a warm-start
    interpretation that must be an intermediate iterate of the same monotone
    system — iteration then resumes the seed run's Kleene sequence) and are
    re-evaluated in declaration order until none of them changes.  This is
    the textbook Knaster–Tarski iteration and computes the least fixed point
    for monotone systems; it is *not* appropriate for the non-monotone
    optimised entry-forward algorithm.
    """
    missing = set(system.inputs) - set(inputs)
    if missing:
        raise ValueError(f"missing interpretations for input relations: {sorted(missing)}")
    if target not in system.equations:
        raise KeyError(f"no equation defines relation {target!r}")
    start = time.perf_counter()
    interpretations: Dict[str, Any] = dict(inputs)
    for name, equation in system.equations.items():
        if seed is not None and name in seed:
            interpretations[name] = seed[name]
        else:
            interpretations[name] = backend.empty(equation.decl)
    iterations = 0
    evaluations = 0
    stopped_early = False
    gc_step = _gc_step(backend)
    while True:
        iterations += 1
        if iterations > max_iterations:
            raise EvaluationError(
                f"system did not stabilise within {max_iterations} iterations",
                consumed=iterations,
                budget=max_iterations,
            )
        changed = False
        for name, equation in system.equations.items():
            evaluations += 1
            updated = backend.eval_equation(equation, interpretations)
            if not backend.equal(updated, interpretations[name]):
                changed = True
            interpretations[name] = updated
        if gc_step is not None:
            # Safe point: the round's live edges are exactly the current
            # interpretations (inputs included).
            gc_step(interpretations.values())
        if stop is not None and stop(interpretations):
            stopped_early = True
            break
        if not changed:
            break
    defined = {name: interpretations[name] for name in system.equations}
    return EvaluationResult(
        target=target,
        interpretations=defined,
        iterations=iterations,
        equation_evaluations=evaluations,
        elapsed_seconds=time.perf_counter() - start,
        stopped_early=stopped_early,
        backend_stats=_stats_snapshot(backend),
    )
