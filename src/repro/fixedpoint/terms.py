"""Terms of the fixed-point calculus: typed variables, field access, constants.

A term denotes a value of some :class:`~repro.fixedpoint.sorts.Sort`.  In the
symbolic backend a variable term corresponds to a named group of BDD bits
(``u`` of sort ``Conf`` owns the bits ``u.pc.0``, ``u.L.x`` and so on); a field
access selects a sub-group of those bits; constants have no bits at all.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .sorts import BOOL, BoolSort, EnumSort, Sort, StructSort

__all__ = ["Term", "Var", "Field", "Const", "as_term"]


class Term:
    """Base class of calculus terms."""

    sort: Sort

    def bit_names(self) -> List[str]:
        """The fully qualified BDD bit names of this term, in encoding order."""
        raise NotImplementedError

    def root_var(self) -> Optional["Var"]:
        """The variable at the root of this term, or None for constants."""
        raise NotImplementedError

    def __getattr__(self, field: str) -> "Field":
        # Only called when normal attribute lookup fails, i.e. for field access
        # on struct-sorted terms: ``u.pc``, ``conf.L`` ...
        if field.startswith("_"):
            raise AttributeError(field)
        sort = self.__dict__.get("sort")
        if isinstance(sort, StructSort) and sort.has_field(field):
            return Field(self, field)
        raise AttributeError(
            f"term of sort {getattr(sort, 'name', sort)!r} has no field {field!r}"
        )

    def field(self, name: str) -> "Field":
        """Explicit field access (equivalent to attribute access)."""
        if not isinstance(self.sort, StructSort):
            raise TypeError(f"cannot select field {name!r} from non-struct term")
        return Field(self, name)


class Var(Term):
    """A typed variable (free or bound, depending on context)."""

    def __init__(self, name: str, sort: Sort) -> None:
        self.__dict__["name"] = name
        self.__dict__["sort"] = sort

    def bit_names(self) -> List[str]:
        name = self.__dict__["name"]
        return [name if path == "" else f"{name}.{path}" for path in self.sort.bit_paths()]

    def root_var(self) -> "Var":
        return self

    @property
    def path(self) -> str:
        """The dotted path of this term relative to its root variable ('' here)."""
        return ""

    def __repr__(self) -> str:
        return f"Var({self.__dict__['name']!r}:{self.sort.name})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Var)
            and other.__dict__["name"] == self.__dict__["name"]
            and other.sort == self.sort
        )

    def __hash__(self) -> int:
        return hash(("Var", self.__dict__["name"], self.sort))


class Field(Term):
    """A field selection on a struct-sorted term (``u.pc``, ``u.L.x``, ...)."""

    def __init__(self, base: Term, field: str) -> None:
        base_sort = base.sort
        if not isinstance(base_sort, StructSort):
            raise TypeError("Field base must have a struct sort")
        self.__dict__["base"] = base
        self.__dict__["field_name"] = field
        self.__dict__["sort"] = base_sort.field_sort(field)

    def bit_names(self) -> List[str]:
        base: Term = self.__dict__["base"]
        field: str = self.__dict__["field_name"]
        root = base.root_var()
        assert root is not None
        prefix = root.__dict__["name"]
        base_path = base.path
        full = field if base_path == "" else f"{base_path}.{field}"
        return [
            f"{prefix}.{full}" if path == "" else f"{prefix}.{full}.{path}"
            for path in self.sort.bit_paths()
        ]

    def root_var(self) -> Optional[Var]:
        return self.__dict__["base"].root_var()

    @property
    def path(self) -> str:
        base: Term = self.__dict__["base"]
        field: str = self.__dict__["field_name"]
        base_path = base.path
        return field if base_path == "" else f"{base_path}.{field}"

    def __repr__(self) -> str:
        root = self.root_var()
        name = root.__dict__["name"] if root is not None else "?"
        return f"Field({name}.{self.path})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Field)
            and other.__dict__["base"] == self.__dict__["base"]
            and other.__dict__["field_name"] == self.__dict__["field_name"]
        )

    def __hash__(self) -> int:
        return hash(("Field", self.__dict__["base"], self.__dict__["field_name"]))


class Const(Term):
    """A constant of a given sort."""

    def __init__(self, sort: Sort, value: Any) -> None:
        if not sort.is_valid(value):
            raise ValueError(f"{value!r} is not a value of sort {sort.name}")
        self.__dict__["sort"] = sort
        self.__dict__["value"] = sort.canonical(value)

    @property
    def value(self) -> Any:
        return self.__dict__["value"]

    def bit_names(self) -> List[str]:
        raise TypeError("constants have no bit names")

    def root_var(self) -> Optional[Var]:
        return None

    def __repr__(self) -> str:
        return f"Const({self.value!r}:{self.sort.name})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Const)
            and other.sort == self.sort
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash(("Const", self.sort, self.value))


def as_term(value: Any, sort: Optional[Sort] = None) -> Term:
    """Coerce a Python value (or pass through a term) into a :class:`Term`.

    ``bool`` becomes a Boolean constant, ``int`` requires an explicit enum
    ``sort`` to determine the encoding width.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        return Const(BOOL if sort is None else sort, value)
    if isinstance(value, int):
        if sort is None or not isinstance(sort, EnumSort):
            raise TypeError("integer constants need an explicit EnumSort")
        return Const(sort, value)
    raise TypeError(f"cannot interpret {value!r} as a term")
