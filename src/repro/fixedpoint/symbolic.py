"""Symbolic (BDD) backend of the fixed-point calculus.

This is the reproduction's stand-in for MUCKE's evaluation core: formulas are
compiled into ROBDDs over *bit variables*, one bit per Boolean component of
each typed variable (``u`` of sort ``Conf`` owns bits ``u.pc.0``, ``u.L.x``,
...).  Relation interpretations are BDDs over the bits of the relation's
*canonical parameter variables* (the parameter names used in its
declaration); applying a relation to other argument terms renames or
constrains those bits accordingly.

Static-formula hoisting
-----------------------
Fixed-point evaluation re-evaluates equation bodies hundreds of times, but
only the *relation interpretations* change between iterations — every
equality, enum comparison, domain constraint and constant cube is the same
BDD each round.  :meth:`SymbolicBackend.compile_formula` therefore partitions
a formula once into a **static skeleton** (all relation-free subformulas,
compiled to BDDs up front) and a small **dynamic residue** of plan nodes over
the relation applications.  Every dynamic plan node carries a memo table
keyed by the interpretations of exactly the relations it mentions, so a
subformula whose relations did not change between iterations is never
recomputed — the short-circuit that makes the nested (non-monotone)
evaluation strategy cheap.

Garbage-collection contract
---------------------------
The manager's mark-and-sweep collector (see :mod:`repro.bdd.manager`) only
runs at safe points, and this backend is its main client:

* every *static* edge the compiled plans hold forever (hoisted skeletons,
  quantifier domain constraints, the context's domain-constraint cache) is
  GC-protected via :meth:`BddManager.ref` when it is built;
* every plan memo is registered with the backend, and the backend installs a
  manager GC hook that clears them all whenever a sweep reclaims nodes — an
  interpretation-keyed memo can therefore never resurrect a dead node;
* evaluators call :meth:`SymbolicBackend.gc_step` between outer fixed-point
  iterations with the currently live interpretation edges as extra roots,
  which is the safe point where :meth:`BddManager.maybe_collect` may sweep.

:meth:`SymbolicBackend.clear_caches` composes the whole stack: plan memos,
this backend's memo counters, the context's domain cache and the manager's
caches, statistics and GC bookkeeping are reset together between runs.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..bdd import BddError, BddManager
from ..testing import faults
from .formulas import (
    And,
    BoolAtom,
    Bottom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Le,
    Lt,
    Not,
    Or,
    RelApp,
    Succ,
    Top,
    all_vars,
    relations_of,
)
from .relations import Equation, EquationSystem, RelationDecl
from .sorts import BoolSort, EnumSort, Sort, StructSort
from .terms import Const, Field, Term, Var

__all__ = ["SymbolicContext", "SymbolicBackend", "default_bit_order"]


def default_bit_order(variables: Sequence[Var]) -> List[str]:
    """Interleaved default ordering of the bits of a set of typed variables.

    Bits are grouped by their *path* (the part after the variable prefix), so
    that the corresponding components of different state copies sit next to
    each other — the standard good ordering for symbolic transition relations
    and the analogue of the "allocation constraints" Getafix hands to MUCKE.
    """
    path_rank: Dict[str, int] = {}
    var_rank: Dict[str, int] = {}
    bits: List[Tuple[str, str]] = []  # (path, full bit name)
    for var in variables:
        name = var.__dict__["name"]
        if name in var_rank:
            continue
        var_rank[name] = len(var_rank)
        for path, bit in zip(var.sort.bit_paths(), var.bit_names()):
            if path not in path_rank:
                path_rank[path] = len(path_rank)
            bits.append((path, bit))
    bits.sort(key=lambda item: (path_rank[item[0]], var_rank[item[1].split(".", 1)[0]]))
    return [bit for _, bit in bits]


class _Plan:
    """A compiled formula node: static skeleton plus dynamic residue.

    ``rel_names`` is the sorted tuple of relation names this subformula
    depends on; ``memo`` caches results keyed by the tuple of those
    relations' interpretations (BDD nodes are canonical, so equal nodes mean
    equal interpretations).
    """

    __slots__ = ("rel_names", "memo", "released")

    def __init__(self, rel_names: Tuple[str, ...]) -> None:
        self.rel_names = rel_names
        self.memo: Dict[Tuple[int, ...], int] = {}
        self.released = False

    def eval(self, backend: "SymbolicBackend", interps: Mapping[str, int]) -> int:
        try:
            key = tuple(interps[name] for name in self.rel_names)
        except KeyError as exc:
            raise KeyError(
                f"no interpretation provided for relation {exc.args[0]!r}"
            ) from None
        cached = self.memo.get(key)
        if cached is not None:
            backend.plan_memo_hits += 1
            return cached
        backend.plan_memo_misses += 1
        result = self._compute(backend, interps)
        self.memo[key] = result
        return result

    def _compute(self, backend: "SymbolicBackend", interps: Mapping[str, int]) -> int:
        raise NotImplementedError

    def child_plans(self) -> Tuple["_Plan", ...]:
        """Direct sub-plans (for release walks over a plan tree)."""
        return ()

    def protected_edges(self) -> Tuple[int, ...]:
        """Static edges this plan node had GC-protected at compile time."""
        return ()


class _StaticPlan(_Plan):
    """A fully relation-free subformula, compiled once at plan-build time."""

    __slots__ = ("node",)

    def __init__(self, node: int) -> None:
        super().__init__(())
        self.node = node

    def eval(self, backend: "SymbolicBackend", interps: Mapping[str, int]) -> int:
        return self.node

    def protected_edges(self) -> Tuple[int, ...]:
        return (self.node,)


class _RelAppPlan(_Plan):
    """A relation application with precompiled restrict/rename bit maps."""

    __slots__ = ("name", "restrict", "rename")

    def __init__(self, name: str, restrict: Dict[str, bool], rename: Dict[str, str]) -> None:
        super().__init__((name,))
        self.name = name
        self.restrict = restrict
        self.rename = rename

    def _compute(self, backend: "SymbolicBackend", interps: Mapping[str, int]) -> int:
        return backend._apply_relation(interps[self.name], self.restrict, self.rename)


class _NotPlan(_Plan):
    __slots__ = ("child",)

    def __init__(self, child: _Plan) -> None:
        super().__init__(child.rel_names)
        self.child = child

    def _compute(self, backend: "SymbolicBackend", interps: Mapping[str, int]) -> int:
        return backend.manager.not_(self.child.eval(backend, interps))

    def child_plans(self) -> Tuple[_Plan, ...]:
        return (self.child,)


class _NaryPlan(_Plan):
    """Conjunction/disjunction with the static parts pre-combined."""

    __slots__ = ("static_node", "children", "is_and")

    def __init__(self, static_node: int, children: Sequence[_Plan], is_and: bool) -> None:
        super().__init__(_merge_rel_names(children))
        self.static_node = static_node
        self.children = tuple(children)
        self.is_and = is_and

    def _compute(self, backend: "SymbolicBackend", interps: Mapping[str, int]) -> int:
        mgr = backend.manager
        result = self.static_node
        if self.is_and:
            for child in self.children:
                if result == mgr.FALSE:
                    return mgr.FALSE
                result = mgr.and_(result, child.eval(backend, interps))
        else:
            for child in self.children:
                if result == mgr.TRUE:
                    return mgr.TRUE
                result = mgr.or_(result, child.eval(backend, interps))
        return result

    def child_plans(self) -> Tuple[_Plan, ...]:
        return self.children

    def protected_edges(self) -> Tuple[int, ...]:
        return (self.static_node,)


class _ImpliesPlan(_Plan):
    __slots__ = ("antecedent", "consequent")

    def __init__(self, antecedent: _Plan, consequent: _Plan) -> None:
        super().__init__(_merge_rel_names((antecedent, consequent)))
        self.antecedent = antecedent
        self.consequent = consequent

    def _compute(self, backend: "SymbolicBackend", interps: Mapping[str, int]) -> int:
        return backend.manager.implies(
            self.antecedent.eval(backend, interps),
            self.consequent.eval(backend, interps),
        )

    def child_plans(self) -> Tuple[_Plan, ...]:
        return (self.antecedent, self.consequent)


class _IffPlan(_Plan):
    __slots__ = ("left", "right")

    def __init__(self, left: _Plan, right: _Plan) -> None:
        super().__init__(_merge_rel_names((left, right)))
        self.left = left
        self.right = right

    def _compute(self, backend: "SymbolicBackend", interps: Mapping[str, int]) -> int:
        return backend.manager.iff(
            self.left.eval(backend, interps), self.right.eval(backend, interps)
        )

    def child_plans(self) -> Tuple[_Plan, ...]:
        return (self.left, self.right)


class _ExistsPlan(_Plan):
    """Existential quantification fused into a relational product.

    The domain constraint of the bound variables is static and the
    quantifier cube is interned once, so each evaluation is a single
    ``and_exists`` over the dynamic body.
    """

    __slots__ = ("child", "constraint", "cube")

    def __init__(self, child: _Plan, constraint: int, cube) -> None:
        super().__init__(child.rel_names)
        self.child = child
        self.constraint = constraint
        self.cube = cube

    def _compute(self, backend: "SymbolicBackend", interps: Mapping[str, int]) -> int:
        mgr = backend.manager
        body = self.child.eval(backend, interps)
        if self.cube is None:
            return mgr.and_(body, self.constraint)
        if self.constraint == mgr.TRUE:
            return mgr.exists(body, self.cube)
        return mgr.and_exists(body, self.constraint, self.cube)

    def child_plans(self) -> Tuple[_Plan, ...]:
        return (self.child,)

    def protected_edges(self) -> Tuple[int, ...]:
        return (self.constraint,)


class _ForallPlan(_Plan):
    __slots__ = ("child", "neg_constraint", "cube")

    def __init__(self, child: _Plan, neg_constraint: int, cube) -> None:
        super().__init__(child.rel_names)
        self.child = child
        self.neg_constraint = neg_constraint
        self.cube = cube

    def _compute(self, backend: "SymbolicBackend", interps: Mapping[str, int]) -> int:
        mgr = backend.manager
        body = mgr.or_(self.child.eval(backend, interps), self.neg_constraint)
        if self.cube is None:
            return body
        return mgr.forall(body, self.cube)

    def child_plans(self) -> Tuple[_Plan, ...]:
        return (self.child,)

    def protected_edges(self) -> Tuple[int, ...]:
        return (self.neg_constraint,)


def _merge_rel_names(plans: Iterable[_Plan]) -> Tuple[str, ...]:
    names: Set[str] = set()
    for plan in plans:
        names.update(plan.rel_names)
    return tuple(sorted(names))


class SymbolicContext:
    """Owns the BDD manager and the typed-variable-to-bits mapping."""

    def __init__(
        self,
        variables: Sequence[Var],
        order: Optional[Sequence[str]] = None,
        manager: Optional[BddManager] = None,
    ) -> None:
        self.variables: Dict[str, Var] = {}
        for var in variables:
            self._record(var)
        if order is None:
            order = default_bit_order(list(self.variables.values()))
        known_bits = {
            bit for var in self.variables.values() for bit in var.bit_names()
        }
        missing = known_bits - set(order)
        extra = [name for name in order if name not in known_bits]
        if extra:
            raise ValueError(f"order mentions unknown bits: {sorted(extra)[:5]}")
        full_order = list(order) + sorted(missing)
        self.manager = manager if manager is not None else BddManager(full_order)
        if manager is not None:
            for bit in full_order:
                if bit not in manager.var_names:
                    manager.add_var(bit)
        self._domain_cache: Dict[str, int] = {}

    def _record(self, var: Var) -> None:
        name = var.__dict__["name"]
        existing = self.variables.get(name)
        if existing is not None:
            if existing.sort != var.sort:
                raise TypeError(
                    f"typed variable {name!r} declared with two different sorts"
                )
            return
        self.variables[name] = var

    # -- term-level helpers ---------------------------------------------
    def bits_of(self, term: Term) -> List[str]:
        """Bit names of a variable/field term."""
        return term.bit_names()

    def var_node(self, bit_name: str) -> int:
        """BDD node for a single bit."""
        return self.manager.var(bit_name)

    def encode_cube(self, term: Term, value: Any) -> int:
        """The cube asserting that ``term`` equals the constant ``value``."""
        bits = term.bit_names()
        encoded = term.sort.encode(value)
        return self.manager.cube(dict(zip(bits, encoded)))

    def domain_constraint(self, term: Term) -> int:
        """BDD constraining ``term`` to valid values of its sort.

        Only enum sorts whose size is not a power of two produce a non-trivial
        constraint; everything else is TRUE.  Cached constraints are
        GC-protected for the lifetime of the cache entry.
        """
        key = ".".join(term.bit_names()) + ":" + term.sort.name
        cached = self._domain_cache.get(key)
        if cached is not None:
            return cached
        node = self._domain_constraint(term.sort, term.bit_names())
        self._domain_cache[key] = self.manager.ref(node)
        return node

    def _domain_constraint(self, sort: Sort, bits: Sequence[str]) -> int:
        mgr = self.manager
        if isinstance(sort, BoolSort):
            return mgr.TRUE
        if isinstance(sort, EnumSort):
            if sort.size() == (1 << sort.width):
                return mgr.TRUE
            return mgr.disjoin(
                mgr.cube(dict(zip(bits, sort.encode(value)))) for value in sort.values()
            )
        if isinstance(sort, StructSort):
            node = mgr.TRUE
            offset = 0
            for _, field_sort in sort.fields:
                width = field_sort.width
                node = mgr.and_(
                    node, self._domain_constraint(field_sort, bits[offset : offset + width])
                )
                offset += width
            return node
        raise TypeError(f"unknown sort {sort!r}")

    def decode_assignment(self, term: Term, assignment: Mapping[str, bool]) -> Any:
        """Decode the value of ``term`` from a bit assignment (by bit name)."""
        bits = [bool(assignment.get(name, False)) for name in term.bit_names()]
        return term.sort.decode(bits)

    def clear_caches(self) -> None:
        """Drop the context's own caches *and* the manager's operation caches.

        The manager's :meth:`~repro.bdd.BddManager.clear_caches` does not know
        about this context's domain-constraint cache; engines reusing a
        context between runs should call this method instead so the two stay
        in sync.  Cached domain constraints are dereferenced (they become
        collectable) and the manager also resets its statistics and GC
        bookkeeping, so snapshots taken after a clear describe a fresh run.
        """
        for node in self._domain_cache.values():
            self.manager.deref(node)
        self._domain_cache.clear()
        self.manager.clear_caches()


class SymbolicBackend:
    """Evaluates calculus formulas and equations as BDDs.

    Parameters
    ----------
    system:
        The equation system whose relations will be evaluated.
    extra_variables:
        Additional typed variables to allocate bits for (for example the
        canonical parameters used by an encoder when building the input
        relations) beyond those appearing in the equations.
    order:
        Optional explicit bit order; defaults to :func:`default_bit_order`.
    manager:
        Optional pre-built :class:`BddManager` to evaluate in (for example a
        snapshot overlay attached to a frozen solved table); its existing
        variable order is adopted as the bit order.  Mutually exclusive with
        ``order`` and ``context``.
    """

    def __init__(
        self,
        system: EquationSystem,
        extra_variables: Sequence[Var] = (),
        order: Optional[Sequence[str]] = None,
        context: Optional[SymbolicContext] = None,
        manager: Optional[BddManager] = None,
    ) -> None:
        self.system = system
        variables: List[Var] = []
        for equation in system.equations.values():
            variables.extend(equation.decl.param_vars())
            variables.extend(all_vars(equation.body).values())
        for decl in system.inputs.values():
            variables.extend(decl.param_vars())
        variables.extend(extra_variables)
        if manager is not None:
            if context is not None or order is not None:
                raise ValueError("manager is mutually exclusive with order/context")
            # An adopted manager (snapshot overlay, shared context) may own
            # levels beyond this system's declared bits — e.g. lazily
            # allocated nondet choice bits from a previous encode.  Those
            # levels stay valid in the manager; the context order only maps
            # the bits this system declares.
            known_bits = {
                bit for var in variables for bit in var.bit_names()
            }
            context = SymbolicContext(
                variables,
                order=[name for name in manager.var_names if name in known_bits],
                manager=manager,
            )
        self.context = context if context is not None else SymbolicContext(variables, order=order)
        self.manager = self.context.manager
        # Compiled equation bodies (name -> (equation, plan)) plus hoisting
        # statistics; see the module docstring on static-formula hoisting.
        self._equation_plans: Dict[str, Tuple[Equation, _Plan]] = {}
        self.static_hoists = 0
        self.plan_memo_hits = 0
        self.plan_memo_misses = 0
        # GC contract: memos of every compiled plan (cleared when a sweep
        # reclaims nodes, keyed by identity for O(1) release) and reference
        # counts of the static edges protected for plan lifetime.
        self._plan_memos: Dict[int, Dict[Tuple[int, ...], int]] = {}
        self._protected: Dict[int, int] = {}
        # Retained-interpretation protocol: reference counts of interpretation
        # edges a session keeps alive *across* queries (see retain/release).
        self._retained: Dict[int, int] = {}
        self.gc_steps = 0
        self.gc_collections = 0
        self.manager.add_gc_hook(self._clear_plan_memos)

    # -- backend protocol -------------------------------------------------
    def empty(self, decl: RelationDecl) -> int:
        """The empty interpretation (used to start fixed-point iteration)."""
        return self.manager.FALSE

    def equal(self, left: int, right: int) -> bool:
        """Interpretation equality (BDDs are canonical, so node equality)."""
        return left == right

    def eval_equation(self, equation: Equation, interps: Mapping[str, int]) -> int:
        """Evaluate the body of an equation under the given interpretations.

        The body is compiled to a hoisted plan the first time it is seen;
        subsequent evaluations reuse the plan (and its interpretation-keyed
        memo), so iterations whose relevant relations did not change cost a
        dictionary lookup.
        """
        name = equation.decl.name
        entry = self._equation_plans.get(name)
        if entry is None or entry[0] is not equation:
            if entry is not None:
                # A caller handed us a rebuilt Equation for the same
                # relation: release the superseded plan tree so its memos
                # and protected skeletons do not accumulate forever.
                self._release_plan(entry[1])
            plan = self.compile_formula(equation.body)
            self._equation_plans[name] = (equation, plan)
        else:
            plan = entry[1]
        return plan.eval(self, interps)

    # -- formula hoisting --------------------------------------------------
    def compile_formula(self, formula: Formula) -> _Plan:
        """Partition ``formula`` into a static BDD skeleton + dynamic residue.

        Static edges baked into the returned plan are GC-protected and every
        plan memo is registered for invalidation on collection.
        """
        if not relations_of(formula):
            self.static_hoists += 1
            return self._register(_StaticPlan(self._protect(self.eval_formula(formula, {}))))
        mgr = self.manager
        if isinstance(formula, RelApp):
            restrict, rename = self._rel_app_maps(formula)
            return self._register(_RelAppPlan(formula.decl.name, restrict, rename))
        if isinstance(formula, Not):
            return self._register(_NotPlan(self.compile_formula(formula.body)))
        if isinstance(formula, (And, Or)):
            is_and = isinstance(formula, And)
            static_parts: List[Formula] = []
            dynamic_parts: List[Formula] = []
            for part in formula.parts:
                (dynamic_parts if relations_of(part) else static_parts).append(part)
            if is_and:
                static_node = mgr.conjoin(
                    self.eval_formula(part, {}) for part in static_parts
                )
            else:
                static_node = mgr.disjoin(
                    self.eval_formula(part, {}) for part in static_parts
                )
            if static_parts:
                self.static_hoists += 1
            children = [self.compile_formula(part) for part in dynamic_parts]
            return self._register(_NaryPlan(self._protect(static_node), children, is_and))
        if isinstance(formula, Implies):
            return self._register(
                _ImpliesPlan(
                    self.compile_formula(formula.antecedent),
                    self.compile_formula(formula.consequent),
                )
            )
        if isinstance(formula, Iff):
            return self._register(
                _IffPlan(
                    self.compile_formula(formula.left), self.compile_formula(formula.right)
                )
            )
        if isinstance(formula, Exists):
            child = self.compile_formula(formula.body)
            constraint = mgr.conjoin(
                self.context.domain_constraint(var) for var in formula.variables
            )
            bits: List[str] = []
            for var in formula.variables:
                bits.extend(var.bit_names())
            self.static_hoists += 1
            return self._register(
                _ExistsPlan(child, self._protect(constraint), mgr.quant_cube(bits))
            )
        if isinstance(formula, Forall):
            child = self.compile_formula(formula.body)
            constraint = mgr.conjoin(
                self.context.domain_constraint(var) for var in formula.variables
            )
            bits = []
            for var in formula.variables:
                bits.extend(var.bit_names())
            self.static_hoists += 1
            return self._register(
                _ForallPlan(child, self._protect(mgr.not_(constraint)), mgr.quant_cube(bits))
            )
        raise TypeError(f"cannot compile formula node {formula!r}")

    def _register(self, plan: _Plan) -> _Plan:
        """Track a plan's memo so GC sweeps can invalidate it."""
        self._plan_memos[id(plan.memo)] = plan.memo
        return plan

    def _protect(self, node: int) -> int:
        """GC-protect a static edge for the lifetime of this backend."""
        self.manager.ref(node)
        self._protected[node] = self._protected.get(node, 0) + 1
        return node

    def _release_plan(self, plan: _Plan) -> None:
        """Undo registration/protection for a superseded plan tree.

        Releasing is guarded twice: each plan node releases at most once
        (``released`` flag), and each deref is conditional on the tracked
        protection count.  Without the guards, releasing a tree twice — or
        after :meth:`close` already dropped the bookkeeping — would deref a
        protection that by then belongs to another owner (a sibling plan
        baking in the same static edge, or the context's domain-constraint
        cache), letting a sweep reclaim an edge that owner still hands out.
        """
        stack = [plan]
        while stack:
            node = stack.pop()
            stack.extend(node.child_plans())
            if node.released:
                continue
            node.released = True
            self._plan_memos.pop(id(node.memo), None)
            for edge in node.protected_edges():
                count = self._protected.get(edge, 0)
                if count <= 0:
                    continue
                self.manager.deref(edge)
                if count == 1:
                    del self._protected[edge]
                else:
                    self._protected[edge] = count - 1

    def _clear_plan_memos(self) -> None:
        for memo in self._plan_memos.values():
            memo.clear()

    # -- retained interpretations -------------------------------------------
    #
    # The session API keeps fixed-point interpretations (and per-target
    # template relations) alive *between* queries.  Evaluators only hand out
    # unprotected edges, so a session must pin them explicitly; routing the
    # pin through the backend (instead of raw ``manager.ref``) keeps the
    # bookkeeping in one place, makes :meth:`close` release *everything* the
    # backend ever protected — static skeletons and retained interpretations
    # alike — and is GC-hook-safe: a retained edge is an external root for
    # mark-and-sweep, while the plan memos that may mention it are cleared by
    # the registered GC hook whenever a sweep reclaims nodes.

    def retain(self, edge: int) -> int:
        """GC-protect an interpretation edge across queries.

        Returns the edge for call chaining.  Balanced by :meth:`release`;
        :meth:`close` releases any outstanding retentions.
        """
        self.manager.ref(edge)
        self._retained[edge] = self._retained.get(edge, 0) + 1
        return edge

    def release(self, edge: int) -> None:
        """Undo one :meth:`retain` of ``edge`` (no-op when not retained).

        The count guard mirrors :meth:`_release_plan`: releasing an edge this
        backend no longer tracks must not deref a reference that by now
        belongs to another owner.
        """
        count = self._retained.get(edge, 0)
        if count <= 0:
            return
        self.manager.deref(edge)
        if count == 1:
            del self._retained[edge]
        else:
            self._retained[edge] = count - 1

    def retained_count(self) -> int:
        """Number of distinct interpretation edges currently retained."""
        return len(self._retained)

    # -- garbage collection ------------------------------------------------
    def gc_step(self, roots: Iterable[int]) -> bool:
        """Safe-point collection trigger for evaluators.

        ``roots`` must enumerate every interpretation edge the caller still
        needs (current/updated relation values and the fixed inputs); the
        statically protected plan skeletons are already tracked as external
        references.  Returns True when a collection actually ran.

        Safe points are also where the manager enforces an armed deadline /
        node budget (see :meth:`BddManager.maybe_collect`) and where the
        fault-injection harness can raise deterministically.
        """
        self.gc_steps += 1
        faults.on_safe_point()
        collected = self.manager.maybe_collect(roots)
        if collected:
            self.gc_collections += 1
        return collected

    def clear_caches(self) -> None:
        """Reset every run-scoped cache and counter across the stack.

        Clears the plan memos and memo counters of this backend, the
        context's domain-constraint cache, and the manager's operation
        caches, statistics and GC bookkeeping (via
        :meth:`SymbolicContext.clear_caches`).  Compiled plans and their
        protected static skeletons survive — recompilation is never needed.
        """
        self._clear_plan_memos()
        self.plan_memo_hits = 0
        self.plan_memo_misses = 0
        self.gc_steps = 0
        self.gc_collections = 0
        self.context.clear_caches()

    def close(self) -> None:
        """Detach this backend from its manager (idempotent).

        Unregisters the GC hook and dereferences every protected static
        skeleton *and* every retained interpretation edge (see
        :meth:`retain`), making the backend's nodes collectable — after a
        close plus a sweep, the manager's live-node count and external
        references are back to what they were before this backend existed.
        Required only when the manager outlives the backend — i.e. several
        backends share one :class:`SymbolicContext`, or a session releases
        its compiled artifacts; the per-run engines drop manager and backend
        together and never need it.  A closed backend must not be used for
        further evaluation.
        """
        self.manager.remove_gc_hook(self._clear_plan_memos)
        for node, count in self._protected.items():
            for _ in range(count):
                self.manager.deref(node)
        self._protected.clear()
        for node, count in self._retained.items():
            for _ in range(count):
                self.manager.deref(node)
        self._retained.clear()
        self._clear_plan_memos()
        self._plan_memos.clear()
        self._equation_plans.clear()

    def stats_snapshot(self) -> Dict[str, object]:
        """Hoisting/memo/GC counters of this backend plus the manager's stats."""
        total = self.plan_memo_hits + self.plan_memo_misses
        return {
            "static_hoists": self.static_hoists,
            "plan_memo_hits": self.plan_memo_hits,
            "plan_memo_misses": self.plan_memo_misses,
            "plan_memo_hit_rate": (self.plan_memo_hits / total) if total else 0.0,
            "compiled_equations": len(self._equation_plans),
            "compiled_plans": len(self._plan_memos),
            "protected_nodes": len(self._protected),
            "retained_edges": len(self._retained),
            "gc_steps": self.gc_steps,
            "gc_collections": self.gc_collections,
            "manager": self.manager.stats(),
        }

    # -- formula compilation ----------------------------------------------
    def eval_formula(self, formula: Formula, interps: Mapping[str, int]) -> int:
        """Compile a formula to a BDD over the bits of its free variables."""
        mgr = self.manager
        if isinstance(formula, Top):
            return mgr.TRUE
        if isinstance(formula, Bottom):
            return mgr.FALSE
        if isinstance(formula, BoolAtom):
            return self._bool_term(formula.term)
        if isinstance(formula, Eq):
            return self._equality(formula.left, formula.right)
        if isinstance(formula, (Le, Lt, Succ)):
            return self._enum_compare(formula)
        if isinstance(formula, RelApp):
            return self._rel_app(formula, interps)
        if isinstance(formula, Not):
            return mgr.not_(self.eval_formula(formula.body, interps))
        if isinstance(formula, And):
            return mgr.conjoin(self.eval_formula(part, interps) for part in formula.parts)
        if isinstance(formula, Or):
            return mgr.disjoin(self.eval_formula(part, interps) for part in formula.parts)
        if isinstance(formula, Implies):
            return mgr.implies(
                self.eval_formula(formula.antecedent, interps),
                self.eval_formula(formula.consequent, interps),
            )
        if isinstance(formula, Iff):
            return mgr.iff(
                self.eval_formula(formula.left, interps),
                self.eval_formula(formula.right, interps),
            )
        if isinstance(formula, Exists):
            body = self.eval_formula(formula.body, interps)
            bits: List[str] = []
            for var in formula.variables:
                body = mgr.and_(body, self.context.domain_constraint(var))
                bits.extend(var.bit_names())
            return mgr.exists(body, bits)
        if isinstance(formula, Forall):
            body = self.eval_formula(formula.body, interps)
            bits = []
            for var in formula.variables:
                body = mgr.or_(body, mgr.not_(self.context.domain_constraint(var)))
                bits.extend(var.bit_names())
            return mgr.forall(body, bits)
        raise TypeError(f"cannot compile formula node {formula!r}")

    # -- atoms -------------------------------------------------------------
    def _bool_term(self, term: Term) -> int:
        if isinstance(term, Const):
            return self.manager.TRUE if term.value else self.manager.FALSE
        (bit,) = term.bit_names()
        return self.manager.var(bit)

    def _equality(self, left: Term, right: Term) -> int:
        mgr = self.manager
        if isinstance(left, Const) and isinstance(right, Const):
            return mgr.TRUE if left.value == right.value else mgr.FALSE
        if isinstance(left, Const):
            left, right = right, left
        if isinstance(right, Const):
            return self.context.encode_cube(left, right.value)
        left_bits = left.bit_names()
        right_bits = right.bit_names()
        return mgr.conjoin(
            mgr.iff(mgr.var(a), mgr.var(b)) for a, b in zip(left_bits, right_bits)
        )

    def _enum_compare(self, formula: Formula) -> int:
        mgr = self.manager
        left, right = formula.left, formula.right  # type: ignore[attr-defined]
        sort: EnumSort = left.sort  # type: ignore[assignment]
        if isinstance(formula, Le):
            relation = lambda a, b: a <= b
        elif isinstance(formula, Lt):
            relation = lambda a, b: a < b
        else:  # Succ
            relation = lambda a, b: b == a + 1
        disjuncts = []
        for a in sort.values():
            for b in sort.values():
                if not relation(a, b):
                    continue
                cube = mgr.TRUE
                cube = mgr.and_(cube, self._term_equals_value(left, a))
                cube = mgr.and_(cube, self._term_equals_value(right, b))
                if cube != mgr.FALSE:
                    disjuncts.append(cube)
        return mgr.disjoin(disjuncts)

    def _term_equals_value(self, term: Term, value: Any) -> int:
        if isinstance(term, Const):
            return self.manager.TRUE if term.value == value else self.manager.FALSE
        return self.context.encode_cube(term, value)

    # -- relation application ------------------------------------------------
    def _rel_app_maps(self, formula: RelApp) -> Tuple[Dict[str, bool], Dict[str, str]]:
        """The restrict (bit -> constant) and rename (bit -> bit) maps of an
        application of a relation to argument terms."""
        restrict: Dict[str, bool] = {}
        rename: Dict[str, str] = {}
        for (param_name, sort), arg in zip(formula.decl.params, formula.args):
            param_bits = Var(param_name, sort).bit_names()
            if isinstance(arg, Const):
                for bit, value in zip(param_bits, sort.encode(arg.value)):
                    restrict[bit] = value
            else:
                for bit, target in zip(param_bits, arg.bit_names()):
                    if bit != target:
                        rename[bit] = target
        return restrict, rename

    def _rel_app(self, formula: RelApp, interps: Mapping[str, int]) -> int:
        decl = formula.decl
        if decl.name not in interps:
            raise KeyError(f"no interpretation provided for relation {decl.name!r}")
        restrict, rename = self._rel_app_maps(formula)
        return self._apply_relation(interps[decl.name], restrict, rename)

    def _apply_relation(self, node: int, restrict: Dict[str, bool], rename: Dict[str, str]) -> int:
        mgr = self.manager
        if restrict:
            node = mgr.restrict(node, restrict)
        if not rename:
            return node
        targets = list(rename.values())
        if len(set(targets)) == len(targets):
            # The manager validates the clash condition itself (and its
            # cross-call cache makes repeated renames O(1) without any
            # support walk); only genuinely clashing applications fall
            # through to the general path.
            try:
                return mgr.rename(node, rename)
            except BddError:
                pass
        # General (and always correct) fall-back: conjoin bit equalities and
        # quantify the canonical parameter bits away.  If some source bit is
        # also a rename target (the relation is applied to a permutation of
        # its own parameters in a non-injective way), first move those source
        # bits to dedicated temporary bits so the quantification cannot
        # capture the targets.
        overlap = set(rename) & set(targets)
        if overlap:
            stage_one: Dict[str, str] = {}
            for bit in overlap:
                temp = f"__tmp.{bit}"
                if temp not in mgr.var_names:
                    mgr.add_var(temp)
                stage_one[bit] = temp
            node = mgr.rename(node, stage_one)
            rename = {stage_one.get(src, src): dst for src, dst in rename.items()}
        equalities = mgr.conjoin(
            mgr.iff(mgr.var(src), mgr.var(dst)) for src, dst in rename.items()
        )
        return mgr.and_exists(node, equalities, list(rename))

    # -- result inspection -----------------------------------------------------
    def models(self, node: int, decl: RelationDecl) -> Iterator[Tuple[Any, ...]]:
        """Enumerate the tuples of a relation interpretation (decoded values)."""
        params = decl.param_vars()
        bits: List[str] = []
        for var in params:
            bits.extend(var.bit_names())
        for assignment in self.manager.sat_all(node, bits):
            named = {self.manager.var_name(index): value for index, value in assignment.items()}
            values = tuple(self.context.decode_assignment(var, named) for var in params)
            # Skip assignments whose enum bits encode out-of-range junk values.
            if all(var.sort.is_valid(value) for var, value in zip(params, values)):
                yield values

    def count(self, node: int, decl: RelationDecl) -> int:
        """Number of tuples in an interpretation (over the raw bit encoding)."""
        bits: List[str] = []
        for var in decl.param_vars():
            bits.extend(var.bit_names())
        return self.manager.count_sat(node, bits)

    def node_count(self, node: int) -> int:
        """BDD size of an interpretation."""
        return self.manager.node_count(node)
