"""Formulas of the fixed-point calculus.

A formula is built from:

* atoms — relation applications, (in)equalities over terms, Boolean terms used
  directly as atoms, the constants ``TRUE`` and ``FALSE``;
* connectives — negation, conjunction, disjunction, implication, biconditional;
* first-order quantifiers over typed variables (``Exists`` / ``Forall``).

Relation applications refer to :class:`~repro.fixedpoint.relations.RelationDecl`
objects; a formula never stores an interpretation itself — interpretations are
supplied by the evaluation backends.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .sorts import BOOL, BoolSort, EnumSort, Sort, StructSort
from .terms import Const, Term, Var, as_term

__all__ = [
    "Formula",
    "Top",
    "Bottom",
    "TRUE",
    "FALSE",
    "BoolAtom",
    "RelApp",
    "Eq",
    "Le",
    "Lt",
    "Succ",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Exists",
    "Forall",
    "free_vars",
    "all_vars",
    "relations_of",
    "coerce",
]


class Formula:
    """Base class of calculus formulas (immutable)."""

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, coerce(other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, coerce(other))

    def __invert__(self) -> "Formula":
        return Not(self)

    def children(self) -> Tuple["Formula", ...]:
        """Immediate sub-formulas."""
        return ()

    def terms(self) -> Tuple[Term, ...]:
        """Terms appearing directly in this node."""
        return ()


def coerce(value: Any) -> Formula:
    """Coerce a Python Boolean or Boolean-sorted term into a formula."""
    if isinstance(value, Formula):
        return value
    if isinstance(value, bool):
        return TRUE if value else FALSE
    if isinstance(value, Term) and isinstance(value.sort, BoolSort):
        return BoolAtom(value)
    raise TypeError(f"cannot interpret {value!r} as a formula")


class Top(Formula):
    """The constant-true formula."""

    def __repr__(self) -> str:
        return "TRUE"


class Bottom(Formula):
    """The constant-false formula."""

    def __repr__(self) -> str:
        return "FALSE"


TRUE = Top()
FALSE = Bottom()


class BoolAtom(Formula):
    """A Boolean-sorted term used directly as an atomic formula."""

    def __init__(self, term: Term) -> None:
        if not isinstance(term.sort, BoolSort):
            raise TypeError("BoolAtom requires a Boolean-sorted term")
        self.term = term

    def terms(self) -> Tuple[Term, ...]:
        return (self.term,)

    def __repr__(self) -> str:
        return f"BoolAtom({self.term!r})"


class RelApp(Formula):
    """Application of a declared relation to argument terms."""

    def __init__(self, decl: "RelationDecl", args: Sequence[Term]) -> None:  # noqa: F821
        from .relations import RelationDecl  # local import to avoid a cycle

        if not isinstance(decl, RelationDecl):
            raise TypeError("RelApp requires a RelationDecl")
        if len(args) != len(decl.params):
            raise TypeError(
                f"relation {decl.name} expects {len(decl.params)} arguments, got {len(args)}"
            )
        args = [as_term(arg, sort) for arg, (_, sort) in zip(args, decl.params)]
        for arg, (param_name, sort) in zip(args, decl.params):
            if arg.sort != sort:
                raise TypeError(
                    f"argument {param_name} of {decl.name}: expected sort "
                    f"{sort.name}, got {arg.sort.name}"
                )
        self.decl = decl
        self.args = tuple(args)

    def terms(self) -> Tuple[Term, ...]:
        return self.args

    def __repr__(self) -> str:
        return f"{self.decl.name}({', '.join(map(repr, self.args))})"


class _BinaryTermAtom(Formula):
    """Shared implementation of the binary atoms on terms."""

    op_name = "?"

    def __init__(self, left: Any, right: Any) -> None:
        left_term = left if isinstance(left, Term) else None
        right_term = right if isinstance(right, Term) else None
        if left_term is None and right_term is None:
            raise TypeError(f"{self.op_name} needs at least one proper term")
        # Coerce Python constants using the sort of the other side.
        if left_term is None:
            left_term = as_term(left, right_term.sort)
        if right_term is None:
            right_term = as_term(right, left_term.sort)
        self.left = left_term
        self.right = right_term
        self._check_sorts()

    def _check_sorts(self) -> None:
        if self.left.sort != self.right.sort:
            raise TypeError(
                f"{self.op_name} requires equal sorts, got "
                f"{self.left.sort.name} and {self.right.sort.name}"
            )

    def terms(self) -> Tuple[Term, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"{self.op_name}({self.left!r}, {self.right!r})"


class Eq(_BinaryTermAtom):
    """Equality of two terms of the same sort (bitwise for structs)."""

    op_name = "Eq"


class _EnumTermAtom(_BinaryTermAtom):
    def _check_sorts(self) -> None:
        super()._check_sorts()
        if not isinstance(self.left.sort, EnumSort):
            raise TypeError(f"{self.op_name} is only defined on enum sorts")


class Le(_EnumTermAtom):
    """``left <= right`` on enum-sorted terms."""

    op_name = "Le"


class Lt(_EnumTermAtom):
    """``left < right`` on enum-sorted terms."""

    op_name = "Lt"


class Succ(_EnumTermAtom):
    """``right = left + 1`` on enum-sorted terms."""

    op_name = "Succ"


class Not(Formula):
    """Negation."""

    def __init__(self, body: Any) -> None:
        self.body = coerce(body)

    def children(self) -> Tuple[Formula, ...]:
        return (self.body,)

    def __repr__(self) -> str:
        return f"Not({self.body!r})"


class _Nary(Formula):
    symbol = "?"

    def __init__(self, *parts: Any) -> None:
        flat: List[Formula] = []
        for part in parts:
            part = coerce(part)
            if isinstance(part, type(self)):
                flat.extend(part.parts)
            else:
                flat.append(part)
        self.parts: Tuple[Formula, ...] = tuple(flat)

    def children(self) -> Tuple[Formula, ...]:
        return self.parts

    def __repr__(self) -> str:
        return f"({f' {self.symbol} '.join(map(repr, self.parts))})"


class And(_Nary):
    """Conjunction of zero or more formulas (empty conjunction is TRUE)."""

    symbol = "&"


class Or(_Nary):
    """Disjunction of zero or more formulas (empty disjunction is FALSE)."""

    symbol = "|"


class Implies(Formula):
    """Implication."""

    def __init__(self, antecedent: Any, consequent: Any) -> None:
        self.antecedent = coerce(antecedent)
        self.consequent = coerce(consequent)

    def children(self) -> Tuple[Formula, ...]:
        return (self.antecedent, self.consequent)

    def __repr__(self) -> str:
        return f"({self.antecedent!r} -> {self.consequent!r})"


class Iff(Formula):
    """Biconditional."""

    def __init__(self, left: Any, right: Any) -> None:
        self.left = coerce(left)
        self.right = coerce(right)

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} <-> {self.right!r})"


class _Quantifier(Formula):
    word = "?"

    def __init__(self, variables: Sequence[Var] | Var, body: Any) -> None:
        if isinstance(variables, Var):
            variables = [variables]
        variables = list(variables)
        if not variables:
            raise ValueError(f"{self.word} needs at least one variable")
        for var in variables:
            if not isinstance(var, Var):
                raise TypeError(f"{self.word} binds Var objects, got {var!r}")
        names = [var.__dict__["name"] for var in variables]
        if len(set(names)) != len(names):
            raise ValueError(f"{self.word} binds a variable twice: {names}")
        self.variables: Tuple[Var, ...] = tuple(variables)
        self.body = coerce(body)

    def children(self) -> Tuple[Formula, ...]:
        return (self.body,)

    def __repr__(self) -> str:
        names = ", ".join(var.__dict__["name"] for var in self.variables)
        return f"({self.word} {names}. {self.body!r})"


class Exists(_Quantifier):
    """Existential quantification over typed variables."""

    word = "exists"


class Forall(_Quantifier):
    """Universal quantification over typed variables."""

    word = "forall"


# ---------------------------------------------------------------------------
# Structural queries
# ---------------------------------------------------------------------------
def _term_vars(term: Term) -> Set[Var]:
    root = term.root_var()
    return set() if root is None else {root}


def free_vars(formula: Formula) -> Dict[str, Var]:
    """The free typed variables of a formula, keyed by name."""
    result: Dict[str, Var] = {}

    def walk(node: Formula, bound: Set[str]) -> None:
        for term in node.terms():
            root = term.root_var()
            if root is not None and root.__dict__["name"] not in bound:
                _record(result, root)
        if isinstance(node, _Quantifier):
            inner = bound | {var.__dict__["name"] for var in node.variables}
            walk(node.body, inner)
        else:
            for child in node.children():
                walk(child, bound)

    walk(formula, set())
    return result


def all_vars(formula: Formula) -> Dict[str, Var]:
    """All typed variables of a formula (free and bound), keyed by name."""
    result: Dict[str, Var] = {}

    def walk(node: Formula) -> None:
        for term in node.terms():
            root = term.root_var()
            if root is not None:
                _record(result, root)
        if isinstance(node, _Quantifier):
            for var in node.variables:
                _record(result, var)
        for child in node.children():
            walk(child)

    walk(formula)
    return result


def _record(result: Dict[str, Var], var: Var) -> None:
    name = var.__dict__["name"]
    existing = result.get(name)
    if existing is not None and existing.sort != var.sort:
        raise TypeError(
            f"variable {name!r} used with two different sorts "
            f"({existing.sort.name} and {var.sort.name})"
        )
    result[name] = var


def relations_of(formula: Formula) -> Set[str]:
    """Names of all relations applied anywhere inside the formula."""
    result: Set[str] = set()

    def walk(node: Formula) -> None:
        if isinstance(node, RelApp):
            result.add(node.decl.name)
        for child in node.children():
            walk(child)

    walk(formula)
    return result
