"""Typed finite domains ("sorts") for the fixed-point calculus.

The calculus of the paper is first-order logic over the Boolean domain; in
practice (and in MUCKE) formulas quantify over *typed* finite domains such as
program counters, module names, or whole program states.  Every sort in this
module has a fixed binary encoding, so a typed variable is just a named group
of BDD bits and a typed value is a vector of Booleans.

Three sorts are provided:

* :class:`BoolSort` — a single bit.
* :class:`EnumSort` — the integers ``0 .. size-1``, encoded in
  ``ceil(log2(size))`` bits (little-endian).
* :class:`StructSort` — a record of named fields, each with its own sort;
  its encoding is the concatenation of the field encodings.  Program states
  (module, pc, locals, globals) are struct sorts whose leaves are Booleans and
  enums.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Sequence, Tuple

__all__ = ["Sort", "BoolSort", "EnumSort", "StructSort", "BOOL"]


class Sort:
    """Base class of all sorts."""

    name: str

    def bit_paths(self) -> List[str]:
        """The dotted paths of the bits of this sort, in encoding order.

        A scalar sort has the single path ``""``; a struct sort returns paths
        like ``"pc.0"`` or ``"L.x"``.
        """
        raise NotImplementedError

    @property
    def width(self) -> int:
        """Number of bits in the encoding."""
        return len(self.bit_paths())

    def encode(self, value: Any) -> List[bool]:
        """Encode a value of this sort as a list of bits (in bit-path order)."""
        raise NotImplementedError

    def decode(self, bits: Sequence[bool]) -> Any:
        """Decode a bit vector (in bit-path order) back into a value."""
        raise NotImplementedError

    def values(self) -> Iterator[Any]:
        """Iterate over every value of the sort (used by the explicit backend)."""
        raise NotImplementedError

    def size(self) -> int:
        """Number of values of the sort."""
        raise NotImplementedError

    def is_valid(self, value: Any) -> bool:
        """True iff ``value`` belongs to this sort."""
        raise NotImplementedError

    def canonical(self, value: Any) -> Any:
        """Return the canonical (hashable) representation of a value."""
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.name!r})"


class BoolSort(Sort):
    """The Boolean sort (a single bit)."""

    def __init__(self) -> None:
        self.name = "bool"

    def bit_paths(self) -> List[str]:
        return [""]

    def encode(self, value: Any) -> List[bool]:
        return [bool(value)]

    def decode(self, bits: Sequence[bool]) -> bool:
        if len(bits) != 1:
            raise ValueError("BoolSort decodes exactly one bit")
        return bool(bits[0])

    def values(self) -> Iterator[bool]:
        yield False
        yield True

    def size(self) -> int:
        return 2

    def is_valid(self, value: Any) -> bool:
        return isinstance(value, bool) or value in (0, 1)

    def canonical(self, value: Any) -> bool:
        return bool(value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BoolSort)

    def __hash__(self) -> int:
        return hash("BoolSort")


#: The shared Boolean sort instance.
BOOL = BoolSort()


class EnumSort(Sort):
    """The finite domain ``{0, ..., size - 1}`` with a binary encoding."""

    def __init__(self, name: str, size: int) -> None:
        if size < 1:
            raise ValueError("EnumSort size must be at least 1")
        self.name = name
        self._size = size
        self._width = max(1, (size - 1).bit_length())

    def bit_paths(self) -> List[str]:
        return [str(i) for i in range(self._width)]

    def encode(self, value: Any) -> List[bool]:
        value = int(value)
        if not 0 <= value < self._size:
            raise ValueError(f"value {value} out of range for {self.name} (size {self._size})")
        return [bool((value >> i) & 1) for i in range(self._width)]

    def decode(self, bits: Sequence[bool]) -> int:
        if len(bits) != self._width:
            raise ValueError(f"{self.name} decodes exactly {self._width} bits")
        value = sum((1 << i) for i, bit in enumerate(bits) if bit)
        return value

    def values(self) -> Iterator[int]:
        return iter(range(self._size))

    def size(self) -> int:
        return self._size

    def is_valid(self, value: Any) -> bool:
        return isinstance(value, int) and 0 <= value < self._size

    def canonical(self, value: Any) -> int:
        return int(value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, EnumSort)
            and other.name == self.name
            and other._size == self._size
        )

    def __hash__(self) -> int:
        return hash(("EnumSort", self.name, self._size))

    def __repr__(self) -> str:  # pragma: no cover
        return f"EnumSort({self.name!r}, size={self._size})"


class StructSort(Sort):
    """A record sort: an ordered collection of named, typed fields.

    Values are dictionaries mapping each field name to a value of the field's
    sort; the canonical (hashable) representation is the tuple of canonical
    field values in declaration order.
    """

    def __init__(self, name: str, fields: Sequence[Tuple[str, Sort]]) -> None:
        self.name = name
        self.fields: Tuple[Tuple[str, Sort], ...] = tuple(fields)
        names = [field_name for field_name, _ in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in struct {name!r}")
        self._field_index: Dict[str, int] = {field: i for i, (field, _) in enumerate(self.fields)}

    def field_sort(self, field: str) -> Sort:
        """Return the sort of a field."""
        try:
            return self.fields[self._field_index[field]][1]
        except KeyError:
            raise KeyError(f"struct {self.name!r} has no field {field!r}") from None

    def has_field(self, field: str) -> bool:
        """True iff the struct declares the field."""
        return field in self._field_index

    def field_names(self) -> List[str]:
        """Field names in declaration order."""
        return [field for field, _ in self.fields]

    def bit_paths(self) -> List[str]:
        paths: List[str] = []
        for field, sort in self.fields:
            for sub in sort.bit_paths():
                paths.append(field if sub == "" else f"{field}.{sub}")
        return paths

    def encode(self, value: Any) -> List[bool]:
        bits: List[bool] = []
        for field, sort in self.fields:
            if isinstance(value, dict):
                field_value = value[field]
            else:  # allow canonical tuples
                field_value = value[self._field_index[field]]
            bits.extend(sort.encode(field_value))
        return bits

    def decode(self, bits: Sequence[bool]) -> Dict[str, Any]:
        result: Dict[str, Any] = {}
        offset = 0
        for field, sort in self.fields:
            width = sort.width
            result[field] = sort.decode(bits[offset : offset + width])
            offset += width
        if offset != len(bits):
            raise ValueError(f"{self.name} decodes exactly {offset} bits")
        return result

    def values(self) -> Iterator[Tuple[Any, ...]]:
        def recurse(index: int, partial: List[Any]) -> Iterator[Tuple[Any, ...]]:
            if index == len(self.fields):
                yield tuple(partial)
                return
            _, sort = self.fields[index]
            for value in sort.values():
                partial.append(sort.canonical(value))
                yield from recurse(index + 1, partial)
                partial.pop()

        return recurse(0, [])

    def size(self) -> int:
        total = 1
        for _, sort in self.fields:
            total *= sort.size()
        return total

    def is_valid(self, value: Any) -> bool:
        if isinstance(value, dict):
            if set(value) != set(self._field_index):
                return False
            return all(sort.is_valid(value[field]) for field, sort in self.fields)
        if isinstance(value, tuple):
            if len(value) != len(self.fields):
                return False
            return all(sort.is_valid(value[i]) for i, (_, sort) in enumerate(self.fields))
        return False

    def canonical(self, value: Any) -> Tuple[Any, ...]:
        if isinstance(value, tuple):
            return tuple(
                sort.canonical(value[i]) for i, (_, sort) in enumerate(self.fields)
            )
        return tuple(sort.canonical(value[field]) for field, sort in self.fields)

    def as_dict(self, value: Any) -> Dict[str, Any]:
        """Convert a canonical tuple (or dict) value into a field dictionary."""
        if isinstance(value, dict):
            return dict(value)
        return {field: value[i] for i, (field, _) in enumerate(self.fields)}

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StructSort)
            and other.name == self.name
            and other.fields == self.fields
        )

    def __hash__(self) -> int:
        return hash(("StructSort", self.name, self.fields))

    def __repr__(self) -> str:  # pragma: no cover
        return f"StructSort({self.name!r}, fields={[f for f, _ in self.fields]})"
