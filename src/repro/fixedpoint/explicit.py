"""Explicit (enumerative) backend of the fixed-point calculus.

This backend represents a relation interpretation as a frozen set of tuples of
canonical values and evaluates formulas by enumerating variable domains.  It
is exponential in every dimension and exists for two purposes:

* it is the *reference semantics* against which the symbolic backend is tested
  (differential and property-based tests), and
* it lets tiny equation systems be explored and debugged interactively.

Do not use it to model-check programs of any size.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Iterable, Mapping, Tuple

from .formulas import (
    And,
    BoolAtom,
    Bottom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Le,
    Lt,
    Not,
    Or,
    RelApp,
    Succ,
    Top,
)
from .relations import Equation, RelationDecl
from .sorts import StructSort
from .terms import Const, Field, Term, Var

__all__ = ["ExplicitBackend", "relation_from_predicate"]

Interpretation = FrozenSet[Tuple[Any, ...]]


def relation_from_predicate(decl: RelationDecl, predicate: Callable[..., bool]) -> Interpretation:
    """Materialise an input relation from a Python predicate over values."""
    tuples = []
    param_sorts = [sort for _, sort in decl.params]

    def recurse(index: int, partial: list) -> None:
        if index == len(param_sorts):
            if predicate(*partial):
                tuples.append(tuple(param_sorts[i].canonical(v) for i, v in enumerate(partial)))
            return
        for value in param_sorts[index].values():
            partial.append(value)
            recurse(index + 1, partial)
            partial.pop()

    recurse(0, [])
    return frozenset(tuples)


class ExplicitBackend:
    """Evaluates calculus formulas by explicit enumeration."""

    def empty(self, decl: RelationDecl) -> Interpretation:
        """The empty interpretation."""
        return frozenset()

    def equal(self, left: Interpretation, right: Interpretation) -> bool:
        """Interpretation equality."""
        return left == right

    def eval_equation(
        self, equation: Equation, interps: Mapping[str, Interpretation]
    ) -> Interpretation:
        """Evaluate an equation body over every assignment of its parameters."""
        decl = equation.decl
        tuples = []
        param_sorts = [(name, sort) for name, sort in decl.params]

        def recurse(index: int, env: Dict[str, Any]) -> None:
            if index == len(param_sorts):
                if self.eval_formula(equation.body, interps, env):
                    tuples.append(
                        tuple(sort.canonical(env[name]) for name, sort in param_sorts)
                    )
                return
            name, sort = param_sorts[index]
            for value in sort.values():
                env[name] = value
                recurse(index + 1, env)
            del env[name]

        recurse(0, {})
        return frozenset(tuples)

    # ------------------------------------------------------------------
    def eval_formula(
        self,
        formula: Formula,
        interps: Mapping[str, Interpretation],
        env: Mapping[str, Any],
    ) -> bool:
        """Evaluate a formula under a variable environment (name -> value)."""
        if isinstance(formula, Top):
            return True
        if isinstance(formula, Bottom):
            return False
        if isinstance(formula, BoolAtom):
            return bool(self._term_value(formula.term, env))
        if isinstance(formula, Eq):
            return self._term_value(formula.left, env) == self._term_value(formula.right, env)
        if isinstance(formula, Le):
            return self._term_value(formula.left, env) <= self._term_value(formula.right, env)
        if isinstance(formula, Lt):
            return self._term_value(formula.left, env) < self._term_value(formula.right, env)
        if isinstance(formula, Succ):
            return self._term_value(formula.right, env) == self._term_value(formula.left, env) + 1
        if isinstance(formula, RelApp):
            interpretation = interps.get(formula.decl.name)
            if interpretation is None:
                raise KeyError(f"no interpretation for relation {formula.decl.name!r}")
            args = tuple(
                sort.canonical(self._term_value(arg, env))
                for arg, (_, sort) in zip(formula.args, formula.decl.params)
            )
            if callable(interpretation):
                return bool(interpretation(*args))
            return args in interpretation
        if isinstance(formula, Not):
            return not self.eval_formula(formula.body, interps, env)
        if isinstance(formula, And):
            return all(self.eval_formula(part, interps, env) for part in formula.parts)
        if isinstance(formula, Or):
            return any(self.eval_formula(part, interps, env) for part in formula.parts)
        if isinstance(formula, Implies):
            return (not self.eval_formula(formula.antecedent, interps, env)) or self.eval_formula(
                formula.consequent, interps, env
            )
        if isinstance(formula, Iff):
            return self.eval_formula(formula.left, interps, env) == self.eval_formula(
                formula.right, interps, env
            )
        if isinstance(formula, (Exists, Forall)):
            return self._quantifier(formula, interps, env)
        raise TypeError(f"cannot evaluate formula node {formula!r}")

    def _quantifier(
        self,
        formula: Exists | Forall,
        interps: Mapping[str, Interpretation],
        env: Mapping[str, Any],
    ) -> bool:
        names = [var.__dict__["name"] for var in formula.variables]
        sorts = [var.sort for var in formula.variables]
        existential = isinstance(formula, Exists)
        local: Dict[str, Any] = dict(env)

        def recurse(index: int) -> bool:
            if index == len(names):
                return self.eval_formula(formula.body, interps, local)
            for value in sorts[index].values():
                local[names[index]] = value
                result = recurse(index + 1)
                if existential and result:
                    return True
                if not existential and not result:
                    return False
            local.pop(names[index], None)
            return not existential

        return recurse(0)

    # ------------------------------------------------------------------
    def _term_value(self, term: Term, env: Mapping[str, Any]) -> Any:
        if isinstance(term, Const):
            return term.value
        if isinstance(term, Var):
            name = term.__dict__["name"]
            if name not in env:
                raise KeyError(f"unbound variable {name!r}")
            return env[name]
        if isinstance(term, Field):
            base = self._term_value(term.__dict__["base"], env)
            base_sort = term.__dict__["base"].sort
            field_name = term.__dict__["field_name"]
            assert isinstance(base_sort, StructSort)
            as_dict = base_sort.as_dict(base)
            return as_dict[field_name]
        raise TypeError(f"cannot evaluate term {term!r}")

    # -- result inspection ----------------------------------------------
    def models(self, interpretation: Interpretation, decl: RelationDecl) -> Iterable[Tuple[Any, ...]]:
        """The tuples of the interpretation (already explicit)."""
        return sorted(interpretation)

    def count(self, interpretation: Interpretation, decl: RelationDecl) -> int:
        """Number of tuples in the interpretation."""
        return len(interpretation)
