"""The entry-forward summary algorithm (Section 4.2).

``SummaryEF(u, v)`` refines the basic summary relation so that every tuple it
ever contains is *reachable*: the only entry summarised initially is the entry
of ``main`` (clause 1), and the entry of a procedure is summarised only once a
reachable caller actually calls it (clause 3).  Theorem 2: ``SummaryEF(u, v)``
holds iff ``u`` is a reachable entry and ``v`` is reachable from ``u`` within
the same procedure — hence the target query simply asks for a summarised state
at the target location.
"""

from __future__ import annotations

from ..encode.templates import SequentialEncoder
from ..fixedpoint import And, Eq, Equation, EquationSystem, Exists, Or, RelationDecl
from .common import AlgorithmSpec, state_vars, target_query

__all__ = ["build"]


def build(encoder: SequentialEncoder) -> AlgorithmSpec:
    """Build the Section 4.2 entry-forward algorithm."""
    state = encoder.space.state_sort
    decls = encoder.decls
    ProgramInt = decls["ProgramInt"]
    IntoCall = decls["IntoCall"]
    Return = decls["Return"]
    Entry = decls["Entry"]
    Exit = decls["Exit"]
    Init = decls["Init"]

    SummaryEF = RelationDecl("SummaryEF", [("u", state), ("v", state)])
    u, v, x, y, z = state_vars(encoder, "u", "v", "x", "y", "z")

    body = Or(
        # [1] Only the entry of main is summarised initially.
        And(Entry(u.mod, u.pc), Eq(u, v), Init(u)),
        # [2] Internal transition.
        Exists(x, And(SummaryEF(u, x), ProgramInt(x, v))),
        # [3] The entry of a procedure called from a reachable state becomes a
        #     (trivially) summarised entry itself.
        Exists([x, y], And(SummaryEF(x, y), IntoCall(y, u), Eq(u, v))),
        # [4] Across a call: caller summary + callee summary + matching return.
        Exists(
            [x, y, z],
            And(
                SummaryEF(u, x),
                IntoCall(x, y),
                SummaryEF(y, z),
                Exit(z.mod, z.pc),
                Return(x, z, v),
            ),
        ),
    )

    system = EquationSystem(
        [Equation(SummaryEF, body)],
        inputs=[ProgramInt, IntoCall, Return, Entry, Exit, Init, decls["Target"]],
    )
    query = target_query(encoder, SummaryEF)
    return AlgorithmSpec(
        name="ef",
        system=system,
        target_relation="SummaryEF",
        query=query,
        evaluation="nested",
    )
