"""The simple summary-based reachability algorithm (Section 4.1).

``Summary(u, v)`` relates *every* procedure entry ``u`` (reachable or not) to
the states ``v`` of the same procedure reachable from it:

* if ``u`` is an entry, then ``Summary(u, u)``;
* internal moves extend a summary;
* a summary of the callee together with a matching call/return extends the
  caller's summary across the call.

Because the algorithm explores from all entries, a target is reachable iff it
is summarised from a *reachable* entry; the auxiliary ``ReachEntry`` relation
(the standard companion fixed point) collects those.  This is the baseline
algorithm of the paper — sound and complete but wasteful, since it happily
summarises unreachable parts of the program.
"""

from __future__ import annotations

from ..encode.templates import SequentialEncoder
from ..fixedpoint import And, Eq, Equation, EquationSystem, Exists, Or, RelationDecl
from .common import AlgorithmSpec, state_vars, target_query

__all__ = ["build"]


def build(encoder: SequentialEncoder) -> AlgorithmSpec:
    """Build the Section 4.1 algorithm for the given program encoding."""
    state = encoder.space.state_sort
    decls = encoder.decls
    ProgramInt = decls["ProgramInt"]
    IntoCall = decls["IntoCall"]
    Return = decls["Return"]
    Entry = decls["Entry"]
    Exit = decls["Exit"]
    Init = decls["Init"]

    Summary = RelationDecl("Summary", [("u", state), ("v", state)])
    ReachEntry = RelationDecl("ReachEntry", [("u", state)])

    u, v, x, y, z = state_vars(encoder, "u", "v", "x", "y", "z")

    summary_body = Or(
        # An entry is summarised with itself.
        And(Entry(u.mod, u.pc), Eq(u, v)),
        # Internal transition.
        Exists(x, And(Summary(u, x), ProgramInt(x, v))),
        # Across a call: caller summary + callee summary + matching return.
        Exists(
            [x, y, z],
            And(
                Summary(u, x),
                IntoCall(x, y),
                Summary(y, z),
                Exit(z.mod, z.pc),
                Return(x, z, v),
            ),
        ),
    )

    reach_entry_body = Or(
        Init(u),
        # The entry of a procedure called from a state reachable within a
        # procedure whose own entry is reachable.
        Exists([x, y], And(ReachEntry(x), Summary(x, y), IntoCall(y, u))),
    )

    system = EquationSystem(
        [Equation(Summary, summary_body), Equation(ReachEntry, reach_entry_body)],
        inputs=[ProgramInt, IntoCall, Return, Entry, Exit, Init, decls["Target"]],
    )

    target = decls["Target"]
    query = Exists(
        [u, v], And(ReachEntry(u), Summary(u, v), target(v.mod, v.pc))
    )
    return AlgorithmSpec(
        name="summary",
        system=system,
        target_relation="ReachEntry",
        query=query,
        evaluation="simultaneous",
    )
