"""Bounded context-switching reachability for concurrent programs (Section 5).

The algorithm computes the fixed point of a single relation

``Reach(u, v, ecs, cs, g, t)``

where ``(u, v)`` is a per-thread procedure summary (entry state and current
state of the active thread), ``cs`` is the number of context switches
performed so far, ``ecs`` the number performed when the current procedure was
entered, ``g`` records the shared-global valuation at each of the ``k``
context switches, and ``t`` records which thread is active in each of the
``k + 1`` contexts.  The formulation keeps only ``k + 1`` copies of the shared
globals — the paper's key saving over earlier formulations.

The helper predicates ``First`` and ``Consecutive`` and the vector selections
``g_cs`` / ``t_cs`` (indexing by the *value* of ``cs``) are expanded into
finite disjunctions over the possible values of ``cs``, which is how a
MUCKE-style solver would see them as well.

Note on program counters: Section 5 presents states as valuations of
``L ∪ G`` only; with explicit program counters the "switch back to a thread"
clause must also restore the module and program counter of the resuming
thread, which is what this implementation does.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..boolprog.concurrent import ConcurrentProgram
from ..boolprog.typecheck import check_concurrent_program
from ..encode.concurrent import ConcurrentEncoder
from ..fixedpoint import (
    And,
    EnumSort,
    Eq,
    Equation,
    EquationSystem,
    Exists,
    Formula,
    Lt,
    Not,
    Or,
    RelationDecl,
    StructSort,
    Succ,
    Var,
    evaluate_nested,
)
from ..fixedpoint.symbolic import SymbolicBackend, default_bit_order
from ..fixedpoint.terms import Field
from ..limits import ResourceLimits
from .common import AlgorithmSpec, compile_query, finish_symbolic_run
from .result import ReachabilityResult

__all__ = ["build_cbr_system", "run_concurrent"]


def build_cbr_system(encoder: ConcurrentEncoder, context_switches: int) -> AlgorithmSpec:
    """Build the Section 5 fixed-point system for ``context_switches`` switches."""
    if context_switches < 0:
        raise ValueError("the context-switch bound must be non-negative")
    k = context_switches
    space = encoder.space
    state = space.state_sort
    globals_sort = space.globals_sort
    thread_sort = encoder.thread_sort
    cs_sort = EnumSort("CS", k + 1)
    gvec_fields = [(f"g{i}", globals_sort) for i in range(1, k + 1)] or [("g0", globals_sort)]
    gvec_sort = StructSort("GVec", gvec_fields)
    tvec_sort = StructSort("TVec", [(f"t{i}", thread_sort) for i in range(0, k + 1)])

    decls = encoder.base.decls
    ProgramInt = decls["ProgramInt"]
    IntoCall = decls["IntoCall"]
    Return = decls["Return"]
    Entry = decls["Entry"]
    Exit = decls["Exit"]
    InitThread = decls["InitThread"]
    InitGlobals = decls["InitGlobals"]
    Target = decls["Target"]

    Reach = RelationDecl(
        "Reach",
        [
            ("u", state),
            ("v", state),
            ("ecs", cs_sort),
            ("cs", cs_sort),
            ("g", gvec_sort),
            ("t", tvec_sort),
        ],
    )

    u, v = Var("u", state), Var("v", state)
    x, y, z, vp = Var("x", state), Var("y", state), Var("z", state), Var("vp", state)
    ecs, cs = Var("ecs", cs_sort), Var("cs", cs_sort)
    csp, css, ecsp = Var("csp", cs_sort), Var("css", cs_sort), Var("ecsp", cs_sort)
    g, t = Var("g", gvec_sort), Var("t", tvec_sort)

    def first_at(s: int) -> Formula:
        """Thread ``t_s`` is active for the first time at context ``s``."""
        clauses = [Not(Eq(Field(t, f"t{r}"), Field(t, f"t{s}"))) for r in range(s)]
        return And(*clauses) if clauses else Or()  # s = 0 never occurs here

    def not_first_at(s: int) -> Formula:
        clauses = [Eq(Field(t, f"t{r}"), Field(t, f"t{s}")) for r in range(s)]
        return Or(*clauses)

    def consecutive(previous: Var, s: int) -> Formula:
        """``previous`` is the last context before ``s`` in which ``t_s`` ran.

        Besides the schedule condition of the paper (``t_previous = t_s`` and
        the thread is inactive in between), the resumption is consistent only
        if the thread was preempted exactly when the globals had the value
        recorded for the switch that ended its last context — i.e.
        ``vp.Global = g_{previous+1}``.  The paper's rendering of ϕ_switch
        leaves this constraint implicit; without it the formula would admit
        runs in which the resumed thread's view of the globals disagrees with
        the recorded switch valuations.
        """
        options = []
        for r in range(s):
            holds_between = [
                Not(Eq(Field(t, f"t{i}"), Field(t, f"t{s}"))) for i in range(r + 1, s)
            ]
            options.append(
                And(
                    Eq(previous, r),
                    Eq(Field(t, f"t{r}"), Field(t, f"t{s}")),
                    Eq(vp.G, Field(g, f"g{r + 1}")),
                    *holds_between,
                )
            )
        return Or(*options)

    # -- the six clauses of the Reach equation --------------------------------
    phi_init = And(
        Eq(cs, 0),
        Eq(ecs, 0),
        Entry(u.mod, u.pc),
        Eq(u, v),
        InitThread(Field(t, "t0"), u),
        # Shared globals declared in the program's init section start at their
        # declared value (everything else stays nondeterministic).
        InitGlobals(u),
    )

    phi_int = Exists(x, And(Reach(u, x, ecs, cs, g, t), ProgramInt(x, v)))

    phi_call = Exists(
        [x, y, ecsp],
        And(Reach(x, y, ecsp, cs, g, t), IntoCall(y, u), Eq(ecs, cs), Eq(u, v)),
    )

    phi_ret = Exists(
        [x, y, z, csp],
        And(
            Reach(u, x, ecs, csp, g, t),
            IntoCall(x, y),
            Reach(y, z, csp, cs, g, t),
            Exit(z.mod, z.pc),
            Return(x, z, v),
            # The caller may have been reached with fewer switches.
            Or(Lt(csp, cs), Eq(csp, cs)),
        ),
    )

    switch_clauses_first: List[Formula] = []
    switch_clauses_back: List[Formula] = []
    for s in range(1, k + 1):
        globals_match = And(
            Eq(v.G, Field(g, f"g{s}")), Eq(Field(g, f"g{s}"), y.G)
        )
        switch_clauses_first.append(
            And(
                Eq(cs, s),
                first_at(s),
                globals_match,
                InitThread(Field(t, f"t{s}"), v),
            )
        )
        switch_clauses_back.append(And(Eq(cs, s), not_first_at(s), globals_match))

    phi_first_switch: Formula = Or()
    phi_switch: Formula = Or()
    if k >= 1:
        phi_first_switch = Exists(
            [x, y, csp, ecsp],
            And(
                Reach(x, y, ecsp, csp, g, t),
                Succ(csp, cs),
                Or(*switch_clauses_first),
                Eq(u, v),
                Eq(ecs, cs),
            ),
        )
        resume_options = Or(
            *[
                And(Eq(cs, s), consecutive(css, s))
                for s in range(1, k + 1)
            ]
        )
        phi_switch = And(
            Exists(
                [x, y, csp, ecsp],
                And(
                    Reach(x, y, ecsp, csp, g, t),
                    Succ(csp, cs),
                    Or(*switch_clauses_back),
                ),
            ),
            Exists(
                [vp, css],
                And(
                    Reach(u, vp, ecs, css, g, t),
                    Lt(css, cs),
                    resume_options,
                    Eq(v.L, vp.L),
                    Eq(v.pc, vp.pc),
                    Eq(v.mod, vp.mod),
                ),
            ),
        )

    body = Or(phi_init, phi_int, phi_call, phi_ret, phi_first_switch, phi_switch)

    system = EquationSystem(
        [Equation(Reach, body)],
        inputs=[ProgramInt, IntoCall, Return, Entry, Exit, InitThread, InitGlobals, Target],
    )

    query = Exists(
        [u, v, ecs, cs, g, t],
        And(Reach(u, v, ecs, cs, g, t), Target(v.mod, v.pc)),
    )
    return AlgorithmSpec(
        name=f"cbr-k{k}",
        system=system,
        target_relation="Reach",
        query=query,
        evaluation="nested",
    )


def _cbr_bit_order(encoder: ConcurrentEncoder, spec: AlgorithmSpec) -> List[str]:
    """Interleave the context-switch global copies with the state copies.

    The default ordering groups bits by their path, which keeps the copies of
    each *state* component together but would place the ``g`` vector (whose
    paths start with ``g1.``, ``g2.``, ...) far from the corresponding state
    globals.  Here every global field gets one contiguous block containing all
    state copies of that field followed by its ``k`` context-switch copies.
    """
    from ..fixedpoint.formulas import all_vars

    variables: Dict[str, Var] = {}
    for equation in spec.system.equations.values():
        for var in equation.decl.param_vars():
            variables.setdefault(var.__dict__["name"], var)
        for name, var in all_vars(equation.body).items():
            variables.setdefault(name, var)
    for decl in spec.system.inputs.values():
        for var in decl.param_vars():
            variables.setdefault(var.__dict__["name"], var)

    space = encoder.space
    state_sort = space.state_sort
    state_vars = [name for name, var in variables.items() if var.sort == state_sort]
    gvec_vars = [name for name, var in variables.items() if var.sort.name == "GVec"]

    order: List[str] = []
    seen = set()

    def push(bit: str) -> None:
        if bit not in seen:
            seen.add(bit)
            order.append(bit)

    # Control bits first: cs counters, thread schedule, module and pc copies.
    for name, var in variables.items():
        if isinstance(var.sort, EnumSort) and var.sort.name in ("CS", "Thread"):
            for bit in var.bit_names():
                push(bit)
    for name, var in variables.items():
        if var.sort.name == "TVec":
            for bit in var.bit_names():
                push(bit)
    for path in state_sort.bit_paths():
        if path.startswith("mod") or path.startswith("pc") or path.startswith("L."):
            for state_name in state_vars:
                push(f"{state_name}.{path}")
    # One block per global field: all state copies then all g-vector copies.
    for field_name in space.globals_sort.field_names():
        for state_name in state_vars:
            push(f"{state_name}.G.{field_name}")
        for gvec_name in gvec_vars:
            gvec_sort = variables[gvec_name].sort
            for vec_field, _ in gvec_sort.fields:  # type: ignore[attr-defined]
                push(f"{gvec_name}.{vec_field}.{field_name}")
    # Anything not covered keeps the default interleaved order.
    for bit in default_bit_order(list(variables.values())):
        push(bit)
    return order


def run_concurrent(
    program: ConcurrentProgram,
    target_locations: Sequence[Tuple[int, int]],
    context_switches: int,
    early_stop: bool = True,
    max_iterations: int = 100_000,
    validate: bool = True,
    count_states: bool = False,
    limits: Optional["ResourceLimits"] = None,
) -> ReachabilityResult:
    """Bounded context-switching reachability check on a concurrent program.

    ``target_locations`` are (module, pc) pairs in the *merged* module space —
    obtain them from :meth:`ConcurrentEncoder.label_location` /
    :meth:`ConcurrentEncoder.error_locations` (or via the front end, which
    accepts thread/procedure/label names).

    ``limits`` arms a :class:`~repro.limits.ResourceLimits` envelope on the
    run's private manager (node budget, wall-clock deadline, iteration
    budget); exhaustion raises the typed
    :class:`~repro.errors.ResourceExhausted` subclass.  The concurrent
    engine has no cheaper algorithm to degrade to.
    """
    started = time.perf_counter()
    if limits is not None and limits.max_iterations is not None:
        max_iterations = limits.max_iterations
    if validate:
        check_concurrent_program(program)
    encoder = ConcurrentEncoder(program)
    spec = build_cbr_system(encoder, context_switches)
    order = _cbr_bit_order(encoder, spec)
    backend = SymbolicBackend(spec.system, order=order)
    if limits is not None:
        # The manager is private to this run and dropped with it, so the
        # deadline needs no disarming on the way out.
        backend.manager.set_node_budget(limits.node_budget)
        if limits.deadline_seconds is not None:
            backend.manager.set_deadline(limits.deadline_seconds)

    encode_start = time.perf_counter()
    templates = encoder.encode(backend, list(target_locations))
    encode_seconds = time.perf_counter() - encode_start
    inputs = templates.interps()
    manager = backend.manager
    query_holds = compile_query(backend, inputs, spec.query)
    stop = query_holds if early_stop else None
    evaluation = evaluate_nested(
        spec.system,
        spec.target_relation,
        backend,
        inputs,
        max_iterations=max_iterations,
        stop=stop,
    )
    reachable = query_holds(evaluation.interpretations)
    reach_node = evaluation.interpretations["Reach"]

    summary_states: Optional[int] = None
    if count_states:
        # Project the Reach relation onto the current-state component and the
        # context counter; the count of that projection is the "reachable set
        # size" reported for Figure 3.
        v = Var("v", encoder.space.state_sort)
        cs = Var("cs", EnumSort("CS", context_switches + 1))
        keep = set(v.bit_names()) | set(cs.bit_names())
        drop = [bit for bit in manager.support_names(reach_node) if bit not in keep]
        projected = manager.exists(reach_node, drop)
        summary_states = manager.count_sat(projected, sorted(keep))

    total_seconds = time.perf_counter() - started
    summary_nodes, live_nodes, stats = finish_symbolic_run(backend, reach_node)
    return ReachabilityResult(
        reachable=reachable,
        algorithm=f"getafix-cbr(k={context_switches})",
        iterations=evaluation.iterations,
        equation_evaluations=evaluation.equation_evaluations,
        summary_nodes=summary_nodes,
        summary_states=summary_states,
        elapsed_seconds=evaluation.elapsed_seconds,
        encode_seconds=encode_seconds,
        total_seconds=total_seconds,
        stopped_early=evaluation.stopped_early,
        details={
            "bdd_variables": manager.num_vars,
            "bdd_live_nodes": live_nodes,
            "context_switches": context_switches,
            "threads": program.num_threads,
        },
        stats=stats,
    )
