"""Shared pieces of the reachability algorithms written in the calculus."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

from ..encode.templates import SequentialEncoder
from ..fixedpoint import EquationSystem, Exists, Formula, RelationDecl, Var

__all__ = [
    "AlgorithmSpec",
    "state_vars",
    "target_query",
    "compile_query",
    "finish_symbolic_run",
]


@dataclass
class AlgorithmSpec:
    """A reachability algorithm expressed as a fixed-point equation system.

    Attributes
    ----------
    name:
        Identifier of the algorithm (``"summary"``, ``"ef"``, ``"ef-opt"``,
        ``"cbr"``).
    system:
        The equation system (the "program" in the fixed-point calculus).
    target_relation:
        The relation whose fixed point the evaluator should compute.
    query:
        A closed formula over the system's relations that is TRUE exactly when
        the target program location is reachable.
    evaluation:
        ``"nested"`` for the paper's algorithmic semantics (required for
        non-monotone systems) or ``"simultaneous"`` for plain chaotic
        iteration of monotone systems.
    """

    name: str
    system: EquationSystem
    target_relation: str
    query: Formula
    evaluation: str = "nested"


def state_vars(encoder: SequentialEncoder, *names: str) -> List[Var]:
    """Fresh state-sorted variables named as requested."""
    return [Var(name, encoder.space.state_sort) for name in names]


def target_query(encoder: SequentialEncoder, summary: RelationDecl, *prefix_args) -> Formula:
    """The reachability query ``exists u, v. Summary(..., u, v) & Target(v)``.

    ``prefix_args`` are extra leading arguments of the summary relation (the
    optimised algorithm's frontier flag, for example).
    """
    u, v = state_vars(encoder, "u", "v")
    target = encoder.decls["Target"]
    return Exists([u, v], summary(*prefix_args, u, v) & target(v.mod, v.pc))


def compile_query(backend, inputs: Mapping[str, int], query: Formula) -> Callable[[Mapping[str, int]], bool]:
    """Shared symbolic-engine prologue: protect inputs, compile the query.

    The input relations are fixed for the whole run, so they are GC-protected
    up front (the evaluator's safe-point collections must never reclaim a
    template).  The query formula is compiled once so the early-stop
    predicate — called after every outer iteration — reuses the hoisted
    skeleton and the interpretation-keyed memo.  Returns the predicate.
    """
    manager = backend.manager
    for node in inputs.values():
        manager.ref(node)
    query_plan = backend.compile_formula(query)

    def query_holds(interps: Mapping[str, int]) -> bool:
        merged = dict(inputs)
        merged.update(interps)
        return query_plan.eval(backend, merged) == manager.TRUE

    return query_holds


def finish_symbolic_run(backend, summary_node: int) -> Tuple[int, int, Dict[str, object]]:
    """Shared symbolic-engine epilogue: snapshot, then release the caches.

    Everything derived from the node table (the summary BDD size, the live
    node count, the statistics snapshot) is read *before*
    ``backend.clear_caches()`` — nothing may walk summary BDDs after a clear
    that could ever compose with a collection.  Returns
    ``(summary_nodes, live_nodes, stats)``.
    """
    manager = backend.manager
    summary_nodes = manager.node_count(summary_node)
    live_nodes = len(manager)
    stats = backend.stats_snapshot()
    backend.clear_caches()
    return summary_nodes, live_nodes, stats
