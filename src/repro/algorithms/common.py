"""Shared pieces of the reachability algorithms written in the calculus."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..encode.templates import SequentialEncoder
from ..fixedpoint import EquationSystem, Exists, Formula, RelationDecl, Var

__all__ = ["AlgorithmSpec", "state_vars", "target_query"]


@dataclass
class AlgorithmSpec:
    """A reachability algorithm expressed as a fixed-point equation system.

    Attributes
    ----------
    name:
        Identifier of the algorithm (``"summary"``, ``"ef"``, ``"ef-opt"``,
        ``"cbr"``).
    system:
        The equation system (the "program" in the fixed-point calculus).
    target_relation:
        The relation whose fixed point the evaluator should compute.
    query:
        A closed formula over the system's relations that is TRUE exactly when
        the target program location is reachable.
    evaluation:
        ``"nested"`` for the paper's algorithmic semantics (required for
        non-monotone systems) or ``"simultaneous"`` for plain chaotic
        iteration of monotone systems.
    """

    name: str
    system: EquationSystem
    target_relation: str
    query: Formula
    evaluation: str = "nested"


def state_vars(encoder: SequentialEncoder, *names: str) -> List[Var]:
    """Fresh state-sorted variables named as requested."""
    return [Var(name, encoder.space.state_sort) for name in names]


def target_query(encoder: SequentialEncoder, summary: RelationDecl, *prefix_args) -> Formula:
    """The reachability query ``exists u, v. Summary(..., u, v) & Target(v)``.

    ``prefix_args`` are extra leading arguments of the summary relation (the
    optimised algorithm's frontier flag, for example).
    """
    u, v = state_vars(encoder, "u", "v")
    target = encoder.decls["Target"]
    return Exists([u, v], summary(*prefix_args, u, v) & target(v.mod, v.pc))
