"""The optimised entry-forward algorithm (Section 4.3).

The optimisation processes, in each round, only summaries whose current state
sits at a *relevant* program counter — a program counter at which some state
was discovered for the first time in the previous round — and it closes the
cheap internal transitions to completion before computing the next (expensive)
batch of calls and returns.

The bookkeeping uses a frontier flag ``fr``: ``SummaryEFopt(1, u, v)`` holds
for every discovered pair, while ``SummaryEFopt(0, u, v)`` additionally marks
the pairs already known *before* the last round.  ``Relevant`` therefore uses
the pairs that are in the ``fr=1`` slice but not in the ``fr=0`` slice — a
*negative* (non-monotone) use of the relation being computed, which is exactly
why the algorithm relies on the calculus's algorithmic (nested-iteration)
semantics rather than on Knaster–Tarski.

Note on clause [7] of the paper: read literally it would add pairs relating a
caller's entry to a callee's entry; following Theorem 3 (and the entry-forward
formula it optimises), the clause is implemented here as discovering the
*callee entry summarised with itself* whenever a relevant reachable state
calls it.
"""

from __future__ import annotations

from ..encode.templates import SequentialEncoder
from ..fixedpoint import (
    And,
    BOOL,
    Eq,
    Equation,
    EquationSystem,
    Exists,
    Not,
    Or,
    RelationDecl,
    Var,
)
from .common import AlgorithmSpec, state_vars, target_query

__all__ = ["build"]


def build(encoder: SequentialEncoder) -> AlgorithmSpec:
    """Build the Section 4.3 optimised entry-forward algorithm."""
    state = encoder.space.state_sort
    pc_sort = encoder.space.pc_sort
    decls = encoder.decls
    ProgramInt = decls["ProgramInt"]
    IntoCall = decls["IntoCall"]
    Return = decls["Return"]
    Entry = decls["Entry"]
    Exit = decls["Exit"]
    Init = decls["Init"]

    SummaryEFopt = RelationDecl("SummaryEFopt", [("fr", BOOL), ("u", state), ("v", state)])
    Relevant = RelationDecl("Relevant", [("pc", pc_sort)])
    New1 = RelationDecl("New1", [("u", state), ("v", state)])
    New2 = RelationDecl("New2", [("u", state), ("v", state)])

    u, v, x, y, z = state_vars(encoder, "u", "v", "x", "y", "z")
    fr = Var("fr", BOOL)
    pc = Var("pc", pc_sort)

    summary_body = Or(
        # [1] Initial configurations are (re)added every round with fr=1.
        And(Eq(fr, True), Entry(u.mod, u.pc), Eq(u, v), Init(u)),
        # [2] Whatever was frontier-marked is kept (with both marks): pairs
        #     discovered in earlier rounds stop being "new".
        SummaryEFopt(True, u, v),
        # [3] Newly computed pairs join with the frontier mark.
        And(Eq(fr, True), Or(New1(u, v), New2(u, v))),
    )

    relevant_body = Exists(
        [u, v],
        And(
            SummaryEFopt(True, u, v),
            Not(SummaryEFopt(False, u, v)),
            Eq(v.pc, pc),
        ),
    )

    new1_body = Or(
        # [5] Seed with already-discovered pairs sitting at a relevant pc.
        And(SummaryEFopt(True, u, v), Relevant(v.pc)),
        # [6] ... and close them under internal transitions (to completion).
        Exists(x, And(New1(u, x), ProgramInt(x, v))),
    )

    new2_body = Or(
        # [7] A relevant reachable state calls a procedure: its entry becomes
        #     a summarised entry (see the module docstring on the paper's
        #     phrasing of this clause).
        Exists(
            [x, y],
            And(Relevant(y.pc), SummaryEFopt(True, x, y), IntoCall(y, u), Eq(u, v)),
        ),
        # [8]-[11] Across a call, required only when the caller state or the
        #          callee exit state is relevant (either suffices).
        Exists(
            [x, y, z],
            And(
                SummaryEFopt(True, u, x),
                IntoCall(x, y),
                SummaryEFopt(True, y, z),
                Exit(z.mod, z.pc),
                Return(x, z, v),
                Or(Relevant(x.pc), Relevant(z.pc)),
            ),
        ),
    )

    system = EquationSystem(
        [
            Equation(SummaryEFopt, summary_body),
            Equation(Relevant, relevant_body),
            Equation(New1, new1_body),
            Equation(New2, new2_body),
        ],
        inputs=[ProgramInt, IntoCall, Return, Entry, Exit, Init, decls["Target"]],
    )
    query = target_query(encoder, SummaryEFopt, True)
    return AlgorithmSpec(
        name="ef-opt",
        system=system,
        target_relation="SummaryEFopt",
        query=query,
        evaluation="nested",
    )
