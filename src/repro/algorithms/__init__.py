"""The paper's model-checking algorithms, written in the fixed-point calculus."""

from .common import AlgorithmSpec
from .result import ReachabilityResult
from .engine import SEQUENTIAL_ALGORITHMS, run_batch, run_sequential
from .concurrent_cbr import run_concurrent, build_cbr_system

__all__ = [
    "AlgorithmSpec",
    "ReachabilityResult",
    "SEQUENTIAL_ALGORITHMS",
    "run_batch",
    "run_sequential",
    "run_concurrent",
    "build_cbr_system",
]
