"""Result records returned by the reachability engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["ReachabilityResult"]


@dataclass
class ReachabilityResult:
    """Outcome and statistics of one reachability check.

    Attributes
    ----------
    reachable:
        The YES/NO answer to "is the target location reachable?".
    algorithm:
        Name of the algorithm/engine that produced the answer.
    iterations:
        Number of outer fixed-point iterations (or worklist steps for the
        explicit baselines).
    equation_evaluations:
        Number of equation-body evaluations (symbolic engines only).
    summary_nodes:
        BDD node count of the final summary relation (the paper's "#Nodes in
        BDD" column); for explicit engines the number of path edges.
    summary_states:
        Number of tuples in the summary/reach relation, when cheap to obtain.
    elapsed_seconds:
        Wall-clock time of the fixed-point evaluation itself.
    encode_seconds:
        Wall-clock time spent building the template relations / model.
    total_seconds:
        End-to-end time for the check.
    stopped_early:
        Whether early termination fired before the full fixed point.
    details:
        Engine-specific extras (number of BDD variables, context bound, ...).
    stats:
        Evaluation statistics from the symbolic kernel: per-operation cache
        hit rates, static-hoist counts, plan-memo hit rates, live/peak BDD
        node counts and garbage-collection counters (safe-point steps,
        collections, reclaimed nodes, external roots).  Empty for the
        explicit baselines.
    degraded_from:
        When the degradation ladder retried this query with a cheaper
        algorithm after the original exhausted its resource envelope, the
        name of the algorithm originally requested; None otherwise.
    witness:
        JSON-ready counterexample trace (the ``WitnessTrace.to_dict()``
        shape from :mod:`repro.witness`) when the query ran with witness
        extraction enabled and the target is reachable; None otherwise.
        A replay-validation failure leaves this None and records the typed
        error under ``details["witness_error"]`` — the verdict never
        depends on extraction.
    """

    reachable: bool
    algorithm: str
    iterations: int = 0
    equation_evaluations: int = 0
    summary_nodes: int = 0
    summary_states: Optional[int] = None
    elapsed_seconds: float = 0.0
    encode_seconds: float = 0.0
    total_seconds: float = 0.0
    stopped_early: bool = False
    details: Dict[str, object] = field(default_factory=dict)
    stats: Dict[str, object] = field(default_factory=dict)
    degraded_from: Optional[str] = None
    witness: Optional[Dict[str, object]] = None

    def cache_hit_rate(self, op: str) -> Optional[float]:
        """Convenience accessor for a kernel operation's cache hit rate."""
        manager = self.stats.get("manager")
        if not isinstance(manager, dict):
            return None
        ops = manager.get("ops")
        if not isinstance(ops, dict) or op not in ops:
            return None
        return ops[op]["hit_rate"]

    def gc_stats(self) -> Optional[Dict[str, object]]:
        """The kernel's garbage-collection counters, or None (explicit engines)."""
        manager = self.stats.get("manager")
        if not isinstance(manager, dict):
            return None
        gc = manager.get("gc")
        return gc if isinstance(gc, dict) else None

    def live_nodes(self) -> Optional[int]:
        """Live BDD node count at the end of the run, or None."""
        manager = self.stats.get("manager")
        if not isinstance(manager, dict):
            return None
        nodes = manager.get("nodes")
        return nodes if isinstance(nodes, int) else None

    def verdict(self) -> str:
        """The YES/NO string used in the paper's tables."""
        return "Yes" if self.reachable else "No"

    def __str__(self) -> str:
        return (
            f"[{self.algorithm}] reachable={self.verdict()} "
            f"iterations={self.iterations} summary_nodes={self.summary_nodes} "
            f"time={self.total_seconds:.3f}s"
        )
