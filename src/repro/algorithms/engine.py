"""The GETAFIX sequential engine: program + target locations -> YES/NO.

This module wires the pieces together exactly as Figure 1 of the paper
describes: the translator (:mod:`repro.encode`) produces the template
relations and an allocation hint, the chosen reachability algorithm
(:mod:`repro.algorithms.summary_basic`, :mod:`~repro.algorithms.entry_forward`
or :mod:`~repro.algorithms.entry_forward_opt`) provides the fixed-point
formula, and the symbolic evaluator (:mod:`repro.fixedpoint`) plays the role
of MUCKE.
"""

from __future__ import annotations

import time
from typing import Mapping, Optional, Sequence, Tuple, Union

from ..boolprog import Program, build_cfg, check_program
from ..fixedpoint import evaluate_nested, evaluate_simultaneous
from ..fixedpoint.symbolic import SymbolicBackend
from ..encode.templates import SequentialEncoder
from . import entry_forward, entry_forward_opt, summary_basic
from .common import AlgorithmSpec, compile_query, finish_symbolic_run
from .result import ReachabilityResult

__all__ = ["SEQUENTIAL_ALGORITHMS", "run_sequential", "run_batch"]

#: Registry of the sequential algorithm builders by name.
SEQUENTIAL_ALGORITHMS = {
    "summary": summary_basic.build,
    "ef": entry_forward.build,
    "ef-opt": entry_forward_opt.build,
}


def run_sequential(
    program: Program,
    target_locations: Sequence[Tuple[int, int]],
    algorithm: str = "ef-opt",
    early_stop: bool = True,
    max_iterations: int = 100_000,
    validate: bool = True,
) -> ReachabilityResult:
    """Check whether any of ``target_locations`` is reachable in ``program``.

    Parameters
    ----------
    program:
        The (already parsed) sequential Boolean program.
    target_locations:
        (module index, pc) pairs, as produced by
        :meth:`repro.boolprog.ProgramCfg.label_location` or
        :meth:`~repro.boolprog.ProgramCfg.error_locations`.
    algorithm:
        ``"summary"``, ``"ef"`` or ``"ef-opt"``.
    early_stop:
        Stop the fixed-point iteration as soon as the target is known
        reachable (the appendix formula's "early termination" clause).
    """
    if algorithm not in SEQUENTIAL_ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose one of {sorted(SEQUENTIAL_ALGORITHMS)}"
        )
    started = time.perf_counter()
    if validate:
        check_program(program)
    cfg = build_cfg(program)
    encoder = SequentialEncoder(cfg)
    spec: AlgorithmSpec = SEQUENTIAL_ALGORITHMS[algorithm](encoder)
    backend = SymbolicBackend(spec.system)

    encode_start = time.perf_counter()
    templates = encoder.encode(backend, list(target_locations))
    encode_seconds = time.perf_counter() - encode_start

    inputs = templates.interps()
    manager = backend.manager
    query_holds = compile_query(backend, inputs, spec.query)
    stop = query_holds if early_stop else None
    evaluate = evaluate_nested if spec.evaluation == "nested" else evaluate_simultaneous
    evaluation = evaluate(
        spec.system,
        spec.target_relation,
        backend,
        inputs,
        max_iterations=max_iterations,
        stop=stop,
    )
    reachable = query_holds(evaluation.interpretations)
    summary_node = evaluation.interpretations[spec.target_relation]
    total_seconds = time.perf_counter() - started
    summary_nodes, live_nodes, stats = finish_symbolic_run(backend, summary_node)
    return ReachabilityResult(
        reachable=reachable,
        algorithm=f"getafix-{spec.name}",
        iterations=evaluation.iterations,
        equation_evaluations=evaluation.equation_evaluations,
        summary_nodes=summary_nodes,
        elapsed_seconds=evaluation.elapsed_seconds,
        encode_seconds=encode_seconds,
        total_seconds=total_seconds,
        stopped_early=evaluation.stopped_early,
        details={
            "bdd_variables": manager.num_vars,
            "bdd_live_nodes": live_nodes,
            "target_locations": list(target_locations),
            "evaluation_mode": spec.evaluation,
        },
        stats=stats,
    )


def run_batch(
    queries: Sequence[Union["BatchQuery", Mapping[str, object]]],
    jobs: int = 1,
    start_method: Optional[str] = None,
) -> "BatchReport":
    """Run a batch of reachability queries, sharded over worker processes.

    Each query is a :class:`repro.parallel.BatchQuery` (a mapping with the
    same fields is coerced).  Every shard builds its own
    ``BddManager``/``SymbolicBackend`` stack — the signed-edge kernel and
    its GC safe-point protocol are manager-local, so shards share nothing —
    and the merged :class:`repro.parallel.BatchReport` carries per-shard
    kernel/GC statistics alongside the verdicts.

    ``jobs <= 1`` (or a batch that cannot be pickled, or a platform without
    working process pools) runs the same queries sequentially in-process
    with identical results; see :func:`repro.parallel.run_shards`.
    """
    # Imported lazily: repro.parallel pulls in the front end, which imports
    # this package — a module-level import would be circular.
    from ..parallel import BatchQuery, merge_shards, run_shards

    coerced = [
        query if isinstance(query, BatchQuery) else BatchQuery(**dict(query))
        for query in queries
    ]
    started = time.perf_counter()
    shards, mode, fallback_reason = run_shards(coerced, jobs=jobs, start_method=start_method)
    wall = time.perf_counter() - started
    return merge_shards(
        shards, jobs=jobs, mode=mode, wall_seconds=wall, fallback_reason=fallback_reason
    )
