"""The GETAFIX sequential engine: program + target locations -> YES/NO.

This module wires the pieces together exactly as Figure 1 of the paper
describes: the translator (:mod:`repro.encode`) produces the template
relations and an allocation hint, the chosen reachability algorithm
(:mod:`repro.algorithms.summary_basic`, :mod:`~repro.algorithms.entry_forward`
or :mod:`~repro.algorithms.entry_forward_opt`) provides the fixed-point
formula, and the symbolic evaluator (:mod:`repro.fixedpoint`) plays the role
of MUCKE.

Since the session API landed, :func:`run_sequential` and :func:`run_batch`
are thin compatibility wrappers: a `run_sequential` call opens a one-shot
:class:`repro.api.AnalysisSession`, answers the single query and closes the
session — same signature, same semantics, same result record as the old
monolithic pipeline.  Callers with several targets on one program should
hold a session (or let :func:`run_batch` group by program) so validation,
encoding and the summary fixed point are paid once, not per query.
"""

from __future__ import annotations

import time
from typing import Mapping, Optional, Sequence, Tuple, Union

from ..boolprog import Program
from ..errors import ResourceExhausted
from ..limits import DEGRADATION_LADDER, ResourceLimits
from . import entry_forward, entry_forward_opt, summary_basic
from .result import ReachabilityResult

__all__ = ["SEQUENTIAL_ALGORITHMS", "run_sequential", "run_batch"]

#: Registry of the sequential algorithm builders by name.
SEQUENTIAL_ALGORITHMS = {
    "summary": summary_basic.build,
    "ef": entry_forward.build,
    "ef-opt": entry_forward_opt.build,
}


def run_sequential(
    program: Program,
    target_locations: Sequence[Tuple[int, int]],
    algorithm: str = "ef-opt",
    early_stop: bool = True,
    max_iterations: int = 100_000,
    validate: bool = True,
    limits: Optional[ResourceLimits] = None,
    optimize: int = 0,
) -> ReachabilityResult:
    """Check whether any of ``target_locations`` is reachable in ``program``.

    Parameters
    ----------
    program:
        The (already parsed) sequential Boolean program.
    target_locations:
        (module index, pc) pairs, as produced by
        :meth:`repro.boolprog.ProgramCfg.label_location` or
        :meth:`~repro.boolprog.ProgramCfg.error_locations`.
    algorithm:
        ``"summary"``, ``"ef"`` or ``"ef-opt"``.
    early_stop:
        Stop the fixed-point iteration as soon as the target is known
        reachable (the appendix formula's "early termination" clause).
    limits:
        Optional :class:`~repro.limits.ResourceLimits` envelope for the
        query.  Exhaustion raises the typed
        :class:`~repro.errors.ResourceExhausted` subclass — unless
        ``limits.degrade`` is set and :data:`~repro.limits.DEGRADATION_LADDER`
        names a cheaper algorithm, in which case the query is retried once
        with it (same limits) and a successful retry records the original
        algorithm in ``ReachabilityResult.degraded_from``.
    optimize:
        Static pre-analysis level (:mod:`repro.analysis`).  This entry
        point takes numeric ``(module, pc)`` targets, whose numbering only
        the pc-stable passes preserve, so the level is capped at 1; use
        :func:`repro.frontends.check_reachability` (or a session) with a
        string target spec for the full level-2 pipeline.
    """
    # Imported lazily: repro.api builds on this module's algorithm registry.
    from ..api.session import AnalysisSession

    if algorithm not in SEQUENTIAL_ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose one of {sorted(SEQUENTIAL_ALGORITHMS)}"
        )
    started = time.perf_counter()
    attempts = [algorithm]
    if limits is not None and limits.degrade:
        fallback = DEGRADATION_LADDER.get(algorithm)
        if fallback is not None:
            attempts.append(fallback)
    locations = [tuple(location) for location in target_locations]
    for position, attempt in enumerate(attempts):
        try:
            session = AnalysisSession(
                program,
                default_algorithm=attempt,
                validate=validate,
                max_iterations=max_iterations,
                limits=limits,
                optimize=min(int(optimize), 1),
            )
            try:
                result = session.check(locations, algorithm=attempt, early_stop=early_stop)
            finally:
                session.close()
        except ResourceExhausted:
            if position == len(attempts) - 1:
                raise
            continue
        if position > 0:
            result.degraded_from = algorithm
        result.total_seconds = time.perf_counter() - started
        return result
    raise AssertionError("unreachable: every attempt either returned or raised")


def run_batch(
    queries: Sequence[Union["BatchQuery", Mapping[str, object]]],
    jobs: int = 1,
    start_method: Optional[str] = None,
    group_by_program: bool = True,
    limits: Optional[ResourceLimits] = None,
    shard_timeout: Optional[float] = None,
    max_retries: int = 2,
    fault_plan: Optional[object] = None,
) -> "BatchReport":
    """Run a batch of reachability queries, sharded over worker processes.

    Each query is a :class:`repro.parallel.BatchQuery` (a mapping with the
    same fields is coerced).  Every shard builds its own
    ``BddManager``/``SymbolicBackend`` stack — the signed-edge kernel and
    its GC safe-point protocol are manager-local, so shards share nothing —
    and the merged :class:`repro.parallel.BatchReport` carries per-shard
    kernel/GC statistics alongside the verdicts.

    With ``group_by_program`` (the default), sequential queries that share
    a program and algorithm are grouped onto ONE shard, which opens a
    single :class:`repro.api.AnalysisSession`, solves the summary fixed
    point once and answers every target in the group as a query post-pass
    — interpretations are exchanged between queries *within* a shard
    rather than re-derived per query.  The report's ``queries_per_solve``
    records the amortisation; per-query reuse shows up as
    ``ShardResult.reused_solve``.  Pass ``group_by_program=False`` for the
    strict one-query-per-shard behaviour.

    ``jobs <= 1`` (or a batch that cannot be pickled, or a platform without
    working process pools) runs the same groups sequentially in-process
    with identical results; see :func:`repro.parallel.run_shards`.

    ``limits`` installs a :class:`~repro.limits.ResourceLimits` envelope on
    every query that does not already carry one; ``shard_timeout``,
    ``max_retries`` and ``fault_plan`` are forwarded to the scheduler's
    fault-tolerance layer (driver-side shard timeouts, pool rebuild with
    bounded-backoff retry of failed shards, deterministic fault injection).
    """
    # Imported lazily: repro.parallel pulls in the front end, which imports
    # this package — a module-level import would be circular.
    from dataclasses import replace

    from ..parallel import BatchQuery, merge_shards, run_shards

    coerced = [
        query if isinstance(query, BatchQuery) else BatchQuery(**dict(query))
        for query in queries
    ]
    if limits is not None:
        coerced = [
            query if query.limits is not None else replace(query, limits=limits)
            for query in coerced
        ]
    started = time.perf_counter()
    shards, mode, fallback_reason = run_shards(
        coerced,
        jobs=jobs,
        start_method=start_method,
        group_by_program=group_by_program,
        shard_timeout=shard_timeout,
        max_retries=max_retries,
        fault_plan=fault_plan,
    )
    wall = time.perf_counter() - started
    return merge_shards(
        shards, jobs=jobs, mode=mode, wall_seconds=wall, fallback_reason=fallback_reason
    )
