"""A user-facing wrapper around BDD edges with Python operator overloading.

The :class:`BddManager` works with raw integer signed-edge handles for speed;
the :class:`Function` wrapper offers an ergonomic layer on top of it
(``f & g``, ``~f``, ``f.exists("x")``, ...) for examples, tests and user code
that builds relations by hand.  The symbolic fixed-point evaluator uses raw
edges internally and converts at its API boundary.

Functions are the manager's *external references* for garbage collection: a
``Function`` refs its edge on construction and derefs it when released, so
any BDD held in a live wrapper survives :meth:`BddManager.collect_garbage`
while everything only reachable from dropped wrappers is reclaimed.  Release
happens automatically on finalisation (``__del__``), explicitly via
:meth:`release`, or scoped with the context-manager protocol::

    with Function.var(mgr, "x") & Function.var(mgr, "y") as f:
        ...  # f's nodes are protected here
    # f is dereferenced; a later collection may reclaim its nodes

``BddFunction`` is an alias of ``Function``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional

from .manager import BddManager

__all__ = ["Function", "BddFunction"]


class Function:
    """An immutable Boolean function owned by a :class:`BddManager`.

    Holding a ``Function`` keeps its BDD nodes alive across garbage
    collections; dropping (or releasing) it makes them collectable.
    """

    __slots__ = ("manager", "node", "_owned")

    def __init__(self, manager: BddManager, node: int) -> None:
        self.manager = manager
        self.node = node
        manager.ref(node)
        self._owned = True

    # -- reference management -------------------------------------------
    def release(self) -> None:
        """Drop this wrapper's external reference (idempotent).

        After release the wrapped edge may be reclaimed by the next garbage
        collection; the wrapper must not be used to keep results alive.
        """
        if getattr(self, "_owned", False):
            self._owned = False
            self.manager.deref(self.node)

    def __enter__(self) -> "Function":
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False

    def __del__(self) -> None:
        try:
            self.release()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    # -- constructors --------------------------------------------------
    @classmethod
    def true(cls, manager: BddManager) -> "Function":
        """The constant-true function."""
        return cls(manager, manager.TRUE)

    @classmethod
    def false(cls, manager: BddManager) -> "Function":
        """The constant-false function."""
        return cls(manager, manager.FALSE)

    @classmethod
    def var(cls, manager: BddManager, name: str) -> "Function":
        """The projection function of a declared variable."""
        return cls(manager, manager.var(name))

    # -- operators -----------------------------------------------------
    def _wrap(self, node: int) -> "Function":
        return Function(self.manager, node)

    def _node_of(self, other: "Function | bool") -> int:
        if isinstance(other, Function):
            if other.manager is not self.manager:
                raise ValueError("cannot combine functions from different managers")
            return other.node
        return self.manager.TRUE if other else self.manager.FALSE

    def __and__(self, other: "Function | bool") -> "Function":
        return self._wrap(self.manager.and_(self.node, self._node_of(other)))

    __rand__ = __and__

    def __or__(self, other: "Function | bool") -> "Function":
        return self._wrap(self.manager.or_(self.node, self._node_of(other)))

    __ror__ = __or__

    def __xor__(self, other: "Function | bool") -> "Function":
        return self._wrap(self.manager.xor(self.node, self._node_of(other)))

    __rxor__ = __xor__

    def __invert__(self) -> "Function":
        return self._wrap(self.manager.not_(self.node))

    def implies(self, other: "Function | bool") -> "Function":
        """Implication ``self -> other``."""
        return self._wrap(self.manager.implies(self.node, self._node_of(other)))

    def iff(self, other: "Function | bool") -> "Function":
        """Biconditional ``self <-> other``."""
        return self._wrap(self.manager.iff(self.node, self._node_of(other)))

    def ite(self, then: "Function | bool", otherwise: "Function | bool") -> "Function":
        """If-then-else with ``self`` as the condition."""
        return self._wrap(
            self.manager.ite(self.node, self._node_of(then), self._node_of(otherwise))
        )

    # -- quantification & substitution ----------------------------------
    def exists(self, variables: Iterable[str] | str) -> "Function":
        """Existentially quantify a variable name or iterable of names."""
        if isinstance(variables, str):
            variables = [variables]
        return self._wrap(self.manager.exists(self.node, variables))

    def forall(self, variables: Iterable[str] | str) -> "Function":
        """Universally quantify a variable name or iterable of names."""
        if isinstance(variables, str):
            variables = [variables]
        return self._wrap(self.manager.forall(self.node, variables))

    def rename(self, mapping: Dict[str, str]) -> "Function":
        """Simultaneously substitute variables by variables."""
        return self._wrap(self.manager.rename(self.node, dict(mapping)))

    def restrict(self, assignment: Dict[str, bool]) -> "Function":
        """Cofactor by fixing variables to constants."""
        return self._wrap(self.manager.restrict(self.node, dict(assignment)))

    # -- inspection ------------------------------------------------------
    @property
    def store(self) -> str:
        """The node-store layout backing this function's manager.

        ``"array"`` (struct-of-arrays, the default), ``"dict"`` (the
        fallback layout), or ``"array-snapshot-overlay"`` when the wrapper
        lives on a shared-memory snapshot attachment.
        """
        return str(self.manager.stats()["store"])

    @property
    def is_true(self) -> bool:
        """True iff this is the constant-true function."""
        return self.node == self.manager.TRUE

    @property
    def is_false(self) -> bool:
        """True iff this is the constant-false function."""
        return self.node == self.manager.FALSE

    def __bool__(self) -> bool:
        raise TypeError(
            "Function truth value is ambiguous; use .is_true / .is_false or =="
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Function):
            return self.manager is other.manager and self.node == other.node
        if isinstance(other, bool):
            return self.node == (self.manager.TRUE if other else self.manager.FALSE)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    def support(self) -> set:
        """The set of variable names this function depends on."""
        return self.manager.support_names(self.node)

    def node_count(self) -> int:
        """Number of BDD decision nodes of this function."""
        return self.manager.node_count(self.node)

    def count(self, variables: Optional[Iterable[str]] = None) -> int:
        """Number of satisfying assignments over ``variables`` (default: all)."""
        return self.manager.count_sat(self.node, variables)

    def pick(self) -> Optional[Dict[str, bool]]:
        """One satisfying assignment as a name -> bool dict, or None."""
        assignment = self.manager.sat_one(self.node)
        if assignment is None:
            return None
        return {self.manager.var_name(index): value for index, value in assignment.items()}

    def models(self, variables: Iterable[str]) -> Iterator[Dict[str, bool]]:
        """Iterate over all satisfying assignments restricted to ``variables``."""
        for assignment in self.manager.sat_all(self.node, variables):
            yield {self.manager.var_name(index): value for index, value in assignment.items()}

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        """Evaluate under a total assignment of the support."""
        return self.manager.eval(self.node, dict(assignment))

    def __repr__(self) -> str:
        return f"Function(nodes={self.node_count()}, support={sorted(self.support())})"


#: Alias emphasising the BDD-handle role of the wrapper.
BddFunction = Function
