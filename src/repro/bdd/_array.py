"""Struct-of-arrays BDD node store.

:class:`ArrayBddManager` keeps the exact signed-edge semantics of the dict
store (:class:`repro.bdd.manager.BddManager`) but changes the layout under
the API:

* the node vectors ``level``/``lo``/``hi`` are flat ``array('q')`` int64
  vectors instead of Python lists — three contiguous machine-word tables
  instead of three pointer arrays into heap-allocated ints, which both
  shrinks the table ~5x and makes every hot-loop child read a contiguous
  fetch;
* the unique table and every per-op apply cache are keyed on *packed
  integer keys* (a single small int per probe instead of a tuple object),
  with quantifier cubes and rename/restrict maps interned to per-manager
  integer ``uid``\\ s so they pack too;
* the mark phase of the GC and the sweep's unique-table rebuild are
  vectorised over the flat arrays (numpy views; pure-Python fallback when
  numpy is unavailable), and the sweep compacts the table tail (trailing
  free slots are trimmed so capacity tracks the live high-water mark, and
  budget accounting sees live slots — never stale array capacity);
* ``count_sat`` is a vectorised bottom-up pass over the flat arrays
  (:func:`repro.bdd._vector.count_sat_vector`);
* the flat layout is what makes read-only shared-memory snapshots of solved
  tables possible (:mod:`repro.bdd.snapshot`): the three vectors plus a
  frozen open-addressing unique table are copied verbatim into a named
  segment that other processes attach to copy-free.

Packed-key capacity bounds (per manager): at most ``2**23`` node slots
(edges fit 24 bits) and ``2**15 - 1`` variables (levels fit the remaining
key bits).  Exceeding either raises :class:`~repro.bdd.manager.BddError`
with a pointer at the dict store, which has no such bounds.

The differential suite (``tests/test_bdd_differential.py``) runs the full
formula corpus against both layouts; nothing outside this module may depend
on the layout.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import NodeBudgetExceeded
from . import _vector
from .manager import BddError, BddManager, QuantCube, QuantVars, _RenameMap

__all__ = ["ArrayBddManager", "EDGE_BITS", "MAX_NODE_INDEX", "MAX_LEVEL"]

#: Signed edges are packed into 24-bit fields: node index < 2**23.
EDGE_BITS = 24
#: Highest representable node index (23-bit index, sign bit makes 24).
MAX_NODE_INDEX = (1 << (EDGE_BITS - 1)) - 1
#: Unique keys pack ``(level << 48) | (lo << 24) | hi`` into an int64.
LEVEL_SHIFT = 2 * EDGE_BITS
#: Levels must fit the remaining 15 key bits of a non-negative int64.
MAX_LEVEL = (1 << 15) - 1


class ArrayBddManager(BddManager):
    """The struct-of-arrays node store (see the module docstring).

    Constructed via ``BddManager(..., store="array")`` (the default store)
    or directly.  Behaviourally identical to the dict store behind the
    signed-edge API.
    """

    STORE = "array"

    def __init__(
        self,
        var_names: Optional[Sequence[str]] = None,
        explicit_stack: bool = False,
        gc_enabled: bool = True,
        gc_threshold: int = 65_536,
        gc_growth: float = 2.0,
        cache_limit: Optional[int] = None,
        store: Optional[str] = None,
        debug_checks: Optional[bool] = None,
    ) -> None:
        # Interned cubes and rename/restrict maps get per-manager integer
        # uids so they pack into integer cache keys; the counter must exist
        # before super().__init__ declares the initial variables.
        self._next_uid = 0
        super().__init__(
            var_names=var_names,
            explicit_stack=explicit_stack,
            gc_enabled=gc_enabled,
            gc_threshold=gc_threshold,
            gc_growth=gc_growth,
            cache_limit=cache_limit,
            store="array",
            debug_checks=debug_checks,
        )
        # Re-home the node vectors as flat int64 arrays (only the terminal
        # exists at this point).  All inherited read paths index them
        # identically; only the vectorised passes care about the layout.
        self._level = array("q", self._level)
        self._lo = array("q", self._lo)
        self._hi = array("q", self._hi)

    # ------------------------------------------------------------------
    # Variable management (packed-key capacity guard)
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> int:
        if len(self._var_names) >= MAX_LEVEL:
            raise BddError(
                f"array store supports at most {MAX_LEVEL} variables "
                "(packed-key bound); construct the manager with store='dict'"
            )
        return super().add_var(name)

    # ------------------------------------------------------------------
    # Node creation (packed unique key, slot-count guard)
    # ------------------------------------------------------------------
    def _mk(self, level: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        sign = hi & 1
        if sign:
            lo ^= 1
            hi ^= 1
        key = (level << LEVEL_SHIFT) | (lo << EDGE_BITS) | hi
        index = self._unique.get(key)
        if index is None:
            free = self._free
            if free:
                index = free.pop()
                self._level[index] = level
                self._lo[index] = lo
                self._hi[index] = hi
            else:
                index = len(self._level)
                if index > MAX_NODE_INDEX:
                    raise BddError(
                        f"array store supports at most {MAX_NODE_INDEX} node "
                        "slots (packed-key bound); construct the manager with "
                        "store='dict'"
                    )
                self._level.append(level)
                self._lo.append(lo)
                self._hi.append(hi)
            self._unique[key] = index
            self._live += 1
            if self._live > self._peak_live:
                self._peak_live = self._live
            # Budget accounting is over *live* nodes (post-compaction), never
            # array capacity: `_live` excludes free-listed slots and the
            # sweep trims the tail, so armed limits behave identically to
            # the dict store.
            if self._node_budget is not None and self._live > self._node_budget:
                raise NodeBudgetExceeded(consumed=self._live, budget=self._node_budget)
            if self._deadline is not None:
                self._deadline_countdown -= 1
                if self._deadline_countdown <= 0:
                    self._deadline_countdown = self._deadline_interval
                    self._check_deadline()
        return (index << 1) | sign

    # ------------------------------------------------------------------
    # Binary connectives (packed pair keys)
    # ------------------------------------------------------------------
    def _and(self, f: int, g: int) -> int:
        if f == g or g == 1:
            return f
        if f == 1:
            return g
        if f == 0 or g == 0 or f == g ^ 1:
            return 0
        if f > g:
            f, g = g, f
        key = (f << EDGE_BITS) | g
        cached = self._and_cache.get(key)
        if cached is not None:
            self._hits["and"] += 1
            return cached
        self._misses["and"] += 1
        f_index = f >> 1
        g_index = g >> 1
        level_f = self._level[f_index]
        level_g = self._level[g_index]
        if level_f == level_g:
            level = level_f
            f_sign = f & 1
            g_sign = g & 1
            lo = self._and(self._lo[f_index] ^ f_sign, self._lo[g_index] ^ g_sign)
            hi = self._and(self._hi[f_index] ^ f_sign, self._hi[g_index] ^ g_sign)
        elif level_f < level_g:
            level = level_f
            f_sign = f & 1
            lo = self._and(self._lo[f_index] ^ f_sign, g)
            hi = self._and(self._hi[f_index] ^ f_sign, g)
        else:
            level = level_g
            g_sign = g & 1
            lo = self._and(f, self._lo[g_index] ^ g_sign)
            hi = self._and(f, self._hi[g_index] ^ g_sign)
        result = lo if lo == hi else self._mk(level, lo, hi)
        self._and_cache[key] = result
        return result

    def _and_iter(self, root_f: int, root_g: int) -> int:
        cache = self._and_cache
        results: List[int] = []
        work: List[Tuple] = [(0, root_f, root_g)]
        while work:
            frame = work.pop()
            if frame[0] == 0:
                f, g = frame[1], frame[2]
                if f == g or g == 1:
                    results.append(f)
                    continue
                if f == 1:
                    results.append(g)
                    continue
                if f == 0 or g == 0 or f == g ^ 1:
                    results.append(0)
                    continue
                if f > g:
                    f, g = g, f
                key = (f << EDGE_BITS) | g
                cached = cache.get(key)
                if cached is not None:
                    self._hits["and"] += 1
                    results.append(cached)
                    continue
                self._misses["and"] += 1
                level_f = self._level[f >> 1]
                level_g = self._level[g >> 1]
                level = level_f if level_f < level_g else level_g
                f_lo, f_hi = self._cofactors(f, level)
                g_lo, g_hi = self._cofactors(g, level)
                work.append((1, key, level))
                work.append((0, f_hi, g_hi))
                work.append((0, f_lo, g_lo))
            else:
                key, level = frame[1], frame[2]
                hi = results.pop()
                lo = results.pop()
                result = lo if lo == hi else self._mk(level, lo, hi)
                cache[key] = result
                results.append(result)
        return results[0]

    def _xor(self, f: int, g: int) -> int:
        sign = (f ^ g) & 1
        f &= ~1
        g &= ~1
        if f == g:
            return sign
        if f == 0:
            return g ^ sign
        if g == 0:
            return f ^ sign
        if f > g:
            f, g = g, f
        key = (f << EDGE_BITS) | g
        cached = self._xor_cache.get(key)
        if cached is not None:
            self._hits["xor"] += 1
            return cached ^ sign
        self._misses["xor"] += 1
        f_index = f >> 1
        g_index = g >> 1
        level_f = self._level[f_index]
        level_g = self._level[g_index]
        if level_f == level_g:
            level = level_f
            lo = self._xor(self._lo[f_index], self._lo[g_index])
            hi = self._xor(self._hi[f_index], self._hi[g_index])
        elif level_f < level_g:
            level = level_f
            lo = self._xor(self._lo[f_index], g)
            hi = self._xor(self._hi[f_index], g)
        else:
            level = level_g
            lo = self._xor(f, self._lo[g_index])
            hi = self._xor(f, self._hi[g_index])
        result = lo if lo == hi else self._mk(level, lo, hi)
        self._xor_cache[key] = result
        return result ^ sign

    def _xor_iter(self, root_f: int, root_g: int) -> int:
        cache = self._xor_cache
        results: List[int] = []
        work: List[Tuple] = [(0, root_f, root_g)]
        while work:
            frame = work.pop()
            if frame[0] == 0:
                f, g = frame[1], frame[2]
                sign = (f ^ g) & 1
                f &= ~1
                g &= ~1
                if f == g:
                    results.append(sign)
                    continue
                if f == 0:
                    results.append(g ^ sign)
                    continue
                if g == 0:
                    results.append(f ^ sign)
                    continue
                if f > g:
                    f, g = g, f
                key = (f << EDGE_BITS) | g
                cached = cache.get(key)
                if cached is not None:
                    self._hits["xor"] += 1
                    results.append(cached ^ sign)
                    continue
                self._misses["xor"] += 1
                level_f = self._level[f >> 1]
                level_g = self._level[g >> 1]
                level = level_f if level_f < level_g else level_g
                f_lo, f_hi = self._cofactors(f, level)
                g_lo, g_hi = self._cofactors(g, level)
                work.append((1, key, level, sign))
                work.append((0, f_hi, g_hi))
                work.append((0, f_lo, g_lo))
            else:
                key, level, sign = frame[1], frame[2], frame[3]
                hi = results.pop()
                lo = results.pop()
                result = lo if lo == hi else self._mk(level, lo, hi)
                cache[key] = result
                results.append(result ^ sign)
        return results[0]

    # ------------------------------------------------------------------
    # ite (packed triple key)
    # ------------------------------------------------------------------
    def _ite(self, f: int, g: int, h: int) -> int:
        done, triple = self._ite_norm(f, g, h)
        if triple is None:
            return done
        f, g, h, sign = triple
        key = (((f << EDGE_BITS) | g) << EDGE_BITS) | h
        cached = self._ite_cache.get(key)
        if cached is not None:
            self._hits["ite"] += 1
            return cached ^ sign
        self._misses["ite"] += 1
        level = min(self._level[f >> 1], self._level[g >> 1], self._level[h >> 1])
        f_lo, f_hi = self._cofactors(f, level)
        g_lo, g_hi = self._cofactors(g, level)
        h_lo, h_hi = self._cofactors(h, level)
        lo = self._ite(f_lo, g_lo, h_lo)
        hi = self._ite(f_hi, g_hi, h_hi)
        result = self._mk(level, lo, hi)
        self._ite_cache[key] = result
        return result ^ sign

    def _ite_iter(self, root_f: int, root_g: int, root_h: int) -> int:
        cache = self._ite_cache
        results: List[int] = []
        work: List[Tuple] = [(0, root_f, root_g, root_h)]
        while work:
            frame = work.pop()
            if frame[0] == 0:
                done, triple = self._ite_norm(frame[1], frame[2], frame[3])
                if triple is None:
                    results.append(done)
                    continue
                f, g, h, sign = triple
                key = (((f << EDGE_BITS) | g) << EDGE_BITS) | h
                cached = cache.get(key)
                if cached is not None:
                    self._hits["ite"] += 1
                    results.append(cached ^ sign)
                    continue
                self._misses["ite"] += 1
                level = min(
                    self._level[f >> 1], self._level[g >> 1], self._level[h >> 1]
                )
                f_lo, f_hi = self._cofactors(f, level)
                g_lo, g_hi = self._cofactors(g, level)
                h_lo, h_hi = self._cofactors(h, level)
                work.append((1, key, level, sign))
                work.append((0, f_hi, g_hi, h_hi))
                work.append((0, f_lo, g_lo, h_lo))
            else:
                key, level, sign = frame[1], frame[2], frame[3]
                hi = results.pop()
                lo = results.pop()
                result = self._mk(level, lo, hi)
                cache[key] = result
                results.append(result ^ sign)
        return results[0]

    # ------------------------------------------------------------------
    # Quantification (cube uids packed into keys)
    # ------------------------------------------------------------------
    def quant_cube(self, variables: QuantVars) -> Optional[QuantCube]:
        if isinstance(variables, QuantCube):
            levels = variables.levels
        else:
            levels = tuple(sorted(self._var_set(variables)))
            if not levels:
                return None
        cube = self._cube_table.get(levels)
        if cube is None:
            # A hand-built cube whose uid another manager already assigned
            # must not be adopted — uids are manager-local key components.
            if isinstance(variables, QuantCube) and variables.uid is None:
                cube = variables
            else:
                cube = QuantCube(levels)
            cube.uid = self._next_uid
            self._next_uid += 1
            self._cube_table[levels] = cube
        return cube

    def _exists(self, f: int, cube: QuantCube) -> int:
        if f <= 1:
            return f
        index = f >> 1
        level = self._level[index]
        if level > cube.last:
            return f
        key = (cube.uid << EDGE_BITS) | f
        cached = self._exists_cache.get(key)
        if cached is not None:
            self._hits["exists"] += 1
            return cached
        self._misses["exists"] += 1
        sign = f & 1
        lo = self._lo[index] ^ sign
        hi = self._hi[index] ^ sign
        if level in cube.members:
            r_lo = self._exists(lo, cube)
            if r_lo == self.TRUE:
                result = self.TRUE
            else:
                result = self.or_(r_lo, self._exists(hi, cube))
        else:
            result = self._mk(level, self._exists(lo, cube), self._exists(hi, cube))
        self._exists_cache[key] = result
        return result

    def _exists_iter(self, root: int, cube: QuantCube) -> int:
        cache = self._exists_cache
        cube_uid = cube.uid << EDGE_BITS
        results: List[int] = []
        work: List[Tuple] = [(0, root)]
        while work:
            frame = work.pop()
            tag = frame[0]
            if tag == 0:
                f = frame[1]
                if f <= 1:
                    results.append(f)
                    continue
                index = f >> 1
                level = self._level[index]
                if level > cube.last:
                    results.append(f)
                    continue
                key = cube_uid | f
                cached = cache.get(key)
                if cached is not None:
                    self._hits["exists"] += 1
                    results.append(cached)
                    continue
                self._misses["exists"] += 1
                sign = f & 1
                lo = self._lo[index] ^ sign
                hi = self._hi[index] ^ sign
                if level in cube.members:
                    work.append((1, key, hi))
                    work.append((0, lo))
                else:
                    work.append((3, key, level))
                    work.append((0, hi))
                    work.append((0, lo))
            elif tag == 1:
                key, hi = frame[1], frame[2]
                r_lo = results.pop()
                if r_lo == self.TRUE:
                    cache[key] = self.TRUE
                    results.append(self.TRUE)
                else:
                    results.append(r_lo)
                    work.append((2, key))
                    work.append((0, hi))
            elif tag == 2:
                key = frame[1]
                r_hi = results.pop()
                r_lo = results.pop()
                result = self.or_(r_lo, r_hi)
                cache[key] = result
                results.append(result)
            else:
                key, level = frame[1], frame[2]
                r_hi = results.pop()
                r_lo = results.pop()
                result = self._mk(level, r_lo, r_hi)
                cache[key] = result
                results.append(result)
        return results[0]

    def _and_exists(self, f: int, g: int, cube: QuantCube) -> int:
        if f == 0 or g == 0 or f == g ^ 1:
            return 0
        if f == 1 and g == 1:
            return 1
        if f == 1:
            return self._exists(g, cube)
        if g == 1 or f == g:
            return self._exists(f, cube)
        if f > g:
            f, g = g, f
        level_f = self._level[f >> 1]
        level_g = self._level[g >> 1]
        level = level_f if level_f < level_g else level_g
        if level > cube.last:
            return self._and(f, g)
        key = (((cube.uid << EDGE_BITS) | f) << EDGE_BITS) | g
        cached = self._and_exists_cache.get(key)
        if cached is not None:
            self._hits["and_exists"] += 1
            return cached
        self._misses["and_exists"] += 1
        f_lo, f_hi = self._cofactors(f, level)
        g_lo, g_hi = self._cofactors(g, level)
        if level in cube.members:
            lo = self._and_exists(f_lo, g_lo, cube)
            if lo == self.TRUE:
                result = self.TRUE
            else:
                hi = self._and_exists(f_hi, g_hi, cube)
                result = self.or_(lo, hi)
        else:
            lo = self._and_exists(f_lo, g_lo, cube)
            hi = self._and_exists(f_hi, g_hi, cube)
            result = self._mk(level, lo, hi)
        self._and_exists_cache[key] = result
        return result

    def _and_exists_iter(self, root_f: int, root_g: int, cube: QuantCube) -> int:
        cache = self._and_exists_cache
        cube_uid = cube.uid
        results: List[int] = []
        work: List[Tuple] = [(0, root_f, root_g)]
        while work:
            frame = work.pop()
            tag = frame[0]
            if tag == 0:
                f, g = frame[1], frame[2]
                if f == 0 or g == 0 or f == g ^ 1:
                    results.append(0)
                    continue
                if f == 1 and g == 1:
                    results.append(1)
                    continue
                if f == 1:
                    results.append(self._exists_iter(g, cube))
                    continue
                if g == 1 or f == g:
                    results.append(self._exists_iter(f, cube))
                    continue
                if f > g:
                    f, g = g, f
                level_f = self._level[f >> 1]
                level_g = self._level[g >> 1]
                level = level_f if level_f < level_g else level_g
                if level > cube.last:
                    results.append(self._and_iter(f, g))
                    continue
                key = (((cube_uid << EDGE_BITS) | f) << EDGE_BITS) | g
                cached = cache.get(key)
                if cached is not None:
                    self._hits["and_exists"] += 1
                    results.append(cached)
                    continue
                self._misses["and_exists"] += 1
                f_lo, f_hi = self._cofactors(f, level)
                g_lo, g_hi = self._cofactors(g, level)
                if level in cube.members:
                    work.append((1, key, f_hi, g_hi))
                    work.append((0, f_lo, g_lo))
                else:
                    work.append((3, key, level))
                    work.append((0, f_hi, g_hi))
                    work.append((0, f_lo, g_lo))
            elif tag == 1:
                key, f_hi, g_hi = frame[1], frame[2], frame[3]
                lo = results.pop()
                if lo == self.TRUE:
                    cache[key] = self.TRUE
                    results.append(self.TRUE)
                else:
                    results.append(lo)
                    work.append((2, key))
                    work.append((0, f_hi, g_hi))
            elif tag == 2:
                key = frame[1]
                hi = results.pop()
                lo = results.pop()
                result = self.or_(lo, hi)
                cache[key] = result
                results.append(result)
            else:
                key, level = frame[1], frame[2]
                hi = results.pop()
                lo = results.pop()
                result = self._mk(level, lo, hi)
                cache[key] = result
                results.append(result)
        return results[0]

    # ------------------------------------------------------------------
    # Rename / restrict (map uids packed into keys)
    # ------------------------------------------------------------------
    def rename(self, f: int, mapping: Dict[int | str, int | str]) -> int:
        normalised: Dict[int, int] = {}
        for src, dst in mapping.items():
            src_index = self.var_index(src) if isinstance(src, str) else src
            dst_index = self.var_index(dst) if isinstance(dst, str) else dst
            if src_index != dst_index:
                normalised[src_index] = dst_index
        if not normalised:
            return f
        intern_key = tuple(sorted(normalised.items()))
        rmap = self._rename_table.get(intern_key)
        if rmap is not None:
            cached = self._rename_cache.get((rmap.uid << EDGE_BITS) | (f & ~1))
            if cached is not None:
                self._hits["rename"] += 1
                return cached ^ (f & 1)
        targets = list(normalised.values())
        if len(set(targets)) != len(targets):
            raise BddError("rename mapping must be injective")
        support = self.support(f)
        clashes = (set(targets) & support) - set(normalised)
        if clashes:
            names = sorted(self._var_names[i] for i in clashes)
            raise BddError(f"rename targets already in support: {names}")
        if rmap is None:
            rmap = _RenameMap(dict(normalised))
            rmap.uid = self._next_uid
            self._next_uid += 1
            self._rename_table[intern_key] = rmap
        ordered = sorted(support)
        mapped = [normalised.get(levels, levels) for levels in ordered]
        if all(mapped[i] < mapped[i + 1] for i in range(len(mapped) - 1)):
            self._rename_fast += 1
            if self._explicit_stack:
                return self._rename_iter(f, rmap, shift=True)
            return self._rename_shift(f, rmap)
        self._rename_slow += 1
        if self._explicit_stack:
            return self._rename_iter(f, rmap, shift=False)
        return self._rename_ite(f, rmap)

    def _rename_shift(self, f: int, rmap: "_RenameMap") -> int:
        if f <= 1:
            return f
        sign = f & 1
        f ^= sign
        key = (rmap.uid << EDGE_BITS) | f
        cached = self._rename_cache.get(key)
        if cached is not None:
            self._hits["rename"] += 1
            return cached ^ sign
        self._misses["rename"] += 1
        index = f >> 1
        lo = self._rename_shift(self._lo[index], rmap)
        hi = self._rename_shift(self._hi[index], rmap)
        level = self._level[index]
        mapping = rmap.mapping
        result = self._mk(mapping.get(level, level), lo, hi)
        self._rename_cache[key] = result
        return result ^ sign

    def _rename_ite(self, f: int, rmap: "_RenameMap") -> int:
        if f <= 1:
            return f
        sign = f & 1
        f ^= sign
        key = (rmap.uid << EDGE_BITS) | f
        cached = self._rename_cache.get(key)
        if cached is not None:
            self._hits["rename"] += 1
            return cached ^ sign
        self._misses["rename"] += 1
        index = f >> 1
        lo = self._rename_ite(self._lo[index], rmap)
        hi = self._rename_ite(self._hi[index], rmap)
        level = self._level[index]
        target = rmap.mapping.get(level, level)
        result = self.ite(self.var(target), hi, lo)
        self._rename_cache[key] = result
        return result ^ sign

    def _rename_iter(self, root: int, rmap: "_RenameMap", shift: bool) -> int:
        cache = self._rename_cache
        mapping = rmap.mapping
        map_uid = rmap.uid << EDGE_BITS
        results: List[int] = []
        work: List[Tuple] = [(0, root)]
        while work:
            frame = work.pop()
            if frame[0] == 0:
                f = frame[1]
                if f <= 1:
                    results.append(f)
                    continue
                sign = f & 1
                f ^= sign
                key = map_uid | f
                cached = cache.get(key)
                if cached is not None:
                    self._hits["rename"] += 1
                    results.append(cached ^ sign)
                    continue
                self._misses["rename"] += 1
                index = f >> 1
                work.append((1, key, sign, self._level[index]))
                work.append((0, self._hi[index]))
                work.append((0, self._lo[index]))
            else:
                key, sign, level = frame[1], frame[2], frame[3]
                hi = results.pop()
                lo = results.pop()
                target = mapping.get(level, level)
                if shift:
                    result = self._mk(target, lo, hi)
                else:
                    result = self.ite(self.var(target), hi, lo)
                cache[key] = result
                results.append(result ^ sign)
        return results[0]

    def restrict(self, f: int, assignment: Dict[int | str, bool]) -> int:
        fixed = {
            (self.var_index(var) if isinstance(var, str) else var): bool(value)
            for var, value in assignment.items()
        }
        if not fixed:
            return f
        key = tuple(sorted(fixed.items()))
        fmap = self._restrict_table.get(key)
        if fmap is None:
            fmap = _RenameMap(fixed)
            fmap.uid = self._next_uid
            self._next_uid += 1
            self._restrict_table[key] = fmap
        return self._restrict(f, fmap)

    def _restrict(self, f: int, fmap: "_RenameMap") -> int:
        if f <= 1:
            return f
        sign = f & 1
        f ^= sign
        key = (fmap.uid << EDGE_BITS) | f
        cached = self._restrict_cache.get(key)
        if cached is not None:
            self._hits["restrict"] += 1
            return cached ^ sign
        self._misses["restrict"] += 1
        index = f >> 1
        level = self._level[index]
        fixed = fmap.mapping
        if level in fixed:
            branch = self._hi[index] if fixed[level] else self._lo[index]
            result = self._restrict(branch, fmap)
        else:
            lo = self._restrict(self._lo[index], fmap)
            hi = self._restrict(self._hi[index], fmap)
            result = self._mk(level, lo, hi)
        self._restrict_cache[key] = result
        return result ^ sign

    # ------------------------------------------------------------------
    # Garbage collection (vectorised mark + sweep, tail compaction)
    # ------------------------------------------------------------------
    def collect_garbage(self, roots: Iterable[int] = ()) -> int:
        if not _vector.HAVE_NUMPY:
            return self._collect_garbage_scalar(roots)
        import numpy as np

        root_indices: List[int] = list(self._extref)
        for edge in roots:
            root_indices.append(edge >> 1)
        level_v = _vector.int64_view(self._level)
        lo_v = _vector.int64_view(self._lo)
        hi_v = _vector.int64_view(self._hi)
        mask = _vector.reachable_mask(level_v, lo_v, hi_v, root_indices)
        mask[0] = True
        dead = ~mask & (level_v != self._FREE_LEVEL)
        dead_idx = np.nonzero(dead)[0]
        reclaimed = int(dead_idx.size)
        self._gc_collections += 1
        if not reclaimed:
            del level_v, lo_v, hi_v
            if self._debug_checks:
                self._debug_validate()
            return 0
        # Unique-table update: delete the dead keys one by one when few are
        # dead, rebuild the whole table from the live slots (one vectorised
        # key computation) when a sweep kills most of it.
        if reclaimed * 2 >= len(self._unique):
            live_idx = np.nonzero(mask)[0]
            live_idx = live_idx[live_idx != 0]
            keys = (
                (level_v[live_idx] << LEVEL_SHIFT)
                | (lo_v[live_idx] << EDGE_BITS)
                | hi_v[live_idx]
            )
            self._unique = dict(zip(keys.tolist(), live_idx.tolist()))
        else:
            unique = self._unique
            keys = (
                (level_v[dead_idx] << LEVEL_SHIFT)
                | (lo_v[dead_idx] << EDGE_BITS)
                | hi_v[dead_idx]
            )
            for key in keys.tolist():
                del unique[key]
        level_v[dead_idx] = self._FREE_LEVEL
        lo_v[dead_idx] = 0
        hi_v[dead_idx] = 0
        # Compaction: trim the trailing run of free slots so capacity tracks
        # the live high-water mark; the free list is rebuilt descending so
        # `pop()` hands out the lowest index first (dense reuse).
        last_live = int(np.nonzero(mask)[0].max())
        free_idx = np.nonzero(~mask)[0]
        trim = len(self._level) - (last_live + 1)
        if trim > 0:
            free_idx = free_idx[free_idx <= last_live]
        self._free = free_idx[::-1].tolist()
        # Views pin the array buffers against resizing — drop every one of
        # them before the tail trim mutates the arrays.
        del level_v, lo_v, hi_v, mask, dead, dead_idx, free_idx, keys
        if trim > 0:
            del self._level[last_live + 1 :]
            del self._lo[last_live + 1 :]
            del self._hi[last_live + 1 :]
        self._live -= reclaimed
        self._gc_reclaimed += reclaimed
        self._drop_op_caches()
        for hook in self._gc_hooks:
            hook()
        if self._debug_checks:
            self._debug_validate()
        return reclaimed

    def _collect_garbage_scalar(self, roots: Iterable[int] = ()) -> int:
        """Numpy-less sweep: the dict store's scalar mark-and-sweep, but
        deleting *packed* unique keys and compacting the tail."""
        marked = bytearray(len(self._level))
        marked[0] = 1
        stack: List[int] = list(self._extref)
        for edge in roots:
            stack.append(edge >> 1)
        level = self._level
        lo = self._lo
        hi = self._hi
        while stack:
            index = stack.pop()
            if marked[index]:
                continue
            marked[index] = 1
            stack.append(lo[index] >> 1)
            stack.append(hi[index] >> 1)
        reclaimed = 0
        free_level = self._FREE_LEVEL
        unique = self._unique
        for index in range(1, len(level)):
            if marked[index] or level[index] == free_level:
                continue
            del unique[
                (level[index] << LEVEL_SHIFT) | (lo[index] << EDGE_BITS) | hi[index]
            ]
            level[index] = free_level
            lo[index] = 0
            hi[index] = 0
            self._free.append(index)
            reclaimed += 1
        self._gc_collections += 1
        if reclaimed:
            self._live -= reclaimed
            self._gc_reclaimed += reclaimed
            self._trim_tail_scalar()
            self._drop_op_caches()
            for hook in self._gc_hooks:
                hook()
        if self._debug_checks:
            self._debug_validate()
        return reclaimed

    def _trim_tail_scalar(self) -> None:
        """Tail compaction for the numpy-less sweep fallback."""
        level = self._level
        last = len(level) - 1
        free_level = self._FREE_LEVEL
        while last > 0 and level[last] == free_level:
            last -= 1
        if last == len(level) - 1:
            return
        keep = last + 1
        del self._level[keep:]
        del self._lo[keep:]
        del self._hi[keep:]
        self._free = sorted((i for i in self._free if i < keep), reverse=True)

    # ------------------------------------------------------------------
    # Kernel sanitizer (packed-key decoders)
    # ------------------------------------------------------------------
    def _unique_key(self, index: int) -> int:
        return (
            (self._level[index] << LEVEL_SHIFT)
            | (self._lo[index] << EDGE_BITS)
            | self._hi[index]
        )

    def _debug_cache_edges(self):
        """Decode the packed cache keys back into their signed edges.

        The encodings mirror the cache writers exactly: ``and``/``xor`` pack
        ``(f << 24) | g``, ``ite`` packs the operand triple, the quantifier
        and rename/restrict caches pack the interned object's uid above the
        edge field.
        """
        mask = (1 << EDGE_BITS) - 1
        for key, result in self._and_cache.items():
            yield "and", key >> EDGE_BITS
            yield "and", key & mask
            yield "and", result
        for key, result in self._xor_cache.items():
            yield "xor", key >> EDGE_BITS
            yield "xor", key & mask
            yield "xor", result
        for key, result in self._ite_cache.items():
            yield "ite", key >> (2 * EDGE_BITS)
            yield "ite", (key >> EDGE_BITS) & mask
            yield "ite", key & mask
            yield "ite", result
        for key, result in self._exists_cache.items():
            yield "exists", key & mask
            yield "exists", result
        for key, result in self._and_exists_cache.items():
            yield "and_exists", (key >> EDGE_BITS) & mask
            yield "and_exists", key & mask
            yield "and_exists", result
        for key, result in self._rename_cache.items():
            yield "rename", key & mask
            yield "rename", result
        for key, result in self._restrict_cache.items():
            yield "restrict", key & mask
            yield "restrict", result

    # ------------------------------------------------------------------
    # Vectorised model counting
    # ------------------------------------------------------------------
    def count_sat(self, f: int, variables: Optional[Iterable[int | str]] = None) -> int:
        if variables is None:
            var_set = frozenset(range(len(self._var_names)))
        else:
            var_set = self._var_set(variables)
            missing = self.support(f) - var_set
            if missing:
                names = sorted(self._var_names[i] for i in missing)
                raise BddError(
                    f"count_sat variables must cover the support; missing {names}"
                )
        order = sorted(var_set)
        total_levels = len(order)
        if f == self.FALSE:
            return 0
        if f == self.TRUE:
            return 1 << total_levels
        if (
            not _vector.HAVE_NUMPY
            or total_levels > _vector.MAX_VECTOR_COUNT_LEVELS
        ):
            # Exact fall-back: counts past 2**62 overflow int64, so wide
            # variable sets take the dict store's big-int memo recursion.
            return super().count_sat(f, variables)
        import numpy as np

        pos_of = np.full(max(len(self._var_names), 1), -1, dtype=np.int64)
        for pos, lvl in enumerate(order):
            pos_of[lvl] = pos
        level_v = _vector.int64_view(self._level)
        lo_v = _vector.int64_view(self._lo)
        hi_v = _vector.int64_view(self._hi)
        try:
            return _vector.count_sat_vector(
                level_v, lo_v, hi_v, f, pos_of, total_levels
            )
        finally:
            del level_v, lo_v, hi_v
