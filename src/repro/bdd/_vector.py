"""Vectorised passes over flat struct-of-arrays node tables.

These helpers power the array node store (:mod:`repro.bdd._array`) and the
shared-memory snapshots (:mod:`repro.bdd.snapshot`): reachability marking for
the GC sweep and a bottom-up satisfying-assignment count, both expressed as
whole-array numpy operations over the ``level``/``lo``/``hi`` vectors.

numpy is optional.  When it is not importable, ``HAVE_NUMPY`` is False and
the array store falls back to the (behaviourally identical) scalar passes it
inherits from the dict store — the layout still works, only the vectorised
fast paths are skipped.

All helpers operate on *views*: callers hand in ``numpy.int64`` arrays
aliasing the live ``array('q')`` buffers (or a shared-memory segment) and
must drop every view before resizing the underlying buffers — an exported
buffer pins ``array`` objects against resizing.
"""

from __future__ import annotations

from typing import Optional, Sequence

try:  # pragma: no cover - exercised implicitly by every array-store test
    import numpy as _np
except Exception:  # pragma: no cover - numpy-less fallback environments
    _np = None

HAVE_NUMPY = _np is not None

#: ``count_sat`` can only stay in int64 when every partial count fits; with
#: ``total_levels`` counting positions, counts are bounded by ``2**total``.
MAX_VECTOR_COUNT_LEVELS = 62


def int64_view(buffer) -> "object":
    """A read-write ``numpy.int64`` view over a buffer-protocol object."""
    return _np.frombuffer(buffer, dtype=_np.int64)


def reachable_mask(level, lo, hi, roots: Sequence[int]):
    """Boolean mask of node indices reachable from ``roots`` (terminal excluded).

    ``roots`` are node *indices* (not signed edges).  The walk is breadth
    first over whole frontiers: each round gathers both children of every
    newly marked node in two vectorised reads, dedups, and drops already
    marked indices, so the number of Python-level iterations is bounded by
    the node depth, not the node count.
    """
    mask = _np.zeros(level.shape[0], dtype=bool)
    frontier = _np.asarray(list(roots), dtype=_np.int64)
    if frontier.size:
        frontier = _np.unique(frontier)
        frontier = frontier[frontier != 0]
    while frontier.size:
        mask[frontier] = True
        nxt = _np.unique(
            _np.concatenate((lo[frontier] >> 1, hi[frontier] >> 1))
        )
        nxt = nxt[nxt != 0]
        frontier = nxt[~mask[nxt]]
    return mask


def count_sat_vector(
    level,
    lo,
    hi,
    root: int,
    pos_of_level,
    total_levels: int,
) -> Optional[int]:
    """Exact satisfying-assignment count of signed edge ``root``.

    A bottom-up pass over the flat arrays: reachable nodes are grouped by
    variable position and every group's counts are computed in a handful of
    whole-array operations from its (already counted) children — the scalar
    memoised recursion of the dict store becomes ``O(distinct levels)``
    numpy steps.  Counts are carried in int64, so callers must ensure
    ``total_levels <= MAX_VECTOR_COUNT_LEVELS``; returns None when the root
    is reachable-empty in a way the caller should handle (never, currently).

    ``pos_of_level`` maps variable level -> position among the counted
    variables (int64 array of size ``num_vars``; unused levels may hold any
    value).  Complemented edges count the complement space:
    ``cnt(e^1, q) == 2**(total-q) - cnt(e, q)``.
    """
    root_index = root >> 1
    mask = reachable_mask(level, lo, hi, (root_index,))
    idx = _np.nonzero(mask)[0]
    counts = _np.zeros(level.shape[0], dtype=_np.int64)
    if idx.size:
        pos = pos_of_level[level[idx]]
        order = _np.argsort(-pos, kind="stable")
        idx = idx[order]
        pos = pos[order]
        boundaries = _np.nonzero(_np.diff(pos))[0] + 1
        start = 0
        stops = list(boundaries) + [idx.size]
        for stop in stops:
            nodes = idx[start:stop]
            q = int(pos[start]) + 1
            full = 1 << (total_levels - q) if q <= total_levels else 1
            lo_val = _child_counts(level, counts, pos_of_level, lo[nodes], q, full)
            hi_val = _child_counts(level, counts, pos_of_level, hi[nodes], q, full)
            counts[nodes] = lo_val + hi_val
            start = stop
    root_pos = int(pos_of_level[level[root_index]])
    raw = int(counts[root_index]) << root_pos
    if root & 1:
        return (1 << total_levels) - raw
    return raw


def _child_counts(level, counts, pos_of_level, edges, q, full):
    """Counts-from-position-``q`` of a vector of signed child edges."""
    child = edges >> 1
    sign = edges & 1
    terminal = child == 0
    child_level = _np.where(terminal, 0, level[child])
    child_pos = pos_of_level[child_level]
    shift = _np.where(terminal, 0, child_pos - q)
    raw = counts[child] << shift
    return _np.where(sign == 1, full - raw, raw)
