"""Reduced Ordered Binary Decision Diagram (ROBDD) manager.

This module is the symbolic-representation substrate of the reproduction: it
plays the role that CUDD plays inside MUCKE in the original Getafix tool.  It
is a from-scratch, pure-Python ROBDD implementation with the operations the
fixed-point evaluator needs:

* ``ite`` / ``apply`` style Boolean connectives,
* existential and universal quantification over variable sets,
* the relational product ``and_exists`` (conjunction + quantification in one
  recursive pass, the workhorse of symbolic image computation),
* variable renaming (substitution of variables by variables),
* restriction (cofactoring), support computation, satisfying-assignment
  counting and enumeration.

Nodes are identified by integer indices into parallel arrays; the terminals
are the indices :data:`BddManager.FALSE` (0) and :data:`BddManager.TRUE` (1).
The manager does not garbage-collect nodes: for the workloads in this
repository (model checking scaled-down Boolean programs) the node table stays
small, and keeping all nodes alive lets every memoisation cache remain valid
for the lifetime of the manager.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["BddManager", "BddError"]


class BddError(Exception):
    """Raised for invalid uses of the BDD manager (unknown variables, ...)."""


class BddManager:
    """A manager owning a shared multi-rooted ROBDD forest.

    Parameters
    ----------
    var_names:
        Optional initial variable names, in order.  The position of a name in
        this sequence is its *level*: variables earlier in the sequence are
        tested closer to the root.  More variables can be added later with
        :meth:`add_var`, which appends them below all existing levels.
    """

    FALSE = 0
    TRUE = 1

    #: Sentinel level used for the two terminal nodes; always greater than the
    #: level of any variable node.
    _TERMINAL_LEVEL = 1 << 60

    def __init__(self, var_names: Optional[Sequence[str]] = None) -> None:
        # Parallel node arrays.  Index 0 is FALSE, index 1 is TRUE.
        self._level: List[int] = [self._TERMINAL_LEVEL, self._TERMINAL_LEVEL]
        self._lo: List[int] = [0, 1]
        self._hi: List[int] = [0, 1]
        # Unique table: (level, lo, hi) -> node index.
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Operation caches.
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        self._exists_cache: Dict[Tuple[int, frozenset], int] = {}
        self._forall_cache: Dict[Tuple[int, frozenset], int] = {}
        self._and_exists_cache: Dict[Tuple[int, int, frozenset], int] = {}
        self._rename_cache: Dict[Tuple[int, int], int] = {}
        self._rename_token = 0
        self._count_cache: Dict[int, int] = {}
        # Variable bookkeeping.
        self._var_names: List[str] = []
        self._name_to_var: Dict[str, int] = {}
        if var_names is not None:
            for name in var_names:
                self.add_var(name)

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> int:
        """Declare a new variable below all existing levels; return its index."""
        if name in self._name_to_var:
            raise BddError(f"variable {name!r} already declared")
        index = len(self._var_names)
        self._var_names.append(name)
        self._name_to_var[name] = index
        return index

    def var_index(self, name: str) -> int:
        """Return the level/index of a declared variable name."""
        try:
            return self._name_to_var[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None

    def var_name(self, index: int) -> str:
        """Return the name of the variable at ``index``."""
        return self._var_names[index]

    @property
    def var_names(self) -> Tuple[str, ...]:
        """All declared variable names, in level order."""
        return tuple(self._var_names)

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var_names)

    def var(self, var: int | str) -> int:
        """Return the BDD node for a single variable (``x``)."""
        index = self.var_index(var) if isinstance(var, str) else var
        if not 0 <= index < len(self._var_names):
            raise BddError(f"variable index {index} out of range")
        return self._mk(index, self.FALSE, self.TRUE)

    def nvar(self, var: int | str) -> int:
        """Return the BDD node for a negated variable (``not x``)."""
        index = self.var_index(var) if isinstance(var, str) else var
        return self._mk(index, self.TRUE, self.FALSE)

    # ------------------------------------------------------------------
    # Node creation
    # ------------------------------------------------------------------
    def _mk(self, level: int, lo: int, hi: int) -> int:
        """Find-or-create the node ``(level, lo, hi)`` (with reduction)."""
        if lo == hi:
            return lo
        key = (level, lo, hi)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._lo.append(lo)
            self._hi.append(hi)
            self._unique[key] = node
        return node

    # ------------------------------------------------------------------
    # Structural accessors
    # ------------------------------------------------------------------
    def level_of(self, node: int) -> int:
        """Return the level of a node (terminals have a large sentinel level)."""
        return self._level[node]

    def low(self, node: int) -> int:
        """Return the low (else) child of a node."""
        return self._lo[node]

    def high(self, node: int) -> int:
        """Return the high (then) child of a node."""
        return self._hi[node]

    def is_terminal(self, node: int) -> bool:
        """True iff the node is one of the two terminals."""
        return node <= 1

    def __len__(self) -> int:
        """Total number of nodes allocated by this manager (incl. terminals)."""
        return len(self._level)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f and g) or (not f and h)``."""
        # Terminal cases.
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level[f], self._level[g], self._level[h])
        f_lo, f_hi = self._cofactors(f, level)
        g_lo, g_hi = self._cofactors(g, level)
        h_lo, h_hi = self._cofactors(h, level)
        lo = self.ite(f_lo, g_lo, h_lo)
        hi = self.ite(f_hi, g_hi, h_hi)
        result = self._mk(level, lo, hi)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        if self._level[node] == level:
            return self._lo[node], self._hi[node]
        return node, node

    def not_(self, f: int) -> int:
        """Boolean negation."""
        if f == self.TRUE:
            return self.FALSE
        if f == self.FALSE:
            return self.TRUE
        cached = self._not_cache.get(f)
        if cached is not None:
            return cached
        result = self._mk(self._level[f], self.not_(self._lo[f]), self.not_(self._hi[f]))
        self._not_cache[f] = result
        self._not_cache[result] = f
        return result

    def and_(self, f: int, g: int) -> int:
        """Boolean conjunction."""
        return self.ite(f, g, self.FALSE)

    def or_(self, f: int, g: int) -> int:
        """Boolean disjunction."""
        return self.ite(f, self.TRUE, g)

    def xor(self, f: int, g: int) -> int:
        """Boolean exclusive or."""
        return self.ite(f, self.not_(g), g)

    def iff(self, f: int, g: int) -> int:
        """Boolean biconditional."""
        return self.ite(f, g, self.not_(g))

    def implies(self, f: int, g: int) -> int:
        """Boolean implication ``f -> g``."""
        return self.ite(f, g, self.TRUE)

    def conjoin(self, nodes: Iterable[int]) -> int:
        """Conjunction of an iterable of nodes (TRUE for the empty iterable)."""
        result = self.TRUE
        for node in nodes:
            result = self.and_(result, node)
            if result == self.FALSE:
                return result
        return result

    def disjoin(self, nodes: Iterable[int]) -> int:
        """Disjunction of an iterable of nodes (FALSE for the empty iterable)."""
        result = self.FALSE
        for node in nodes:
            result = self.or_(result, node)
            if result == self.TRUE:
                return result
        return result

    # ------------------------------------------------------------------
    # Quantification
    # ------------------------------------------------------------------
    def exists(self, f: int, variables: Iterable[int | str]) -> int:
        """Existentially quantify ``variables`` out of ``f``."""
        qvars = self._var_set(variables)
        if not qvars:
            return f
        return self._exists(f, qvars)

    def _exists(self, f: int, qvars: frozenset) -> int:
        if f <= 1:
            return f
        level = self._level[f]
        if level > max(qvars):
            return f
        key = (f, qvars)
        cached = self._exists_cache.get(key)
        if cached is not None:
            return cached
        lo = self._exists(self._lo[f], qvars)
        hi = self._exists(self._hi[f], qvars)
        if level in qvars:
            result = self.or_(lo, hi)
        else:
            result = self._mk(level, lo, hi)
        self._exists_cache[key] = result
        return result

    def forall(self, f: int, variables: Iterable[int | str]) -> int:
        """Universally quantify ``variables`` out of ``f``."""
        qvars = self._var_set(variables)
        if not qvars:
            return f
        return self._forall(f, qvars)

    def _forall(self, f: int, qvars: frozenset) -> int:
        if f <= 1:
            return f
        level = self._level[f]
        if level > max(qvars):
            return f
        key = (f, qvars)
        cached = self._forall_cache.get(key)
        if cached is not None:
            return cached
        lo = self._forall(self._lo[f], qvars)
        hi = self._forall(self._hi[f], qvars)
        if level in qvars:
            result = self.and_(lo, hi)
        else:
            result = self._mk(level, lo, hi)
        self._forall_cache[key] = result
        return result

    def and_exists(self, f: int, g: int, variables: Iterable[int | str]) -> int:
        """Relational product: ``exists variables. (f and g)`` in one pass."""
        qvars = self._var_set(variables)
        if not qvars:
            return self.and_(f, g)
        return self._and_exists(f, g, qvars)

    def _and_exists(self, f: int, g: int, qvars: frozenset) -> int:
        if f == self.FALSE or g == self.FALSE:
            return self.FALSE
        if f == self.TRUE and g == self.TRUE:
            return self.TRUE
        if f == self.TRUE:
            return self._exists(g, qvars)
        if g == self.TRUE:
            return self._exists(f, qvars)
        if f == g:
            return self._exists(f, qvars)
        # Canonicalise the argument order for better cache hit rates.
        if f > g:
            f, g = g, f
        key = (f, g, qvars)
        cached = self._and_exists_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level[f], self._level[g])
        f_lo, f_hi = self._cofactors(f, level)
        g_lo, g_hi = self._cofactors(g, level)
        if level in qvars:
            lo = self._and_exists(f_lo, g_lo, qvars)
            if lo == self.TRUE:
                result = self.TRUE
            else:
                hi = self._and_exists(f_hi, g_hi, qvars)
                result = self.or_(lo, hi)
        else:
            lo = self._and_exists(f_lo, g_lo, qvars)
            hi = self._and_exists(f_hi, g_hi, qvars)
            result = self._mk(level, lo, hi)
        self._and_exists_cache[key] = result
        return result

    def _var_set(self, variables: Iterable[int | str]) -> frozenset:
        indices = set()
        for var in variables:
            indices.add(self.var_index(var) if isinstance(var, str) else var)
        for index in indices:
            if not 0 <= index < len(self._var_names):
                raise BddError(f"variable index {index} out of range")
        return frozenset(indices)

    # ------------------------------------------------------------------
    # Substitution / renaming / restriction
    # ------------------------------------------------------------------
    def rename(self, f: int, mapping: Dict[int | str, int | str]) -> int:
        """Rename variables of ``f`` according to ``mapping`` (var -> var).

        The substitution is simultaneous and is implemented with an
        order-insensitive recursive rebuild (each renamed node is re-inserted
        with ``ite`` on the target variable), so the mapping does not have to
        respect the variable order.  The mapping must be injective on the
        variables it moves and no target variable may also appear in the
        support of ``f`` unless it is itself renamed away.
        """
        normalised: Dict[int, int] = {}
        for src, dst in mapping.items():
            src_index = self.var_index(src) if isinstance(src, str) else src
            dst_index = self.var_index(dst) if isinstance(dst, str) else dst
            if src_index != dst_index:
                normalised[src_index] = dst_index
        if not normalised:
            return f
        targets = list(normalised.values())
        if len(set(targets)) != len(targets):
            raise BddError("rename mapping must be injective")
        support = self.support(f)
        clashes = (set(targets) & support) - set(normalised)
        if clashes:
            names = sorted(self._var_names[i] for i in clashes)
            raise BddError(f"rename targets already in support: {names}")
        self._rename_token += 1
        return self._rename(f, normalised, self._rename_token)

    def _rename(self, f: int, mapping: Dict[int, int], token: int) -> int:
        if f <= 1:
            return f
        key = (f, token)
        cached = self._rename_cache.get(key)
        if cached is not None:
            return cached
        level = self._level[f]
        lo = self._rename(self._lo[f], mapping, token)
        hi = self._rename(self._hi[f], mapping, token)
        target = mapping.get(level, level)
        result = self.ite(self.var(target), hi, lo)
        self._rename_cache[key] = result
        return result

    def restrict(self, f: int, assignment: Dict[int | str, bool]) -> int:
        """Cofactor ``f`` by fixing the given variables to constants."""
        fixed = {
            (self.var_index(var) if isinstance(var, str) else var): bool(value)
            for var, value in assignment.items()
        }
        if not fixed:
            return f
        return self._restrict(f, fixed, {})

    def _restrict(self, f: int, fixed: Dict[int, bool], cache: Dict[int, int]) -> int:
        if f <= 1:
            return f
        cached = cache.get(f)
        if cached is not None:
            return cached
        level = self._level[f]
        if level in fixed:
            branch = self._hi[f] if fixed[level] else self._lo[f]
            result = self._restrict(branch, fixed, cache)
        else:
            lo = self._restrict(self._lo[f], fixed, cache)
            hi = self._restrict(self._hi[f], fixed, cache)
            result = self._mk(level, lo, hi)
        cache[f] = result
        return result

    def compose(self, f: int, var: int | str, g: int) -> int:
        """Substitute the function ``g`` for the variable ``var`` in ``f``."""
        index = self.var_index(var) if isinstance(var, str) else var
        return self._compose(f, index, g, {})

    def _compose(self, f: int, index: int, g: int, cache: Dict[int, int]) -> int:
        if f <= 1:
            return f
        if self._level[f] > index:
            return f
        cached = cache.get(f)
        if cached is not None:
            return cached
        level = self._level[f]
        if level == index:
            result = self.ite(g, self._hi[f], self._lo[f])
        else:
            lo = self._compose(self._lo[f], index, g, cache)
            hi = self._compose(self._hi[f], index, g, cache)
            result = self.ite(self.var(level), hi, lo)
        cache[f] = result
        return result

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def support(self, f: int) -> set:
        """Set of variable indices the function ``f`` depends on."""
        seen: set = set()
        result: set = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            result.add(self._level[node])
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return result

    def support_names(self, f: int) -> set:
        """Set of variable *names* the function ``f`` depends on."""
        return {self._var_names[index] for index in self.support(f)}

    def node_count(self, f: int) -> int:
        """Number of distinct decision nodes reachable from ``f`` (excl. terminals)."""
        seen: set = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return len(seen)

    def count_sat(self, f: int, variables: Optional[Iterable[int | str]] = None) -> int:
        """Number of satisfying assignments of ``f`` over ``variables``.

        When ``variables`` is omitted, all declared variables are used.
        """
        if variables is None:
            var_set = frozenset(range(len(self._var_names)))
        else:
            var_set = self._var_set(variables)
            missing = self.support(f) - var_set
            if missing:
                names = sorted(self._var_names[i] for i in missing)
                raise BddError(f"count_sat variables must cover the support; missing {names}")
        order = sorted(var_set)
        position = {index: pos for pos, index in enumerate(order)}
        total_levels = len(order)
        below_cache: Dict[Tuple[int, int], int] = {}

        def count_below(node: int, from_pos: int) -> int:
            """Assignments over variables at positions >= from_pos satisfying node."""
            if node == self.FALSE:
                return 0
            if node == self.TRUE:
                return 1 << (total_levels - from_pos)
            key = (node, from_pos)
            cached = below_cache.get(key)
            if cached is not None:
                return cached
            level = self._level[node]
            pos = position[level]
            gap = pos - from_pos
            sub = count_below(self._lo[node], pos + 1) + count_below(self._hi[node], pos + 1)
            result = sub << gap
            below_cache[key] = result
            return result

        return count_below(f, 0)

    def sat_one(self, f: int) -> Optional[Dict[int, bool]]:
        """One satisfying assignment (over the support only), or None if UNSAT."""
        if f == self.FALSE:
            return None
        assignment: Dict[int, bool] = {}
        node = f
        while node > 1:
            if self._lo[node] != self.FALSE:
                assignment[self._level[node]] = False
                node = self._lo[node]
            else:
                assignment[self._level[node]] = True
                node = self._hi[node]
        return assignment

    def sat_all(self, f: int, variables: Iterable[int | str]) -> Iterator[Dict[int, bool]]:
        """Iterate over all satisfying assignments restricted to ``variables``.

        Every yielded dictionary assigns a Boolean to *each* variable in
        ``variables`` (variables not in the support are enumerated both ways).
        The function must not depend on variables outside ``variables``.
        """
        var_list = sorted(self._var_set(variables))
        missing = self.support(f) - set(var_list)
        if missing:
            names = sorted(self._var_names[i] for i in missing)
            raise BddError(f"sat_all variables must cover the support; missing {names}")

        def recurse(node: int, pos: int, partial: Dict[int, bool]) -> Iterator[Dict[int, bool]]:
            if node == self.FALSE:
                return
            if pos == len(var_list):
                yield dict(partial)
                return
            index = var_list[pos]
            level = self._level[node] if node > 1 else self._TERMINAL_LEVEL
            if level == index:
                for value, child in ((False, self._lo[node]), (True, self._hi[node])):
                    partial[index] = value
                    yield from recurse(child, pos + 1, partial)
                del partial[index]
            else:
                for value in (False, True):
                    partial[index] = value
                    yield from recurse(node, pos + 1, partial)
                del partial[index]

        yield from recurse(f, 0, {})

    def cube(self, assignment: Dict[int | str, bool]) -> int:
        """The conjunction of literals described by ``assignment``."""
        result = self.TRUE
        for var, value in assignment.items():
            literal = self.var(var) if value else self.nvar(var)
            result = self.and_(result, literal)
        return result

    def eval(self, f: int, assignment: Dict[int | str, bool]) -> bool:
        """Evaluate ``f`` under a total assignment of its support."""
        fixed = {
            (self.var_index(var) if isinstance(var, str) else var): bool(value)
            for var, value in assignment.items()
        }
        node = f
        while node > 1:
            level = self._level[node]
            if level not in fixed:
                raise BddError(
                    f"assignment does not cover variable {self._var_names[level]!r}"
                )
            node = self._hi[node] if fixed[level] else self._lo[node]
        return node == self.TRUE

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop all operation caches (node table is kept)."""
        self._ite_cache.clear()
        self._not_cache.clear()
        self._exists_cache.clear()
        self._forall_cache.clear()
        self._and_exists_cache.clear()
        self._rename_cache.clear()
        self._count_cache.clear()

    def to_expr(self, f: int) -> str:
        """A (dense) textual if-then-else rendering, for debugging small BDDs."""
        if f == self.FALSE:
            return "FALSE"
        if f == self.TRUE:
            return "TRUE"
        name = self._var_names[self._level[f]]
        return f"ite({name}, {self.to_expr(self._hi[f])}, {self.to_expr(self._lo[f])})"
