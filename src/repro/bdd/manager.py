"""Reduced Ordered Binary Decision Diagram (ROBDD) manager with complement
edges and a mark-and-sweep garbage collector.

This module is the symbolic-representation substrate of the reproduction: it
plays the role that CUDD plays inside MUCKE in the original Getafix tool.  It
is a from-scratch, pure-Python implementation with the operations the
fixed-point evaluator needs.

Signed-edge (complement-edge) representation
--------------------------------------------
A BDD function is identified by a *signed edge*: an integer
``(node_index << 1) | complement_bit``.  There is a single terminal node at
index 0, so the regular edge ``0`` is the constant FALSE and its complemented
edge ``1`` is the constant TRUE — the classic ``FALSE == 0`` / ``TRUE == 1``
constants are preserved.  Negation is an O(1) edge flip (``f ^ 1``): it
allocates no nodes, touches no cache, and ``f`` and ``not f`` share every
decision node, which roughly halves the node table on negation-heavy
workloads (the optimised entry-forward system negates its ``Relevant``
relation on every outer round).

Canonicity is kept by the *attributed-edge invariant*: the stored ``then``
(high) edge of every node is regular.  :meth:`BddManager._mk` re-points a
node whose then-edge would be complemented at its complemented children and
returns the complemented edge instead, so structural equality of signed
edges remains function equality.

Complement edges also let several operations share one recursion and cache:

* ``or_(f, g)`` is De Morgan over the ``and_`` cache (``¬(¬f ∧ ¬g)``),
* ``forall`` is the dual of the ``exists`` recursion (``¬∃.¬f``),
* ``xor``/``iff`` strip operand signs into the result sign, halving the key
  space of their shared cache, and ``ite`` delegates its two-operand special
  cases to the ``and_``/``xor`` caches.

Garbage collection
------------------
Nodes are reclaimed by an explicit mark-and-sweep collector.  External roots
are tracked by reference counts (:meth:`ref` / :meth:`deref` — the
:class:`~repro.bdd.function.Function` wrapper refs its node for its
lifetime); :meth:`collect_garbage` marks from those roots plus any *extra
roots* the caller passes (e.g. the fixed-point evaluator's current
interpretations), frees every unmarked node into a free list for reuse, and
drops all operation caches so no cache entry can resurrect a dead node.
Registered GC hooks let consumers (the symbolic backend's plan memos)
invalidate their own node-keyed caches in the same sweep.

Collection only runs at *safe points*: callers invoke
:meth:`maybe_collect` (cheap check against a configurable, geometrically
growing node-table trigger, plus an optional operation-cache size trigger)
when every live edge is enumerable — the evaluator does so between outer
fixed-point iterations.  Nothing collects implicitly during an apply
recursion, so intermediate results never need protection.

Programs whose encodings have very many bit levels can exceed Python's
recursion limit; constructing the manager with ``explicit_stack=True``
switches the binary connectives, ``ite``, the quantifications
(``exists`` / ``forall`` / ``and_exists``) and both rename paths to
iterative, explicit-stack evaluations that are depth-independent
(``restrict``/``compose`` and the enumeration helpers recurse at most one
frame per variable level and stay recursive).

Every operation family maintains hit/miss counters; :meth:`BddManager.stats`
exposes them together with cache sizes, live/peak node counts and GC
counters.  :meth:`clear_caches` resets caches, statistics *and* the GC
bookkeeping in one step so per-run snapshots do not leak across runs.
"""

from __future__ import annotations

import os
import time
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import AnalysisTimeout, NodeBudgetExceeded

__all__ = ["BddManager", "BddError", "QuantCube"]


class BddError(Exception):
    """Raised for invalid uses of the BDD manager (unknown variables, ...)."""


class QuantCube:
    """An interned quantification variable set.

    ``levels`` is the sorted tuple of variable indices, ``members`` a set for
    O(1) membership tests, and ``last`` the deepest (largest) quantified
    level — the point below which quantification is the identity.  Cubes are
    interned per manager (see :meth:`BddManager.quant_cube`), so identity
    comparison and the default object hash make them cheap cache-key
    components.  The constructor normalises (sorts, dedups) its input and
    rejects empty sets, so a hand-built cube behaves like an interned one.
    """

    __slots__ = ("levels", "members", "last", "uid")

    def __init__(self, levels: Iterable[int]) -> None:
        ordered = tuple(sorted(set(levels)))
        if not ordered:
            raise BddError("a quantifier cube needs at least one variable")
        self.levels = ordered
        self.members = set(ordered)
        self.last = ordered[-1]
        # Small per-manager integer assigned at intern time by the array
        # store, where it packs into integer cache keys.  The dict store
        # never reads it.
        self.uid: Optional[int] = None

    def __repr__(self) -> str:
        return f"QuantCube{self.levels}"


#: Things accepted wherever a set of quantification variables is expected.
QuantVars = Union[QuantCube, Iterable[Union[int, str]]]


class BddManager:
    """A manager owning a shared multi-rooted ROBDD forest (signed edges).

    Parameters
    ----------
    var_names:
        Optional initial variable names, in order.  The position of a name in
        this sequence is its *level*: variables earlier in the sequence are
        tested closer to the root.  More variables can be added later with
        :meth:`add_var`, which appends them below all existing levels.
    explicit_stack:
        When True, the binary connectives, ``ite``, the quantifications and
        the rename recursions run on an explicit work stack instead of
        Python recursion, so arbitrarily deep BDDs cannot trip the
        interpreter's recursion limit.
    gc_enabled:
        When False, :meth:`maybe_collect` never collects (explicit
        :meth:`collect_garbage` calls still work).
    gc_threshold:
        Live-node count above which :meth:`maybe_collect` triggers a
        collection.  After each collection the trigger grows to
        ``live * gc_growth`` (never below the configured floor), so a table
        that is mostly live does not thrash.
    gc_growth:
        Geometric growth factor of the collection trigger.
    cache_limit:
        Optional cap on the summed size of the operation caches; when a
        :meth:`maybe_collect` safe point finds the caches larger, they are
        dropped even if no node collection runs.
    store:
        Node-store layout: ``"array"`` (default) selects the struct-of-arrays
        store (flat ``array('q')`` node vectors, packed-integer cache keys,
        vectorised GC sweep and ``count_sat``, shared-memory snapshot
        support); ``"dict"`` selects the original list-and-tuple store as
        the sequential fallback.  ``None`` consults the ``REPRO_BDD_STORE``
        environment variable before defaulting to ``"array"``.  Both layouts
        are behaviourally identical behind the signed-edge API (the
        differential suite is parametrised over both).
    debug_checks:
        Kernel sanitizer.  When True, :meth:`_debug_validate` runs at every
        GC safe point (each :meth:`maybe_collect` call and the end of each
        :meth:`collect_garbage` sweep) and cross-checks the node-store
        invariants — live counter vs non-free slots, unique table vs node
        vectors, free-list purity, operation-cache edge liveness, external
        reference validity — raising :class:`BddError` on the first
        violation.  ``None`` (the default) consults the
        ``REPRO_DEBUG_CHECKS`` environment variable.  Validation is
        O(nodes + cache entries) per safe point: a debugging tool, not a
        production mode.
    """

    FALSE = 0
    TRUE = 1

    #: Node-store layout name, reported by :meth:`stats`.
    STORE = "dict"

    def __new__(cls, *args, **kwargs):
        if cls is BddManager:
            choice = kwargs.get("store")
            if choice is None:
                choice = os.environ.get("REPRO_BDD_STORE") or "array"
            if choice == "array":
                from ._array import ArrayBddManager

                cls = ArrayBddManager
            elif choice != "dict":
                raise BddError(f"unknown node store {choice!r} (use 'array' or 'dict')")
        return object.__new__(cls)

    #: Sentinel level used for the terminal node; greater than any variable.
    _TERMINAL_LEVEL = 1 << 60
    #: Sentinel level marking a reclaimed (free-listed) node slot.
    _FREE_LEVEL = -1

    def __init__(
        self,
        var_names: Optional[Sequence[str]] = None,
        explicit_stack: bool = False,
        gc_enabled: bool = True,
        gc_threshold: int = 65_536,
        gc_growth: float = 2.0,
        cache_limit: Optional[int] = None,
        store: Optional[str] = None,
        debug_checks: Optional[bool] = None,
    ) -> None:
        # ``store`` is consumed by :meth:`__new__` (layout dispatch); it is
        # accepted here so both layouts share one constructor signature.
        if store is not None and store not in ("array", "dict"):
            raise BddError(f"unknown node store {store!r} (use 'array' or 'dict')")
        if debug_checks is None:
            debug_checks = os.environ.get("REPRO_DEBUG_CHECKS", "") not in ("", "0")
        self._debug_checks = bool(debug_checks)
        # Parallel node arrays.  Index 0 is the sole terminal; a signed edge
        # is (index << 1) | complement, so FALSE = 0 and TRUE = 1.
        self._level: List[int] = [self._TERMINAL_LEVEL]
        self._lo: List[int] = [0]
        self._hi: List[int] = [0]
        # Unique table: (level, lo_edge, hi_edge) -> node index.
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Operation caches, one per operation family so one workload cannot
        # evict another's entries and keys stay small.  `or` rides the `and`
        # cache (De Morgan), `iff` rides `xor`, `forall` rides `exists`.
        self._and_cache: Dict[Tuple[int, int], int] = {}
        self._xor_cache: Dict[Tuple[int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._exists_cache: Dict[Tuple[int, QuantCube], int] = {}
        self._and_exists_cache: Dict[Tuple[int, int, QuantCube], int] = {}
        self._rename_cache: Dict[Tuple[int, "_RenameMap"], int] = {}
        self._restrict_cache: Dict[Tuple[int, "_RenameMap"], int] = {}
        # Interning tables for quantifier cubes and rename/restrict maps.
        self._cube_table: Dict[Tuple[int, ...], QuantCube] = {}
        self._rename_table: Dict[Tuple[Tuple[int, int], ...], "_RenameMap"] = {}
        self._restrict_table: Dict[Tuple[Tuple[int, bool], ...], "_RenameMap"] = {}
        self._explicit_stack = bool(explicit_stack)
        # Hit/miss counters, keyed like the caches.
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}
        for op in ("and", "xor", "ite", "exists", "and_exists", "rename", "restrict"):
            self._hits[op] = 0
            self._misses[op] = 0
        self._rename_fast = 0
        self._rename_slow = 0
        # Garbage collection state.
        self._free: List[int] = []
        self._live = 1  # the terminal
        self._peak_live = 1
        self._extref: Dict[int, int] = {}
        self._gc_hooks: List[Callable[[], None]] = []
        self._gc_enabled = bool(gc_enabled)
        self._gc_floor = int(gc_threshold)
        self._gc_threshold = int(gc_threshold)
        self._gc_growth = float(gc_growth)
        self._cache_limit = cache_limit
        self._gc_collections = 0
        self._gc_reclaimed = 0
        # Cooperative resource limits (see set_node_budget / set_deadline).
        # The deadline is checked at GC safe points and, via a countdown, at
        # node-allocation checkpoints so runaway apply loops stay bounded
        # without paying a clock read per node.
        self._node_budget: Optional[int] = None
        self._deadline: Optional[float] = None
        self._deadline_budget: Optional[float] = None
        self._deadline_started: Optional[float] = None
        self._deadline_interval = 1024
        self._deadline_countdown = self._deadline_interval
        # Variable bookkeeping.
        self._var_names: List[str] = []
        self._name_to_var: Dict[str, int] = {}
        if var_names is not None:
            for name in var_names:
                self.add_var(name)

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> int:
        """Declare a new variable below all existing levels; return its index."""
        if name in self._name_to_var:
            raise BddError(f"variable {name!r} already declared")
        index = len(self._var_names)
        self._var_names.append(name)
        self._name_to_var[name] = index
        return index

    def var_index(self, name: str) -> int:
        """Return the level/index of a declared variable name."""
        try:
            return self._name_to_var[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None

    def var_name(self, index: int) -> str:
        """Return the name of the variable at ``index``."""
        return self._var_names[index]

    @property
    def var_names(self) -> Tuple[str, ...]:
        """All declared variable names, in level order."""
        return tuple(self._var_names)

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var_names)

    def var(self, var: int | str) -> int:
        """Return the BDD edge for a single variable (``x``)."""
        index = self.var_index(var) if isinstance(var, str) else var
        if not 0 <= index < len(self._var_names):
            raise BddError(f"variable index {index} out of range")
        return self._mk(index, self.FALSE, self.TRUE)

    def nvar(self, var: int | str) -> int:
        """Return the BDD edge for a negated variable (``not x``)."""
        return self.var(var) ^ 1

    # ------------------------------------------------------------------
    # Node creation
    # ------------------------------------------------------------------
    def _mk(self, level: int, lo: int, hi: int) -> int:
        """Find-or-create the node ``(level, lo, hi)``; returns a signed edge.

        Enforces both reduction (``lo == hi`` collapses) and the complement
        canonical form (the stored then-edge is regular).
        """
        if lo == hi:
            return lo
        sign = hi & 1
        if sign:
            lo ^= 1
            hi ^= 1
        key = (level, lo, hi)
        index = self._unique.get(key)
        if index is None:
            free = self._free
            if free:
                index = free.pop()
                self._level[index] = level
                self._lo[index] = lo
                self._hi[index] = hi
            else:
                index = len(self._level)
                self._level.append(level)
                self._lo.append(lo)
                self._hi.append(hi)
            self._unique[key] = index
            self._live += 1
            if self._live > self._peak_live:
                self._peak_live = self._live
            # Apply-loop checkpoints: every allocation is a consistent point
            # (the new node is valid, caches untouched), so raising here
            # leaves the manager releasable.
            if self._node_budget is not None and self._live > self._node_budget:
                raise NodeBudgetExceeded(consumed=self._live, budget=self._node_budget)
            if self._deadline is not None:
                self._deadline_countdown -= 1
                if self._deadline_countdown <= 0:
                    self._deadline_countdown = self._deadline_interval
                    self._check_deadline()
        return (index << 1) | sign

    # ------------------------------------------------------------------
    # Structural accessors
    # ------------------------------------------------------------------
    def level_of(self, edge: int) -> int:
        """Return the level of an edge (terminals have a large sentinel level)."""
        return self._level[edge >> 1]

    def low(self, edge: int) -> int:
        """Return the low (else) cofactor edge, complement applied."""
        return self._lo[edge >> 1] ^ (edge & 1)

    def high(self, edge: int) -> int:
        """Return the high (then) cofactor edge, complement applied."""
        return self._hi[edge >> 1] ^ (edge & 1)

    def is_terminal(self, edge: int) -> bool:
        """True iff the edge denotes one of the two constants."""
        return edge <= 1

    def is_complemented(self, edge: int) -> bool:
        """True iff the edge carries the complement attribute."""
        return bool(edge & 1)

    def regular(self, edge: int) -> int:
        """The regular (sign-stripped) version of an edge."""
        return edge & ~1

    def __len__(self) -> int:
        """Number of *live* nodes owned by this manager (incl. the terminal)."""
        return self._live

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def not_(self, f: int) -> int:
        """Boolean negation: an O(1) complement-edge flip (no allocation)."""
        return f ^ 1

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f and g) or (not f and h)``.

        Two-operand shapes are delegated to the ``and``/``xor`` caches; only
        genuinely three-operand calls use the ``ite`` cache, with the first
        operand made regular (by swapping the branches) and the result sign
        normalised on the then-branch.
        """
        if self._explicit_stack:
            return self._ite_iter(f, g, h)
        return self._ite(f, g, h)

    def _ite_norm(self, f: int, g: int, h: int):
        """Shared ``ite`` normalisation: terminal cases and 2-operand
        delegations resolve to ``(result, None)``; genuinely 3-operand calls
        resolve to ``(None, (f, g, h, sign))`` with f and g regular."""
        if f == self.TRUE:
            return g, None
        if f == self.FALSE:
            return h, None
        if g == h:
            return g, None
        if f & 1:
            f ^= 1
            g, h = h, g
        if g == f:
            g = 1
        elif g == f ^ 1:
            g = 0
        if h == f:
            h = 0
        elif h == f ^ 1:
            h = 1
        if g == h:
            return g, None
        if g == 1 and h == 0:
            return f, None
        if g == 0 and h == 1:
            return f ^ 1, None
        if g == 1:  # f or h
            return self.or_(f, h), None
        if g == 0:  # not f and h
            return self.and_(f ^ 1, h), None
        if h == 0:  # f and g
            return self.and_(f, g), None
        if h == 1:  # f implies g
            return self.and_(f, g ^ 1) ^ 1, None
        if g == h ^ 1:  # f iff g
            return self.xor(f, h), None
        sign = g & 1
        if sign:
            g ^= 1
            h ^= 1
        return None, (f, g, h, sign)

    def _ite(self, f: int, g: int, h: int) -> int:
        done, triple = self._ite_norm(f, g, h)
        if triple is None:
            return done
        f, g, h, sign = triple
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            self._hits["ite"] += 1
            return cached ^ sign
        self._misses["ite"] += 1
        level = min(self._level[f >> 1], self._level[g >> 1], self._level[h >> 1])
        f_lo, f_hi = self._cofactors(f, level)
        g_lo, g_hi = self._cofactors(g, level)
        h_lo, h_hi = self._cofactors(h, level)
        lo = self._ite(f_lo, g_lo, h_lo)
        hi = self._ite(f_hi, g_hi, h_hi)
        result = self._mk(level, lo, hi)
        self._ite_cache[key] = result
        return result ^ sign

    def _ite_iter(self, root_f: int, root_g: int, root_h: int) -> int:
        """Explicit-stack ``ite`` (frame scheme of :meth:`_and_iter`)."""
        cache = self._ite_cache
        results: List[int] = []
        work: List[Tuple] = [(0, root_f, root_g, root_h)]
        while work:
            frame = work.pop()
            if frame[0] == 0:
                done, triple = self._ite_norm(frame[1], frame[2], frame[3])
                if triple is None:
                    results.append(done)
                    continue
                f, g, h, sign = triple
                key = (f, g, h)
                cached = cache.get(key)
                if cached is not None:
                    self._hits["ite"] += 1
                    results.append(cached ^ sign)
                    continue
                self._misses["ite"] += 1
                level = min(
                    self._level[f >> 1], self._level[g >> 1], self._level[h >> 1]
                )
                f_lo, f_hi = self._cofactors(f, level)
                g_lo, g_hi = self._cofactors(g, level)
                h_lo, h_hi = self._cofactors(h, level)
                work.append((1, key, level, sign))
                work.append((0, f_hi, g_hi, h_hi))
                work.append((0, f_lo, g_lo, h_lo))
            else:
                key, level, sign = frame[1], frame[2], frame[3]
                hi = results.pop()
                lo = results.pop()
                result = self._mk(level, lo, hi)
                cache[key] = result
                results.append(result ^ sign)
        return results[0]

    def _cofactors(self, edge: int, level: int) -> Tuple[int, int]:
        index = edge >> 1
        if self._level[index] == level:
            sign = edge & 1
            return self._lo[index] ^ sign, self._hi[index] ^ sign
        return edge, edge

    def and_(self, f: int, g: int) -> int:
        """Boolean conjunction (dedicated apply recursion, own cache)."""
        if self._explicit_stack:
            return self._and_iter(f, g)
        return self._and(f, g)

    def _and(self, f: int, g: int) -> int:
        if f == g or g == 1:
            return f
        if f == 1:
            return g
        if f == 0 or g == 0 or f == g ^ 1:
            return 0
        # Canonicalise the operand order: conjunction is commutative.
        if f > g:
            f, g = g, f
        key = (f, g)
        cached = self._and_cache.get(key)
        if cached is not None:
            self._hits["and"] += 1
            return cached
        self._misses["and"] += 1
        f_index = f >> 1
        g_index = g >> 1
        level_f = self._level[f_index]
        level_g = self._level[g_index]
        if level_f == level_g:
            level = level_f
            f_sign = f & 1
            g_sign = g & 1
            lo = self._and(self._lo[f_index] ^ f_sign, self._lo[g_index] ^ g_sign)
            hi = self._and(self._hi[f_index] ^ f_sign, self._hi[g_index] ^ g_sign)
        elif level_f < level_g:
            level = level_f
            f_sign = f & 1
            lo = self._and(self._lo[f_index] ^ f_sign, g)
            hi = self._and(self._hi[f_index] ^ f_sign, g)
        else:
            level = level_g
            g_sign = g & 1
            lo = self._and(f, self._lo[g_index] ^ g_sign)
            hi = self._and(f, self._hi[g_index] ^ g_sign)
        result = lo if lo == hi else self._mk(level, lo, hi)
        self._and_cache[key] = result
        return result

    def _and_iter(self, root_f: int, root_g: int) -> int:
        """Explicit-stack conjunction (frames as in the seed's binary iter)."""
        cache = self._and_cache
        results: List[int] = []
        work: List[Tuple] = [(0, root_f, root_g)]
        while work:
            frame = work.pop()
            if frame[0] == 0:
                f, g = frame[1], frame[2]
                if f == g or g == 1:
                    results.append(f)
                    continue
                if f == 1:
                    results.append(g)
                    continue
                if f == 0 or g == 0 or f == g ^ 1:
                    results.append(0)
                    continue
                if f > g:
                    f, g = g, f
                key = (f, g)
                cached = cache.get(key)
                if cached is not None:
                    self._hits["and"] += 1
                    results.append(cached)
                    continue
                self._misses["and"] += 1
                level_f = self._level[f >> 1]
                level_g = self._level[g >> 1]
                level = level_f if level_f < level_g else level_g
                f_lo, f_hi = self._cofactors(f, level)
                g_lo, g_hi = self._cofactors(g, level)
                work.append((1, key, level))
                work.append((0, f_hi, g_hi))
                work.append((0, f_lo, g_lo))
            else:
                key, level = frame[1], frame[2]
                hi = results.pop()
                lo = results.pop()
                result = lo if lo == hi else self._mk(level, lo, hi)
                cache[key] = result
                results.append(result)
        return results[0]

    def or_(self, f: int, g: int) -> int:
        """Boolean disjunction: De Morgan over the ``and_`` cache."""
        if self._explicit_stack:
            return self._and_iter(f ^ 1, g ^ 1) ^ 1
        return self._and(f ^ 1, g ^ 1) ^ 1

    def xor(self, f: int, g: int) -> int:
        """Boolean exclusive or.

        Operand signs cancel into the result sign (``¬f ⊕ g = ¬(f ⊕ g)``), so
        the cache only ever holds regular operand pairs.
        """
        if self._explicit_stack:
            return self._xor_iter(f, g)
        return self._xor(f, g)

    def _xor(self, f: int, g: int) -> int:
        sign = (f ^ g) & 1
        f &= ~1
        g &= ~1
        if f == g:
            return sign
        if f == 0:
            return g ^ sign
        if g == 0:
            return f ^ sign
        if f > g:
            f, g = g, f
        key = (f, g)
        cached = self._xor_cache.get(key)
        if cached is not None:
            self._hits["xor"] += 1
            return cached ^ sign
        self._misses["xor"] += 1
        f_index = f >> 1
        g_index = g >> 1
        level_f = self._level[f_index]
        level_g = self._level[g_index]
        if level_f == level_g:
            level = level_f
            lo = self._xor(self._lo[f_index], self._lo[g_index])
            hi = self._xor(self._hi[f_index], self._hi[g_index])
        elif level_f < level_g:
            level = level_f
            lo = self._xor(self._lo[f_index], g)
            hi = self._xor(self._hi[f_index], g)
        else:
            level = level_g
            lo = self._xor(f, self._lo[g_index])
            hi = self._xor(f, self._hi[g_index])
        result = lo if lo == hi else self._mk(level, lo, hi)
        self._xor_cache[key] = result
        return result ^ sign

    def _xor_iter(self, root_f: int, root_g: int) -> int:
        cache = self._xor_cache
        results: List[int] = []
        work: List[Tuple] = [(0, root_f, root_g)]
        while work:
            frame = work.pop()
            if frame[0] == 0:
                f, g = frame[1], frame[2]
                sign = (f ^ g) & 1
                f &= ~1
                g &= ~1
                if f == g:
                    results.append(sign)
                    continue
                if f == 0:
                    results.append(g ^ sign)
                    continue
                if g == 0:
                    results.append(f ^ sign)
                    continue
                if f > g:
                    f, g = g, f
                key = (f, g)
                cached = cache.get(key)
                if cached is not None:
                    self._hits["xor"] += 1
                    results.append(cached ^ sign)
                    continue
                self._misses["xor"] += 1
                level_f = self._level[f >> 1]
                level_g = self._level[g >> 1]
                level = level_f if level_f < level_g else level_g
                f_lo, f_hi = self._cofactors(f, level)
                g_lo, g_hi = self._cofactors(g, level)
                work.append((1, key, level, sign))
                work.append((0, f_hi, g_hi))
                work.append((0, f_lo, g_lo))
            else:
                key, level, sign = frame[1], frame[2], frame[3]
                hi = results.pop()
                lo = results.pop()
                result = lo if lo == hi else self._mk(level, lo, hi)
                cache[key] = result
                results.append(result ^ sign)
        return results[0]

    # ------------------------------------------------------------------
    # Derived connectives
    # ------------------------------------------------------------------
    def iff(self, f: int, g: int) -> int:
        """Boolean biconditional (the complement of ``xor``)."""
        return self.xor(f, g) ^ 1

    def implies(self, f: int, g: int) -> int:
        """Boolean implication ``f -> g``."""
        return self.and_(f, g ^ 1) ^ 1

    def conjoin(self, nodes: Iterable[int]) -> int:
        """Conjunction of an iterable of edges (TRUE for the empty iterable)."""
        result = self.TRUE
        for node in nodes:
            result = self.and_(result, node)
            if result == self.FALSE:
                return result
        return result

    def disjoin(self, nodes: Iterable[int]) -> int:
        """Disjunction of an iterable of edges (FALSE for the empty iterable)."""
        result = self.FALSE
        for node in nodes:
            result = self.or_(result, node)
            if result == self.TRUE:
                return result
        return result

    # ------------------------------------------------------------------
    # Quantification
    # ------------------------------------------------------------------
    def quant_cube(self, variables: QuantVars) -> Optional[QuantCube]:
        """Intern a set of quantification variables as a :class:`QuantCube`.

        Returns None for the empty set.  Callers that quantify over the same
        variable set repeatedly (the symbolic backend's compiled plans, for
        example) can intern the cube once and pass it to :meth:`exists` /
        :meth:`forall` / :meth:`and_exists` directly.
        """
        if isinstance(variables, QuantCube):
            return variables
        levels = tuple(sorted(self._var_set(variables)))
        if not levels:
            return None
        cube = self._cube_table.get(levels)
        if cube is None:
            cube = QuantCube(levels)
            self._cube_table[levels] = cube
        return cube

    def exists(self, f: int, variables: QuantVars) -> int:
        """Existentially quantify ``variables`` out of ``f``."""
        cube = self.quant_cube(variables)
        if cube is None:
            return f
        if self._explicit_stack:
            return self._exists_iter(f, cube)
        return self._exists(f, cube)

    def _exists(self, f: int, cube: QuantCube) -> int:
        if f <= 1:
            return f
        index = f >> 1
        level = self._level[index]
        if level > cube.last:
            return f
        key = (f, cube)
        cached = self._exists_cache.get(key)
        if cached is not None:
            self._hits["exists"] += 1
            return cached
        self._misses["exists"] += 1
        sign = f & 1
        lo = self._lo[index] ^ sign
        hi = self._hi[index] ^ sign
        if level in cube.members:
            r_lo = self._exists(lo, cube)
            if r_lo == self.TRUE:
                result = self.TRUE
            else:
                result = self.or_(r_lo, self._exists(hi, cube))
        else:
            result = self._mk(level, self._exists(lo, cube), self._exists(hi, cube))
        self._exists_cache[key] = result
        return result

    def _exists_iter(self, root: int, cube: QuantCube) -> int:
        """Explicit-stack existential quantification.

        Frames: ``(0, f)`` evaluate; ``(1, key, hi)`` quantified level after
        the lo branch (preserves the lo == TRUE short-circuit); ``(2, key)``
        quantified combine; ``(3, key, level)`` free-level combine.
        """
        cache = self._exists_cache
        results: List[int] = []
        work: List[Tuple] = [(0, root)]
        while work:
            frame = work.pop()
            tag = frame[0]
            if tag == 0:
                f = frame[1]
                if f <= 1:
                    results.append(f)
                    continue
                index = f >> 1
                level = self._level[index]
                if level > cube.last:
                    results.append(f)
                    continue
                key = (f, cube)
                cached = cache.get(key)
                if cached is not None:
                    self._hits["exists"] += 1
                    results.append(cached)
                    continue
                self._misses["exists"] += 1
                sign = f & 1
                lo = self._lo[index] ^ sign
                hi = self._hi[index] ^ sign
                if level in cube.members:
                    work.append((1, key, hi))
                    work.append((0, lo))
                else:
                    work.append((3, key, level))
                    work.append((0, hi))
                    work.append((0, lo))
            elif tag == 1:
                key, hi = frame[1], frame[2]
                r_lo = results.pop()
                if r_lo == self.TRUE:
                    cache[key] = self.TRUE
                    results.append(self.TRUE)
                else:
                    results.append(r_lo)
                    work.append((2, key))
                    work.append((0, hi))
            elif tag == 2:
                key = frame[1]
                r_hi = results.pop()
                r_lo = results.pop()
                result = self.or_(r_lo, r_hi)
                cache[key] = result
                results.append(result)
            else:
                key, level = frame[1], frame[2]
                r_hi = results.pop()
                r_lo = results.pop()
                result = self._mk(level, r_lo, r_hi)
                cache[key] = result
                results.append(result)
        return results[0]

    def forall(self, f: int, variables: QuantVars) -> int:
        """Universally quantify: the dual of ``exists`` (``¬∃.¬f``)."""
        cube = self.quant_cube(variables)
        if cube is None:
            return f
        if self._explicit_stack:
            return self._exists_iter(f ^ 1, cube) ^ 1
        return self._exists(f ^ 1, cube) ^ 1

    def and_exists(self, f: int, g: int, variables: QuantVars) -> int:
        """Relational product: ``exists variables. (f and g)`` in one pass."""
        cube = self.quant_cube(variables)
        if cube is None:
            return self.and_(f, g)
        if self._explicit_stack:
            return self._and_exists_iter(f, g, cube)
        return self._and_exists(f, g, cube)

    def _and_exists(self, f: int, g: int, cube: QuantCube) -> int:
        if f == 0 or g == 0 or f == g ^ 1:
            return 0
        if f == 1 and g == 1:
            return 1
        if f == 1:
            return self._exists(g, cube)
        if g == 1 or f == g:
            return self._exists(f, cube)
        # Canonicalise the argument order for better cache hit rates.
        if f > g:
            f, g = g, f
        level_f = self._level[f >> 1]
        level_g = self._level[g >> 1]
        level = level_f if level_f < level_g else level_g
        if level > cube.last:
            # No quantified variable can appear below this point.
            return self._and(f, g)
        key = (f, g, cube)
        cached = self._and_exists_cache.get(key)
        if cached is not None:
            self._hits["and_exists"] += 1
            return cached
        self._misses["and_exists"] += 1
        f_lo, f_hi = self._cofactors(f, level)
        g_lo, g_hi = self._cofactors(g, level)
        if level in cube.members:
            lo = self._and_exists(f_lo, g_lo, cube)
            if lo == self.TRUE:
                result = self.TRUE
            else:
                hi = self._and_exists(f_hi, g_hi, cube)
                result = self.or_(lo, hi)
        else:
            lo = self._and_exists(f_lo, g_lo, cube)
            hi = self._and_exists(f_hi, g_hi, cube)
            result = self._mk(level, lo, hi)
        self._and_exists_cache[key] = result
        return result

    def _and_exists_iter(self, root_f: int, root_g: int, cube: QuantCube) -> int:
        """Explicit-stack relational product (frame scheme of :meth:`_exists_iter`)."""
        cache = self._and_exists_cache
        results: List[int] = []
        work: List[Tuple] = [(0, root_f, root_g)]
        while work:
            frame = work.pop()
            tag = frame[0]
            if tag == 0:
                f, g = frame[1], frame[2]
                if f == 0 or g == 0 or f == g ^ 1:
                    results.append(0)
                    continue
                if f == 1 and g == 1:
                    results.append(1)
                    continue
                if f == 1:
                    results.append(self._exists_iter(g, cube))
                    continue
                if g == 1 or f == g:
                    results.append(self._exists_iter(f, cube))
                    continue
                if f > g:
                    f, g = g, f
                level_f = self._level[f >> 1]
                level_g = self._level[g >> 1]
                level = level_f if level_f < level_g else level_g
                if level > cube.last:
                    results.append(self._and_iter(f, g))
                    continue
                key = (f, g, cube)
                cached = cache.get(key)
                if cached is not None:
                    self._hits["and_exists"] += 1
                    results.append(cached)
                    continue
                self._misses["and_exists"] += 1
                f_lo, f_hi = self._cofactors(f, level)
                g_lo, g_hi = self._cofactors(g, level)
                if level in cube.members:
                    work.append((1, key, f_hi, g_hi))
                    work.append((0, f_lo, g_lo))
                else:
                    work.append((3, key, level))
                    work.append((0, f_hi, g_hi))
                    work.append((0, f_lo, g_lo))
            elif tag == 1:
                key, f_hi, g_hi = frame[1], frame[2], frame[3]
                lo = results.pop()
                if lo == self.TRUE:
                    cache[key] = self.TRUE
                    results.append(self.TRUE)
                else:
                    results.append(lo)
                    work.append((2, key))
                    work.append((0, f_hi, g_hi))
            elif tag == 2:
                key = frame[1]
                hi = results.pop()
                lo = results.pop()
                result = self.or_(lo, hi)
                cache[key] = result
                results.append(result)
            else:
                key, level = frame[1], frame[2]
                hi = results.pop()
                lo = results.pop()
                result = self._mk(level, lo, hi)
                cache[key] = result
                results.append(result)
        return results[0]

    def _var_set(self, variables: Iterable[int | str]) -> frozenset:
        indices = set()
        for var in variables:
            indices.add(self.var_index(var) if isinstance(var, str) else var)
        for index in indices:
            if not 0 <= index < len(self._var_names):
                raise BddError(f"variable index {index} out of range")
        return frozenset(indices)

    # ------------------------------------------------------------------
    # Substitution / renaming / restriction
    # ------------------------------------------------------------------
    def rename(self, f: int, mapping: Dict[int | str, int | str]) -> int:
        """Rename variables of ``f`` according to ``mapping`` (var -> var).

        The substitution is simultaneous and order-insensitive: when the
        mapping preserves the relative level order of the function's support
        (the common prime/unprime shift produced by the template encoders),
        the BDD is rebuilt structurally node-by-node; otherwise each renamed
        node is re-inserted with ``ite`` on the target variable.  The mapping
        must be injective on the variables it moves and no target variable
        may also appear in the support of ``f`` unless it is itself renamed
        away.

        Renaming commutes with complementation, so results are cached per
        (regular edge, interned mapping) and the sign is re-applied on the
        way out; repeated renames of the same function — every fixed-point
        iteration applies the same relation arguments — are constant-time
        after the first: a hit on the cross-call cache skips even the
        support walk that validates the mapping (validation already passed
        when the entry was created).
        """
        normalised: Dict[int, int] = {}
        for src, dst in mapping.items():
            src_index = self.var_index(src) if isinstance(src, str) else src
            dst_index = self.var_index(dst) if isinstance(dst, str) else dst
            if src_index != dst_index:
                normalised[src_index] = dst_index
        if not normalised:
            return f
        intern_key = tuple(sorted(normalised.items()))
        rmap = self._rename_table.get(intern_key)
        if rmap is not None:
            cached = self._rename_cache.get((f & ~1, rmap))
            if cached is not None:
                self._hits["rename"] += 1
                return cached ^ (f & 1)
        targets = list(normalised.values())
        if len(set(targets)) != len(targets):
            raise BddError("rename mapping must be injective")
        support = self.support(f)
        clashes = (set(targets) & support) - set(normalised)
        if clashes:
            names = sorted(self._var_names[i] for i in clashes)
            raise BddError(f"rename targets already in support: {names}")
        if rmap is None:
            rmap = _RenameMap(dict(normalised))
            self._rename_table[intern_key] = rmap
        ordered = sorted(support)
        mapped = [normalised.get(levels, levels) for levels in ordered]
        if all(mapped[i] < mapped[i + 1] for i in range(len(mapped) - 1)):
            # Order-preserving on the support: every rebuilt child keeps its
            # mapped levels strictly below its parent's mapped level, so the
            # ROBDD invariants survive a direct structural rebuild.
            self._rename_fast += 1
            if self._explicit_stack:
                return self._rename_iter(f, rmap, shift=True)
            return self._rename_shift(f, rmap)
        self._rename_slow += 1
        if self._explicit_stack:
            return self._rename_iter(f, rmap, shift=False)
        return self._rename_ite(f, rmap)

    def _rename_shift(self, f: int, rmap: "_RenameMap") -> int:
        if f <= 1:
            return f
        sign = f & 1
        f ^= sign
        key = (f, rmap)
        cached = self._rename_cache.get(key)
        if cached is not None:
            self._hits["rename"] += 1
            return cached ^ sign
        self._misses["rename"] += 1
        index = f >> 1
        lo = self._rename_shift(self._lo[index], rmap)
        hi = self._rename_shift(self._hi[index], rmap)
        level = self._level[index]
        mapping = rmap.mapping
        result = self._mk(mapping.get(level, level), lo, hi)
        self._rename_cache[key] = result
        return result ^ sign

    def _rename_ite(self, f: int, rmap: "_RenameMap") -> int:
        if f <= 1:
            return f
        sign = f & 1
        f ^= sign
        key = (f, rmap)
        cached = self._rename_cache.get(key)
        if cached is not None:
            self._hits["rename"] += 1
            return cached ^ sign
        self._misses["rename"] += 1
        index = f >> 1
        lo = self._rename_ite(self._lo[index], rmap)
        hi = self._rename_ite(self._hi[index], rmap)
        level = self._level[index]
        target = rmap.mapping.get(level, level)
        result = self.ite(self.var(target), hi, lo)
        self._rename_cache[key] = result
        return result ^ sign

    def _rename_iter(self, root: int, rmap: "_RenameMap", shift: bool) -> int:
        """Explicit-stack rename (both the structural shift and ite rebuild)."""
        cache = self._rename_cache
        mapping = rmap.mapping
        results: List[int] = []
        work: List[Tuple] = [(0, root)]
        while work:
            frame = work.pop()
            if frame[0] == 0:
                f = frame[1]
                if f <= 1:
                    results.append(f)
                    continue
                sign = f & 1
                f ^= sign
                key = (f, rmap)
                cached = cache.get(key)
                if cached is not None:
                    self._hits["rename"] += 1
                    results.append(cached ^ sign)
                    continue
                self._misses["rename"] += 1
                index = f >> 1
                work.append((1, key, sign, self._level[index]))
                work.append((0, self._hi[index]))
                work.append((0, self._lo[index]))
            else:
                key, sign, level = frame[1], frame[2], frame[3]
                hi = results.pop()
                lo = results.pop()
                target = mapping.get(level, level)
                if shift:
                    result = self._mk(target, lo, hi)
                else:
                    result = self.ite(self.var(target), hi, lo)
                cache[key] = result
                results.append(result ^ sign)
        return results[0]

    def restrict(self, f: int, assignment: Dict[int | str, bool]) -> int:
        """Cofactor ``f`` by fixing the given variables to constants.

        Like :meth:`rename`, restriction commutes with complementation and
        the assignment maps are interned, so results live in a cross-call
        cache keyed (regular edge, interned map) — the compiled relation
        plans restrict the same interpretations with the same constant
        arguments on every fixed-point iteration.
        """
        fixed = {
            (self.var_index(var) if isinstance(var, str) else var): bool(value)
            for var, value in assignment.items()
        }
        if not fixed:
            return f
        key = tuple(sorted(fixed.items()))
        fmap = self._restrict_table.get(key)
        if fmap is None:
            fmap = _RenameMap(fixed)
            self._restrict_table[key] = fmap
        return self._restrict(f, fmap)

    def _restrict(self, f: int, fmap: "_RenameMap") -> int:
        if f <= 1:
            return f
        sign = f & 1
        f ^= sign
        key = (f, fmap)
        cached = self._restrict_cache.get(key)
        if cached is not None:
            self._hits["restrict"] += 1
            return cached ^ sign
        self._misses["restrict"] += 1
        index = f >> 1
        level = self._level[index]
        fixed = fmap.mapping
        if level in fixed:
            branch = self._hi[index] if fixed[level] else self._lo[index]
            result = self._restrict(branch, fmap)
        else:
            lo = self._restrict(self._lo[index], fmap)
            hi = self._restrict(self._hi[index], fmap)
            result = self._mk(level, lo, hi)
        self._restrict_cache[key] = result
        return result ^ sign

    def compose(self, f: int, var: int | str, g: int) -> int:
        """Substitute the function ``g`` for the variable ``var`` in ``f``."""
        index = self.var_index(var) if isinstance(var, str) else var
        return self._compose(f, index, g, {})

    def _compose(self, f: int, index: int, g: int, cache: Dict[int, int]) -> int:
        if f <= 1:
            return f
        if self._level[f >> 1] > index:
            return f
        sign = f & 1
        f ^= sign
        cached = cache.get(f)
        if cached is not None:
            return cached ^ sign
        node = f >> 1
        level = self._level[node]
        if level == index:
            result = self.ite(g, self._hi[node], self._lo[node])
        else:
            lo = self._compose(self._lo[node], index, g, cache)
            hi = self._compose(self._hi[node], index, g, cache)
            result = self.ite(self.var(level), hi, lo)
        cache[f] = result
        return result ^ sign

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def support(self, f: int) -> set:
        """Set of variable indices the function ``f`` depends on."""
        seen: set = set()
        result: set = set()
        stack = [f >> 1]
        while stack:
            index = stack.pop()
            if index == 0 or index in seen:
                continue
            seen.add(index)
            result.add(self._level[index])
            stack.append(self._lo[index] >> 1)
            stack.append(self._hi[index] >> 1)
        return result

    def support_names(self, f: int) -> set:
        """Set of variable *names* the function ``f`` depends on."""
        return {self._var_names[index] for index in self.support(f)}

    def node_count(self, f: int) -> int:
        """Number of distinct decision nodes reachable from ``f`` (excl. terminals).

        ``f`` and ``not f`` share every node under complement edges, so their
        counts are identical.
        """
        seen: set = set()
        stack = [f >> 1]
        while stack:
            index = stack.pop()
            if index == 0 or index in seen:
                continue
            seen.add(index)
            stack.append(self._lo[index] >> 1)
            stack.append(self._hi[index] >> 1)
        return len(seen)

    def count_sat(self, f: int, variables: Optional[Iterable[int | str]] = None) -> int:
        """Number of satisfying assignments of ``f`` over ``variables``.

        When ``variables`` is omitted, all declared variables are used.
        """
        if variables is None:
            var_set = frozenset(range(len(self._var_names)))
        else:
            var_set = self._var_set(variables)
            missing = self.support(f) - var_set
            if missing:
                names = sorted(self._var_names[i] for i in missing)
                raise BddError(f"count_sat variables must cover the support; missing {names}")
        order = sorted(var_set)
        position = {index: pos for pos, index in enumerate(order)}
        total_levels = len(order)
        below_cache: Dict[Tuple[int, int], int] = {}

        def count_below(edge: int, from_pos: int) -> int:
            """Assignments over variables at positions >= from_pos satisfying edge."""
            if edge == self.FALSE:
                return 0
            if edge == self.TRUE:
                return 1 << (total_levels - from_pos)
            # The memo is keyed on the *signed* edge: a complemented arrival
            # must hit the cache too, or every visit to a signed edge redoes
            # the complement-space subtraction walk.
            key = (edge, from_pos)
            cached = below_cache.get(key)
            if cached is not None:
                return cached
            if edge & 1:
                # Complemented edge: count the complement space.
                result = (1 << (total_levels - from_pos)) - count_below(edge ^ 1, from_pos)
            else:
                index = edge >> 1
                level = self._level[index]
                pos = position[level]
                gap = pos - from_pos
                sub = count_below(self._lo[index], pos + 1) + count_below(self._hi[index], pos + 1)
                result = sub << gap
            below_cache[key] = result
            return result

        return count_below(f, 0)

    def sat_one(self, f: int) -> Optional[Dict[int, bool]]:
        """One satisfying assignment (over the support only), or None if UNSAT."""
        if f == self.FALSE:
            return None
        assignment: Dict[int, bool] = {}
        edge = f
        while edge > 1:
            index = edge >> 1
            sign = edge & 1
            lo = self._lo[index] ^ sign
            if lo != self.FALSE:
                assignment[self._level[index]] = False
                edge = lo
            else:
                assignment[self._level[index]] = True
                edge = self._hi[index] ^ sign
        return assignment

    def pick_cube(
        self, f: int, variables: Optional[Iterable[int | str]] = None
    ) -> Optional[Dict[int, bool]]:
        """The lowest-index satisfying cube of ``f``, total over ``variables``.

        Deterministic counterpart of :meth:`sat_one`: among all satisfying
        assignments the one that is lexicographically smallest in variable
        order (preferring ``False`` at every level, which the prefer-low walk
        realises on signed edges).  Variables in ``variables`` but outside the
        support are filled with ``False``.  Because the walk only consults the
        canonical ``(level, lo, hi)`` node data, the picked cube is identical
        on the dict store, the array store and a snapshot overlay.

        When ``variables`` is omitted the cube is total over the support.
        Returns ``None`` iff ``f`` is unsatisfiable.
        """
        if f == self.FALSE:
            return None
        if variables is None:
            var_set = self.support(f)
        else:
            var_set = self._var_set(variables)
            missing = self.support(f) - var_set
            if missing:
                names = sorted(self._var_names[i] for i in missing)
                raise BddError(
                    f"pick_cube variables must cover the support; missing {names}"
                )
        assignment = self.sat_one(f)
        assert assignment is not None
        return {index: assignment.get(index, False) for index in sorted(var_set)}

    def sat_all(self, f: int, variables: Iterable[int | str]) -> Iterator[Dict[int, bool]]:
        """Iterate over all satisfying assignments restricted to ``variables``.

        Every yielded dictionary assigns a Boolean to *each* variable in
        ``variables`` (variables not in the support are enumerated both ways).
        The function must not depend on variables outside ``variables``.
        """
        var_list = sorted(self._var_set(variables))
        missing = self.support(f) - set(var_list)
        if missing:
            names = sorted(self._var_names[i] for i in missing)
            raise BddError(f"sat_all variables must cover the support; missing {names}")

        def recurse(edge: int, pos: int, partial: Dict[int, bool]) -> Iterator[Dict[int, bool]]:
            if edge == self.FALSE:
                return
            if pos == len(var_list):
                yield dict(partial)
                return
            index = var_list[pos]
            level = self._level[edge >> 1] if edge > 1 else self._TERMINAL_LEVEL
            if level == index:
                sign = edge & 1
                node = edge >> 1
                children = (
                    (False, self._lo[node] ^ sign),
                    (True, self._hi[node] ^ sign),
                )
                for value, child in children:
                    partial[index] = value
                    yield from recurse(child, pos + 1, partial)
                del partial[index]
            else:
                for value in (False, True):
                    partial[index] = value
                    yield from recurse(edge, pos + 1, partial)
                del partial[index]

        yield from recurse(f, 0, {})

    def cube(self, assignment: Dict[int | str, bool]) -> int:
        """The conjunction of literals described by ``assignment``."""
        result = self.TRUE
        for var, value in assignment.items():
            literal = self.var(var) if value else self.nvar(var)
            result = self.and_(result, literal)
        return result

    def eval(self, f: int, assignment: Dict[int | str, bool]) -> bool:
        """Evaluate ``f`` under a total assignment of its support."""
        fixed = {
            (self.var_index(var) if isinstance(var, str) else var): bool(value)
            for var, value in assignment.items()
        }
        edge = f
        while edge > 1:
            index = edge >> 1
            level = self._level[index]
            if level not in fixed:
                raise BddError(
                    f"assignment does not cover variable {self._var_names[level]!r}"
                )
            sign = edge & 1
            edge = (self._hi[index] if fixed[level] else self._lo[index]) ^ sign
        return edge == self.TRUE

    # ------------------------------------------------------------------
    # External references / garbage collection
    # ------------------------------------------------------------------
    def ref(self, edge: int) -> int:
        """Register an external reference to ``edge``; returns the edge.

        Referenced nodes (and everything below them) survive
        :meth:`collect_garbage`.  The :class:`~repro.bdd.function.Function`
        wrapper refs its node on construction and derefs it on release.
        """
        index = edge >> 1
        if index:
            self._extref[index] = self._extref.get(index, 0) + 1
        return edge

    def deref(self, edge: int) -> None:
        """Drop one external reference to ``edge`` (no-op when not referenced)."""
        index = edge >> 1
        count = self._extref.get(index)
        if count is None:
            return
        if count <= 1:
            del self._extref[index]
        else:
            self._extref[index] = count - 1

    def external_references(self) -> int:
        """Number of distinct externally referenced nodes."""
        return len(self._extref)

    def add_gc_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback run after every sweep that reclaimed nodes.

        Consumers that key their own caches on node edges (the symbolic
        backend's plan memos) use this to invalidate them in the same sweep,
        so no external cache can resurrect a dead node.
        """
        self._gc_hooks.append(hook)

    def remove_gc_hook(self, hook: Callable[[], None]) -> None:
        """Unregister a GC hook (no-op if not registered).

        Consumers with a shorter lifetime than the manager (e.g. a symbolic
        backend sharing a long-lived context) must remove their hook when
        they are done, or the manager keeps them alive and keeps running
        their invalidation on every sweep.
        """
        try:
            self._gc_hooks.remove(hook)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Cooperative resource limits
    # ------------------------------------------------------------------
    def set_node_budget(self, budget: Optional[int]) -> None:
        """Bound the live-node count; ``None`` removes the bound.

        Crossing the budget at an allocation checkpoint or a GC safe point
        raises :class:`repro.errors.NodeBudgetExceeded`.  Setting a budget
        also pulls the GC trigger below it so a sweep gets a chance to
        reclaim garbage before the hard bound is hit.
        """
        self._node_budget = budget
        if budget is not None:
            self._gc_threshold = min(self._gc_threshold, max(1024, budget // 2))

    def set_deadline(self, seconds: float) -> None:
        """Arm a wall-clock deadline ``seconds`` from now for this manager.

        Expiry raises :class:`repro.errors.AnalysisTimeout` at the next
        checkpoint: unconditionally at GC safe points, and every
        ``_deadline_interval`` node allocations inside apply loops (the
        first allocation after arming always checks, so an already-expired
        deadline trips immediately).  Call :meth:`clear_deadline` when the
        governed query finishes.
        """
        self._deadline_started = time.monotonic()
        self._deadline_budget = float(seconds)
        self._deadline = self._deadline_started + float(seconds)
        self._deadline_countdown = 1

    def clear_deadline(self) -> None:
        """Disarm the wall-clock deadline (idempotent)."""
        self._deadline = None
        self._deadline_budget = None
        self._deadline_started = None
        self._deadline_countdown = self._deadline_interval

    def _check_deadline(self) -> None:
        now = time.monotonic()
        if self._deadline is not None and now >= self._deadline:
            started = self._deadline_started if self._deadline_started is not None else now
            raise AnalysisTimeout(consumed=now - started, budget=self._deadline_budget)

    def collect_garbage(self, roots: Iterable[int] = ()) -> int:
        """Mark-and-sweep collection; returns the number of reclaimed nodes.

        Live nodes are those reachable from externally referenced nodes
        (:meth:`ref`) or from ``roots`` (extra edges the caller knows to be
        live, e.g. the evaluator's current interpretations).  Reclaimed slots
        go to a free list and are reused by :meth:`_mk`; all operation caches
        are dropped (their keys and values may mention dead edges) and GC
        hooks run so consumers drop node-keyed caches of their own.
        """
        marked = bytearray(len(self._level))
        marked[0] = 1
        # Snapshot the root set: a Function finaliser running off a cyclic-GC
        # pass triggered by an allocation below may deref (mutate _extref)
        # mid-collection.  Every stored count is > 0 by construction.
        stack: List[int] = list(self._extref)
        for edge in roots:
            stack.append(edge >> 1)
        level = self._level
        lo = self._lo
        hi = self._hi
        while stack:
            index = stack.pop()
            if marked[index]:
                continue
            marked[index] = 1
            stack.append(lo[index] >> 1)
            stack.append(hi[index] >> 1)
        reclaimed = 0
        free_level = self._FREE_LEVEL
        for index in range(1, len(level)):
            if marked[index] or level[index] == free_level:
                continue
            del self._unique[(level[index], lo[index], hi[index])]
            level[index] = free_level
            lo[index] = 0
            hi[index] = 0
            self._free.append(index)
            reclaimed += 1
        self._gc_collections += 1
        if reclaimed:
            self._live -= reclaimed
            self._gc_reclaimed += reclaimed
            # Cache entries may point into reclaimed slots; drop them all so
            # a future lookup can never resurrect a dead node.
            self._drop_op_caches()
            for hook in self._gc_hooks:
                hook()
        if self._debug_checks:
            self._debug_validate()
        return reclaimed

    def maybe_collect(self, roots: Iterable[int] = ()) -> bool:
        """Collect at a safe point if a growth trigger fired; True if collected.

        The node-table trigger compares the live count against
        ``gc_threshold`` and, after a collection, grows geometrically with
        the surviving live set so mostly-live tables do not thrash.  The
        optional ``cache_limit`` trigger drops oversized operation caches
        even when no collection runs.

        Safe points also enforce the cooperative limits: an armed deadline
        is checked unconditionally, and a node budget that remains exceeded
        *after* a sweep (the retained live set alone is over budget) raises
        :class:`repro.errors.NodeBudgetExceeded`.
        """
        if self._deadline is not None:
            self._check_deadline()
        if self._gc_enabled and self._live >= self._gc_threshold:
            self.collect_garbage(roots)
            self._gc_threshold = max(self._gc_floor, int(self._live * self._gc_growth))
            if self._node_budget is not None:
                self._gc_threshold = min(
                    self._gc_threshold, max(1024, self._node_budget // 2)
                )
                if self._live > self._node_budget:
                    raise NodeBudgetExceeded(
                        consumed=self._live, budget=self._node_budget
                    )
            return True
        if self._cache_limit is not None and self._cache_entries() > self._cache_limit:
            self._drop_op_caches()
        if self._debug_checks:
            # No collection ran, but the caller still promised a safe point
            # (every live edge enumerable): the invariants must hold here.
            self._debug_validate()
        return False

    def _cache_entries(self) -> int:
        return (
            len(self._and_cache)
            + len(self._xor_cache)
            + len(self._ite_cache)
            + len(self._exists_cache)
            + len(self._and_exists_cache)
            + len(self._rename_cache)
            + len(self._restrict_cache)
        )

    def _drop_op_caches(self) -> None:
        self._and_cache.clear()
        self._xor_cache.clear()
        self._ite_cache.clear()
        self._exists_cache.clear()
        self._and_exists_cache.clear()
        self._rename_cache.clear()
        self._restrict_cache.clear()

    # ------------------------------------------------------------------
    # Kernel sanitizer (debug_checks)
    # ------------------------------------------------------------------
    def _unique_key(self, index: int):
        """The unique-table key the node at ``index`` must be filed under."""
        return (self._level[index], self._lo[index], self._hi[index])

    def _debug_cache_edges(self) -> Iterator[Tuple[str, int]]:
        """Yield every signed edge mentioned by an operation-cache entry.

        The array store overrides this with its packed-key decoders; the
        sanitizer only needs the edges, not the full keys.
        """
        for (f, g), result in self._and_cache.items():
            yield "and", f
            yield "and", g
            yield "and", result
        for (f, g), result in self._xor_cache.items():
            yield "xor", f
            yield "xor", g
            yield "xor", result
        for (f, g, h), result in self._ite_cache.items():
            yield "ite", f
            yield "ite", g
            yield "ite", h
            yield "ite", result
        for (f, _cube), result in self._exists_cache.items():
            yield "exists", f
            yield "exists", result
        for (f, g, _cube), result in self._and_exists_cache.items():
            yield "and_exists", f
            yield "and_exists", g
            yield "and_exists", result
        for (f, _rmap), result in self._rename_cache.items():
            yield "rename", f
            yield "rename", result
        for (f, _fmap), result in self._restrict_cache.items():
            yield "restrict", f
            yield "restrict", result

    def _debug_validate(self) -> None:
        """Cross-check every node-store invariant; raise :class:`BddError`.

        Run at GC safe points when the manager was constructed with
        ``debug_checks=True`` (or ``REPRO_DEBUG_CHECKS=1``).  Checks, in
        order: node-vector shape, free-list purity (free-marked slots and
        the free list are the same set, free slots carry no children),
        the live counter against the non-free slot count, unique-table
        completeness and key/slot agreement, per-node structural invariants
        (regular then-edge, reduction, level order, live children),
        external-reference validity, and operation-cache edge liveness.
        """
        level = self._level
        lo = self._lo
        hi = self._hi
        capacity = len(level)
        if not (len(lo) == capacity and len(hi) == capacity):
            raise BddError(
                "sanitizer: node vectors disagree on capacity "
                f"(level={capacity}, lo={len(lo)}, hi={len(hi)})"
            )
        if level[0] != self._TERMINAL_LEVEL or lo[0] or hi[0]:
            raise BddError("sanitizer: terminal slot 0 was overwritten")
        free_level = self._FREE_LEVEL
        free_slots = set()
        for index in range(1, capacity):
            if level[index] == free_level:
                if lo[index] or hi[index]:
                    raise BddError(
                        f"sanitizer: free slot {index} has dangling children"
                    )
                free_slots.add(index)
        if len(self._free) != len(set(self._free)):
            raise BddError("sanitizer: duplicate slots on the free list")
        if set(self._free) != free_slots:
            raise BddError(
                "sanitizer: free list does not match the free-marked slots "
                f"(listed={len(self._free)}, marked={len(free_slots)})"
            )
        live = capacity - len(free_slots)
        if live != self._live:
            raise BddError(
                f"sanitizer: live counter {self._live} != {live} non-free slots"
            )
        if len(self._unique) != live - 1:
            raise BddError(
                f"sanitizer: unique table holds {len(self._unique)} entries "
                f"for {live - 1} live decision nodes"
            )
        for key, index in self._unique.items():
            if not 0 < index < capacity or level[index] == free_level:
                raise BddError(
                    f"sanitizer: unique table maps {key!r} to dead slot {index}"
                )
            if key != self._unique_key(index):
                raise BddError(
                    f"sanitizer: unique key {key!r} does not match node {index}"
                )
        num_levels = len(self._var_names)
        for index in range(1, capacity):
            node_level = level[index]
            if node_level == free_level:
                continue
            if not 0 <= node_level < num_levels:
                raise BddError(
                    f"sanitizer: node {index} has out-of-range level {node_level}"
                )
            if hi[index] & 1:
                raise BddError(
                    f"sanitizer: node {index} stores a complemented then-edge"
                )
            if lo[index] == hi[index]:
                raise BddError(f"sanitizer: node {index} is unreduced (lo == hi)")
            for child in (lo[index], hi[index]):
                child_index = child >> 1
                if not 0 <= child_index < capacity or level[child_index] == free_level:
                    raise BddError(
                        f"sanitizer: node {index} points at dead child edge {child}"
                    )
                if child_index and level[child_index] <= node_level:
                    raise BddError(
                        f"sanitizer: node {index} (level {node_level}) violates "
                        f"the level order via child {child_index}"
                    )
        for index, count in self._extref.items():
            if count <= 0:
                raise BddError(
                    f"sanitizer: non-positive external refcount {count} on "
                    f"node {index}"
                )
            if not 0 < index < capacity or level[index] == free_level:
                raise BddError(
                    f"sanitizer: external reference to dead slot {index}"
                )
        for op, edge in self._debug_cache_edges():
            index = edge >> 1
            if not 0 <= index < capacity or level[index] == free_level:
                raise BddError(
                    f"sanitizer: {op} cache mentions dead edge {edge}"
                )

    # ------------------------------------------------------------------
    # Maintenance / statistics
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Reset the run's caches, statistics and GC bookkeeping.

        Drops all operation caches (the node table and external references
        are kept), zeroes the hit/miss and GC counters, restores the GC
        trigger to its configured floor and re-bases the peak-node watermark
        at the current live count — so statistics snapshots taken after a
        clear describe only the work since the clear.
        """
        self._drop_op_caches()
        self.reset_stats()
        self._gc_threshold = self._gc_floor
        self._gc_collections = 0
        self._gc_reclaimed = 0
        self._peak_live = self._live

    def reset_stats(self) -> None:
        """Zero every hit/miss counter (cache contents are untouched)."""
        for op in self._hits:
            self._hits[op] = 0
            self._misses[op] = 0
        self._rename_fast = 0
        self._rename_slow = 0

    def stats(self) -> Dict[str, object]:
        """Operation counters, cache hit rates, table sizes and GC counters.

        ``nodes`` is the current *live* node count, ``peak_nodes`` the
        watermark since construction or the last :meth:`clear_caches`, and
        ``capacity`` the allocated slot count (live + free-listed).
        """
        ops: Dict[str, Dict[str, float]] = {}
        for op in self._hits:
            hits = self._hits[op]
            misses = self._misses[op]
            total = hits + misses
            ops[op] = {
                "hits": hits,
                "misses": misses,
                "hit_rate": (hits / total) if total else 0.0,
            }
        cache_sizes = {
            "and": len(self._and_cache),
            "xor": len(self._xor_cache),
            "ite": len(self._ite_cache),
            "exists": len(self._exists_cache),
            "and_exists": len(self._and_exists_cache),
            "rename": len(self._rename_cache),
            "restrict": len(self._restrict_cache),
        }
        return {
            "store": self.STORE,
            "nodes": self._live,
            "peak_nodes": self._peak_live,
            "capacity": len(self._level),
            "vars": len(self._var_names),
            "quant_cubes": len(self._cube_table),
            "rename_maps": len(self._rename_table),
            "rename_fast_path": self._rename_fast,
            "rename_fallback": self._rename_slow,
            "ops": ops,
            "cache_sizes": cache_sizes,
            "gc": {
                "enabled": self._gc_enabled,
                "threshold": self._gc_threshold,
                "collections": self._gc_collections,
                "reclaimed": self._gc_reclaimed,
                "external_roots": len(self._extref),
                "free_slots": len(self._free),
            },
            "limits": {
                "node_budget": self._node_budget,
                "deadline_armed": self._deadline is not None,
            },
            "debug_checks": self._debug_checks,
        }

    def to_expr(self, f: int) -> str:
        """A (dense) textual if-then-else rendering, for debugging small BDDs."""
        if f == self.FALSE:
            return "FALSE"
        if f == self.TRUE:
            return "TRUE"
        if f & 1:
            return f"not({self.to_expr(f ^ 1)})"
        index = f >> 1
        name = self._var_names[self._level[index]]
        return f"ite({name}, {self.to_expr(self._hi[index])}, {self.to_expr(self._lo[index])})"


class _RenameMap:
    """An interned variable mapping (identity-hashed cache key).

    Used both for rename maps (level -> level) and restrict assignments
    (level -> bool); interning makes the map a cheap cross-call cache-key
    component.
    """

    __slots__ = ("mapping", "uid")

    def __init__(self, mapping: Dict[int, int]) -> None:
        self.mapping = mapping
        # Assigned at intern time by the array store (packed cache keys).
        self.uid: Optional[int] = None

    def __repr__(self) -> str:
        return f"_RenameMap({self.mapping})"
