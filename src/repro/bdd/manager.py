"""Reduced Ordered Binary Decision Diagram (ROBDD) manager.

This module is the symbolic-representation substrate of the reproduction: it
plays the role that CUDD plays inside MUCKE in the original Getafix tool.  It
is a from-scratch, pure-Python ROBDD implementation with the operations the
fixed-point evaluator needs:

* dedicated binary ``and_`` / ``or_`` / ``xor`` apply recursions (each with
  its own memo cache and canonicalised operand order) plus a general
  ``ite``,
* existential and universal quantification over *quantifier cubes* —
  interned, pre-sorted variable sets with a precomputed deepest level,
* the relational product ``and_exists`` (conjunction + quantification in one
  recursive pass, the workhorse of symbolic image computation),
* variable renaming with a structural fast path for order-preserving
  mappings (the common prime/unprime shift) and an ``ite``-based rebuild for
  order-violating mappings,
* restriction (cofactoring), support computation, satisfying-assignment
  counting and enumeration.

Nodes are identified by integer indices into parallel arrays; the terminals
are the indices :data:`BddManager.FALSE` (0) and :data:`BddManager.TRUE` (1).
The manager does not garbage-collect nodes: for the workloads in this
repository (model checking scaled-down Boolean programs) the node table stays
small, and keeping all nodes alive lets every memoisation cache remain valid
for the lifetime of the manager.

Programs whose encodings have very many bit levels can exceed Python's
recursion limit in the recursive apply routines; constructing the manager
with ``explicit_stack=True`` switches the binary connectives to an
iterative, explicit-stack evaluation that is depth-independent.

Every operation family maintains hit/miss counters; :meth:`BddManager.stats`
exposes them (together with cache and node-table sizes) so callers can report
cache hit rates and peak table growth per run.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = ["BddManager", "BddError", "QuantCube"]


class BddError(Exception):
    """Raised for invalid uses of the BDD manager (unknown variables, ...)."""


class QuantCube:
    """An interned quantification variable set.

    ``levels`` is the sorted tuple of variable indices, ``members`` a set for
    O(1) membership tests, and ``last`` the deepest (largest) quantified
    level — the point below which quantification is the identity.  Cubes are
    interned per manager (see :meth:`BddManager.quant_cube`), so identity
    comparison and the default object hash make them cheap cache-key
    components.  The constructor normalises (sorts, dedups) its input and
    rejects empty sets, so a hand-built cube behaves like an interned one.
    """

    __slots__ = ("levels", "members", "last")

    def __init__(self, levels: Iterable[int]) -> None:
        ordered = tuple(sorted(set(levels)))
        if not ordered:
            raise BddError("a quantifier cube needs at least one variable")
        self.levels = ordered
        self.members = set(ordered)
        self.last = ordered[-1]

    def __repr__(self) -> str:
        return f"QuantCube{self.levels}"


#: Things accepted wherever a set of quantification variables is expected.
QuantVars = Union[QuantCube, Iterable[Union[int, str]]]


class BddManager:
    """A manager owning a shared multi-rooted ROBDD forest.

    Parameters
    ----------
    var_names:
        Optional initial variable names, in order.  The position of a name in
        this sequence is its *level*: variables earlier in the sequence are
        tested closer to the root.  More variables can be added later with
        :meth:`add_var`, which appends them below all existing levels.
    explicit_stack:
        When True, the binary connectives (``and_``, ``or_``, ``xor``) run on
        an explicit work stack instead of Python recursion, so arbitrarily
        deep BDDs cannot trip the interpreter's recursion limit.
    """

    FALSE = 0
    TRUE = 1

    #: Sentinel level used for the two terminal nodes; always greater than the
    #: level of any variable node.
    _TERMINAL_LEVEL = 1 << 60

    def __init__(
        self,
        var_names: Optional[Sequence[str]] = None,
        explicit_stack: bool = False,
    ) -> None:
        # Parallel node arrays.  Index 0 is FALSE, index 1 is TRUE.
        self._level: List[int] = [self._TERMINAL_LEVEL, self._TERMINAL_LEVEL]
        self._lo: List[int] = [0, 1]
        self._hi: List[int] = [0, 1]
        # Unique table: (level, lo, hi) -> node index.
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Operation caches, one per operation family so one workload cannot
        # evict another's entries and keys stay small.
        self._and_cache: Dict[Tuple[int, int], int] = {}
        self._or_cache: Dict[Tuple[int, int], int] = {}
        self._xor_cache: Dict[Tuple[int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        self._exists_cache: Dict[Tuple[int, QuantCube], int] = {}
        self._forall_cache: Dict[Tuple[int, QuantCube], int] = {}
        self._and_exists_cache: Dict[Tuple[int, int, QuantCube], int] = {}
        self._rename_cache: Dict[Tuple[int, "_RenameMap"], int] = {}
        # Interning tables for quantifier cubes and rename maps.
        self._cube_table: Dict[Tuple[int, ...], QuantCube] = {}
        self._rename_table: Dict[Tuple[Tuple[int, int], ...], "_RenameMap"] = {}
        self._explicit_stack = bool(explicit_stack)
        # Hit/miss counters, keyed like the caches.
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}
        for op in ("and", "or", "xor", "ite", "exists", "forall", "and_exists", "rename"):
            self._hits[op] = 0
            self._misses[op] = 0
        self._rename_fast = 0
        self._rename_slow = 0
        # Variable bookkeeping.
        self._var_names: List[str] = []
        self._name_to_var: Dict[str, int] = {}
        if var_names is not None:
            for name in var_names:
                self.add_var(name)

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> int:
        """Declare a new variable below all existing levels; return its index."""
        if name in self._name_to_var:
            raise BddError(f"variable {name!r} already declared")
        index = len(self._var_names)
        self._var_names.append(name)
        self._name_to_var[name] = index
        return index

    def var_index(self, name: str) -> int:
        """Return the level/index of a declared variable name."""
        try:
            return self._name_to_var[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None

    def var_name(self, index: int) -> str:
        """Return the name of the variable at ``index``."""
        return self._var_names[index]

    @property
    def var_names(self) -> Tuple[str, ...]:
        """All declared variable names, in level order."""
        return tuple(self._var_names)

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var_names)

    def var(self, var: int | str) -> int:
        """Return the BDD node for a single variable (``x``)."""
        index = self.var_index(var) if isinstance(var, str) else var
        if not 0 <= index < len(self._var_names):
            raise BddError(f"variable index {index} out of range")
        return self._mk(index, self.FALSE, self.TRUE)

    def nvar(self, var: int | str) -> int:
        """Return the BDD node for a negated variable (``not x``)."""
        index = self.var_index(var) if isinstance(var, str) else var
        return self._mk(index, self.TRUE, self.FALSE)

    # ------------------------------------------------------------------
    # Node creation
    # ------------------------------------------------------------------
    def _mk(self, level: int, lo: int, hi: int) -> int:
        """Find-or-create the node ``(level, lo, hi)`` (with reduction)."""
        if lo == hi:
            return lo
        key = (level, lo, hi)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._lo.append(lo)
            self._hi.append(hi)
            self._unique[key] = node
        return node

    # ------------------------------------------------------------------
    # Structural accessors
    # ------------------------------------------------------------------
    def level_of(self, node: int) -> int:
        """Return the level of a node (terminals have a large sentinel level)."""
        return self._level[node]

    def low(self, node: int) -> int:
        """Return the low (else) child of a node."""
        return self._lo[node]

    def high(self, node: int) -> int:
        """Return the high (then) child of a node."""
        return self._hi[node]

    def is_terminal(self, node: int) -> bool:
        """True iff the node is one of the two terminals."""
        return node <= 1

    def __len__(self) -> int:
        """Total number of nodes allocated by this manager (incl. terminals)."""
        return len(self._level)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f and g) or (not f and h)``."""
        # Terminal cases.
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            self._hits["ite"] += 1
            return cached
        self._misses["ite"] += 1
        level = min(self._level[f], self._level[g], self._level[h])
        f_lo, f_hi = self._cofactors(f, level)
        g_lo, g_hi = self._cofactors(g, level)
        h_lo, h_hi = self._cofactors(h, level)
        lo = self.ite(f_lo, g_lo, h_lo)
        hi = self.ite(f_hi, g_hi, h_hi)
        result = self._mk(level, lo, hi)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        if self._level[node] == level:
            return self._lo[node], self._hi[node]
        return node, node

    def not_(self, f: int) -> int:
        """Boolean negation."""
        if f == self.TRUE:
            return self.FALSE
        if f == self.FALSE:
            return self.TRUE
        if self._explicit_stack:
            return self._not_iter(f)
        return self._not(f)

    def _not(self, f: int) -> int:
        if f <= 1:
            return 1 - f
        cached = self._not_cache.get(f)
        if cached is not None:
            return cached
        result = self._mk(self._level[f], self._not(self._lo[f]), self._not(self._hi[f]))
        self._not_cache[f] = result
        self._not_cache[result] = f
        return result

    def _not_iter(self, root: int) -> int:
        """Explicit-stack negation (same frame scheme as :meth:`_binary_iter`)."""
        cache = self._not_cache
        results: List[int] = []
        work: List[Tuple[int, int]] = [(0, root)]
        while work:
            tag, f = work.pop()
            if tag == 0:
                if f <= 1:
                    results.append(1 - f)
                    continue
                cached = cache.get(f)
                if cached is not None:
                    results.append(cached)
                    continue
                work.append((1, f))
                work.append((0, self._hi[f]))
                work.append((0, self._lo[f]))
            else:
                hi = results.pop()
                lo = results.pop()
                result = self._mk(self._level[f], lo, hi)
                cache[f] = result
                cache[result] = f
                results.append(result)
        return results[0]

    def and_(self, f: int, g: int) -> int:
        """Boolean conjunction (dedicated apply recursion, own cache)."""
        if self._explicit_stack:
            return self._binary_iter(f, g, "and")
        return self._and(f, g)

    def _and(self, f: int, g: int) -> int:
        if f == g or g == 1:
            return f
        if f == 1:
            return g
        if f == 0 or g == 0:
            return 0
        # Canonicalise the operand order: conjunction is commutative.
        if f > g:
            f, g = g, f
        key = (f, g)
        cached = self._and_cache.get(key)
        if cached is not None:
            self._hits["and"] += 1
            return cached
        self._misses["and"] += 1
        level_f = self._level[f]
        level_g = self._level[g]
        if level_f == level_g:
            level = level_f
            lo = self._and(self._lo[f], self._lo[g])
            hi = self._and(self._hi[f], self._hi[g])
        elif level_f < level_g:
            level = level_f
            lo = self._and(self._lo[f], g)
            hi = self._and(self._hi[f], g)
        else:
            level = level_g
            lo = self._and(f, self._lo[g])
            hi = self._and(f, self._hi[g])
        result = lo if lo == hi else self._mk(level, lo, hi)
        self._and_cache[key] = result
        return result

    def or_(self, f: int, g: int) -> int:
        """Boolean disjunction (dedicated apply recursion, own cache)."""
        if self._explicit_stack:
            return self._binary_iter(f, g, "or")
        return self._or(f, g)

    def _or(self, f: int, g: int) -> int:
        if f == g or g == 0:
            return f
        if f == 0:
            return g
        if f == 1 or g == 1:
            return 1
        if f > g:
            f, g = g, f
        key = (f, g)
        cached = self._or_cache.get(key)
        if cached is not None:
            self._hits["or"] += 1
            return cached
        self._misses["or"] += 1
        level_f = self._level[f]
        level_g = self._level[g]
        if level_f == level_g:
            level = level_f
            lo = self._or(self._lo[f], self._lo[g])
            hi = self._or(self._hi[f], self._hi[g])
        elif level_f < level_g:
            level = level_f
            lo = self._or(self._lo[f], g)
            hi = self._or(self._hi[f], g)
        else:
            level = level_g
            lo = self._or(f, self._lo[g])
            hi = self._or(f, self._hi[g])
        result = lo if lo == hi else self._mk(level, lo, hi)
        self._or_cache[key] = result
        return result

    def xor(self, f: int, g: int) -> int:
        """Boolean exclusive or (dedicated apply recursion, own cache)."""
        if self._explicit_stack:
            return self._binary_iter(f, g, "xor")
        return self._xor(f, g)

    def _xor(self, f: int, g: int) -> int:
        if f == g:
            return 0
        if g == 0:
            return f
        if f == 0:
            return g
        if f == 1:
            return self.not_(g)
        if g == 1:
            return self.not_(f)
        if f > g:
            f, g = g, f
        key = (f, g)
        cached = self._xor_cache.get(key)
        if cached is not None:
            self._hits["xor"] += 1
            return cached
        self._misses["xor"] += 1
        level_f = self._level[f]
        level_g = self._level[g]
        if level_f == level_g:
            level = level_f
            lo = self._xor(self._lo[f], self._lo[g])
            hi = self._xor(self._hi[f], self._hi[g])
        elif level_f < level_g:
            level = level_f
            lo = self._xor(self._lo[f], g)
            hi = self._xor(self._hi[f], g)
        else:
            level = level_g
            lo = self._xor(f, self._lo[g])
            hi = self._xor(f, self._hi[g])
        result = lo if lo == hi else self._mk(level, lo, hi)
        self._xor_cache[key] = result
        return result

    def _binary_terminal(self, f: int, g: int, op: str) -> Optional[int]:
        """Terminal-case rules of the binary connectives (None if not terminal)."""
        if op == "and":
            if f == g or g == 1:
                return f
            if f == 1:
                return g
            if f == 0 or g == 0:
                return 0
        elif op == "or":
            if f == g or g == 0:
                return f
            if f == 0:
                return g
            if f == 1 or g == 1:
                return 1
        else:  # xor
            if f == g:
                return 0
            if g == 0:
                return f
            if f == 0:
                return g
            if f == 1:
                return self.not_(g)
            if g == 1:
                return self.not_(f)
        return None

    def _binary_iter(self, root_f: int, root_g: int, op: str) -> int:
        """Explicit-stack evaluation of a binary connective.

        Frames are ``(0, f, g)`` for "evaluate this pair" and ``(1, key,
        level)`` for "combine the two results on top of the result stack"
        (``key`` being the cache key of the pair).  The lo sub-problem is
        pushed last so it is evaluated first; a combine frame therefore pops
        the hi result first.
        """
        cache = {"and": self._and_cache, "or": self._or_cache, "xor": self._xor_cache}[op]
        results: List[int] = []
        work: List[Tuple] = [(0, root_f, root_g)]
        while work:
            frame = work.pop()
            if frame[0] == 0:
                f, g = frame[1], frame[2]
                terminal = self._binary_terminal(f, g, op)
                if terminal is not None:
                    results.append(terminal)
                    continue
                if f > g:
                    f, g = g, f
                key = (f, g)
                cached = cache.get(key)
                if cached is not None:
                    self._hits[op] += 1
                    results.append(cached)
                    continue
                self._misses[op] += 1
                level_f = self._level[f]
                level_g = self._level[g]
                level = level_f if level_f < level_g else level_g
                f_lo, f_hi = self._cofactors(f, level)
                g_lo, g_hi = self._cofactors(g, level)
                work.append((1, key, level))
                work.append((0, f_hi, g_hi))
                work.append((0, f_lo, g_lo))
            else:
                key, level = frame[1], frame[2]
                hi = results.pop()
                lo = results.pop()
                result = lo if lo == hi else self._mk(level, lo, hi)
                cache[key] = result
                results.append(result)
        return results[0]

    # ------------------------------------------------------------------
    # Derived connectives
    # ------------------------------------------------------------------
    def iff(self, f: int, g: int) -> int:
        """Boolean biconditional."""
        return self.not_(self.xor(f, g))

    def implies(self, f: int, g: int) -> int:
        """Boolean implication ``f -> g``."""
        return self.or_(self.not_(f), g)

    def conjoin(self, nodes: Iterable[int]) -> int:
        """Conjunction of an iterable of nodes (TRUE for the empty iterable)."""
        result = self.TRUE
        for node in nodes:
            result = self.and_(result, node)
            if result == self.FALSE:
                return result
        return result

    def disjoin(self, nodes: Iterable[int]) -> int:
        """Disjunction of an iterable of nodes (FALSE for the empty iterable)."""
        result = self.FALSE
        for node in nodes:
            result = self.or_(result, node)
            if result == self.TRUE:
                return result
        return result

    # ------------------------------------------------------------------
    # Quantification
    # ------------------------------------------------------------------
    def quant_cube(self, variables: QuantVars) -> Optional[QuantCube]:
        """Intern a set of quantification variables as a :class:`QuantCube`.

        Returns None for the empty set.  Callers that quantify over the same
        variable set repeatedly (the symbolic backend's compiled plans, for
        example) can intern the cube once and pass it to :meth:`exists` /
        :meth:`forall` / :meth:`and_exists` directly.
        """
        if isinstance(variables, QuantCube):
            return variables
        levels = tuple(sorted(self._var_set(variables)))
        if not levels:
            return None
        cube = self._cube_table.get(levels)
        if cube is None:
            cube = QuantCube(levels)
            self._cube_table[levels] = cube
        return cube

    def exists(self, f: int, variables: QuantVars) -> int:
        """Existentially quantify ``variables`` out of ``f``."""
        cube = self.quant_cube(variables)
        if cube is None:
            return f
        return self._exists(f, cube)

    def _exists(self, f: int, cube: QuantCube) -> int:
        if f <= 1:
            return f
        level = self._level[f]
        if level > cube.last:
            return f
        key = (f, cube)
        cached = self._exists_cache.get(key)
        if cached is not None:
            self._hits["exists"] += 1
            return cached
        self._misses["exists"] += 1
        if level in cube.members:
            lo = self._exists(self._lo[f], cube)
            if lo == self.TRUE:
                result = self.TRUE
            else:
                result = self.or_(lo, self._exists(self._hi[f], cube))
        else:
            lo = self._exists(self._lo[f], cube)
            hi = self._exists(self._hi[f], cube)
            result = self._mk(level, lo, hi)
        self._exists_cache[key] = result
        return result

    def forall(self, f: int, variables: QuantVars) -> int:
        """Universally quantify ``variables`` out of ``f``."""
        cube = self.quant_cube(variables)
        if cube is None:
            return f
        return self._forall(f, cube)

    def _forall(self, f: int, cube: QuantCube) -> int:
        if f <= 1:
            return f
        level = self._level[f]
        if level > cube.last:
            return f
        key = (f, cube)
        cached = self._forall_cache.get(key)
        if cached is not None:
            self._hits["forall"] += 1
            return cached
        self._misses["forall"] += 1
        if level in cube.members:
            lo = self._forall(self._lo[f], cube)
            if lo == self.FALSE:
                result = self.FALSE
            else:
                result = self.and_(lo, self._forall(self._hi[f], cube))
        else:
            lo = self._forall(self._lo[f], cube)
            hi = self._forall(self._hi[f], cube)
            result = self._mk(level, lo, hi)
        self._forall_cache[key] = result
        return result

    def and_exists(self, f: int, g: int, variables: QuantVars) -> int:
        """Relational product: ``exists variables. (f and g)`` in one pass."""
        cube = self.quant_cube(variables)
        if cube is None:
            return self.and_(f, g)
        return self._and_exists(f, g, cube)

    def _and_exists(self, f: int, g: int, cube: QuantCube) -> int:
        if f == 0 or g == 0:
            return 0
        if f == 1 and g == 1:
            return 1
        if f == 1:
            return self._exists(g, cube)
        if g == 1:
            return self._exists(f, cube)
        if f == g:
            return self._exists(f, cube)
        # Canonicalise the argument order for better cache hit rates.
        if f > g:
            f, g = g, f
        level = min(self._level[f], self._level[g])
        if level > cube.last:
            # No quantified variable can appear below this point.
            return self.and_(f, g)
        key = (f, g, cube)
        cached = self._and_exists_cache.get(key)
        if cached is not None:
            self._hits["and_exists"] += 1
            return cached
        self._misses["and_exists"] += 1
        f_lo, f_hi = self._cofactors(f, level)
        g_lo, g_hi = self._cofactors(g, level)
        if level in cube.members:
            lo = self._and_exists(f_lo, g_lo, cube)
            if lo == self.TRUE:
                result = self.TRUE
            else:
                hi = self._and_exists(f_hi, g_hi, cube)
                result = self.or_(lo, hi)
        else:
            lo = self._and_exists(f_lo, g_lo, cube)
            hi = self._and_exists(f_hi, g_hi, cube)
            result = self._mk(level, lo, hi)
        self._and_exists_cache[key] = result
        return result

    def _var_set(self, variables: Iterable[int | str]) -> frozenset:
        indices = set()
        for var in variables:
            indices.add(self.var_index(var) if isinstance(var, str) else var)
        for index in indices:
            if not 0 <= index < len(self._var_names):
                raise BddError(f"variable index {index} out of range")
        return frozenset(indices)

    # ------------------------------------------------------------------
    # Substitution / renaming / restriction
    # ------------------------------------------------------------------
    def rename(self, f: int, mapping: Dict[int | str, int | str]) -> int:
        """Rename variables of ``f`` according to ``mapping`` (var -> var).

        The substitution is simultaneous and order-insensitive: when the
        mapping preserves the relative level order of the function's support
        (the common prime/unprime shift produced by the template encoders),
        the BDD is rebuilt structurally node-by-node; otherwise each renamed
        node is re-inserted with ``ite`` on the target variable.  The mapping
        must be injective on the variables it moves and no target variable
        may also appear in the support of ``f`` unless it is itself renamed
        away.

        Results are cached per (node, interned mapping), so repeated renames
        of the same function — every fixed-point iteration applies the same
        relation arguments — are constant-time after the first.
        """
        normalised: Dict[int, int] = {}
        for src, dst in mapping.items():
            src_index = self.var_index(src) if isinstance(src, str) else src
            dst_index = self.var_index(dst) if isinstance(dst, str) else dst
            if src_index != dst_index:
                normalised[src_index] = dst_index
        if not normalised:
            return f
        targets = list(normalised.values())
        if len(set(targets)) != len(targets):
            raise BddError("rename mapping must be injective")
        support = self.support(f)
        clashes = (set(targets) & support) - set(normalised)
        if clashes:
            names = sorted(self._var_names[i] for i in clashes)
            raise BddError(f"rename targets already in support: {names}")
        rmap = self._intern_rename(normalised)
        ordered = sorted(support)
        mapped = [normalised.get(levels, levels) for levels in ordered]
        if all(mapped[i] < mapped[i + 1] for i in range(len(mapped) - 1)):
            # Order-preserving on the support: every rebuilt child keeps its
            # mapped levels strictly below its parent's mapped level, so the
            # ROBDD invariants survive a direct structural rebuild.
            self._rename_fast += 1
            return self._rename_shift(f, rmap)
        self._rename_slow += 1
        return self._rename_ite(f, rmap)

    def _intern_rename(self, normalised: Dict[int, int]) -> "_RenameMap":
        key = tuple(sorted(normalised.items()))
        rmap = self._rename_table.get(key)
        if rmap is None:
            rmap = _RenameMap(dict(normalised))
            self._rename_table[key] = rmap
        return rmap

    def _rename_shift(self, f: int, rmap: "_RenameMap") -> int:
        if f <= 1:
            return f
        key = (f, rmap)
        cached = self._rename_cache.get(key)
        if cached is not None:
            self._hits["rename"] += 1
            return cached
        self._misses["rename"] += 1
        mapping = rmap.mapping
        lo = self._rename_shift(self._lo[f], rmap)
        hi = self._rename_shift(self._hi[f], rmap)
        level = self._level[f]
        result = self._mk(mapping.get(level, level), lo, hi)
        self._rename_cache[key] = result
        return result

    def _rename_ite(self, f: int, rmap: "_RenameMap") -> int:
        if f <= 1:
            return f
        key = (f, rmap)
        cached = self._rename_cache.get(key)
        if cached is not None:
            self._hits["rename"] += 1
            return cached
        self._misses["rename"] += 1
        mapping = rmap.mapping
        level = self._level[f]
        lo = self._rename_ite(self._lo[f], rmap)
        hi = self._rename_ite(self._hi[f], rmap)
        target = mapping.get(level, level)
        result = self.ite(self.var(target), hi, lo)
        self._rename_cache[key] = result
        return result

    def restrict(self, f: int, assignment: Dict[int | str, bool]) -> int:
        """Cofactor ``f`` by fixing the given variables to constants."""
        fixed = {
            (self.var_index(var) if isinstance(var, str) else var): bool(value)
            for var, value in assignment.items()
        }
        if not fixed:
            return f
        return self._restrict(f, fixed, {})

    def _restrict(self, f: int, fixed: Dict[int, bool], cache: Dict[int, int]) -> int:
        if f <= 1:
            return f
        cached = cache.get(f)
        if cached is not None:
            return cached
        level = self._level[f]
        if level in fixed:
            branch = self._hi[f] if fixed[level] else self._lo[f]
            result = self._restrict(branch, fixed, cache)
        else:
            lo = self._restrict(self._lo[f], fixed, cache)
            hi = self._restrict(self._hi[f], fixed, cache)
            result = self._mk(level, lo, hi)
        cache[f] = result
        return result

    def compose(self, f: int, var: int | str, g: int) -> int:
        """Substitute the function ``g`` for the variable ``var`` in ``f``."""
        index = self.var_index(var) if isinstance(var, str) else var
        return self._compose(f, index, g, {})

    def _compose(self, f: int, index: int, g: int, cache: Dict[int, int]) -> int:
        if f <= 1:
            return f
        if self._level[f] > index:
            return f
        cached = cache.get(f)
        if cached is not None:
            return cached
        level = self._level[f]
        if level == index:
            result = self.ite(g, self._hi[f], self._lo[f])
        else:
            lo = self._compose(self._lo[f], index, g, cache)
            hi = self._compose(self._hi[f], index, g, cache)
            result = self.ite(self.var(level), hi, lo)
        cache[f] = result
        return result

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def support(self, f: int) -> set:
        """Set of variable indices the function ``f`` depends on."""
        seen: set = set()
        result: set = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            result.add(self._level[node])
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return result

    def support_names(self, f: int) -> set:
        """Set of variable *names* the function ``f`` depends on."""
        return {self._var_names[index] for index in self.support(f)}

    def node_count(self, f: int) -> int:
        """Number of distinct decision nodes reachable from ``f`` (excl. terminals)."""
        seen: set = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return len(seen)

    def count_sat(self, f: int, variables: Optional[Iterable[int | str]] = None) -> int:
        """Number of satisfying assignments of ``f`` over ``variables``.

        When ``variables`` is omitted, all declared variables are used.
        """
        if variables is None:
            var_set = frozenset(range(len(self._var_names)))
        else:
            var_set = self._var_set(variables)
            missing = self.support(f) - var_set
            if missing:
                names = sorted(self._var_names[i] for i in missing)
                raise BddError(f"count_sat variables must cover the support; missing {names}")
        order = sorted(var_set)
        position = {index: pos for pos, index in enumerate(order)}
        total_levels = len(order)
        below_cache: Dict[Tuple[int, int], int] = {}

        def count_below(node: int, from_pos: int) -> int:
            """Assignments over variables at positions >= from_pos satisfying node."""
            if node == self.FALSE:
                return 0
            if node == self.TRUE:
                return 1 << (total_levels - from_pos)
            key = (node, from_pos)
            cached = below_cache.get(key)
            if cached is not None:
                return cached
            level = self._level[node]
            pos = position[level]
            gap = pos - from_pos
            sub = count_below(self._lo[node], pos + 1) + count_below(self._hi[node], pos + 1)
            result = sub << gap
            below_cache[key] = result
            return result

        return count_below(f, 0)

    def sat_one(self, f: int) -> Optional[Dict[int, bool]]:
        """One satisfying assignment (over the support only), or None if UNSAT."""
        if f == self.FALSE:
            return None
        assignment: Dict[int, bool] = {}
        node = f
        while node > 1:
            if self._lo[node] != self.FALSE:
                assignment[self._level[node]] = False
                node = self._lo[node]
            else:
                assignment[self._level[node]] = True
                node = self._hi[node]
        return assignment

    def sat_all(self, f: int, variables: Iterable[int | str]) -> Iterator[Dict[int, bool]]:
        """Iterate over all satisfying assignments restricted to ``variables``.

        Every yielded dictionary assigns a Boolean to *each* variable in
        ``variables`` (variables not in the support are enumerated both ways).
        The function must not depend on variables outside ``variables``.
        """
        var_list = sorted(self._var_set(variables))
        missing = self.support(f) - set(var_list)
        if missing:
            names = sorted(self._var_names[i] for i in missing)
            raise BddError(f"sat_all variables must cover the support; missing {names}")

        def recurse(node: int, pos: int, partial: Dict[int, bool]) -> Iterator[Dict[int, bool]]:
            if node == self.FALSE:
                return
            if pos == len(var_list):
                yield dict(partial)
                return
            index = var_list[pos]
            level = self._level[node] if node > 1 else self._TERMINAL_LEVEL
            if level == index:
                for value, child in ((False, self._lo[node]), (True, self._hi[node])):
                    partial[index] = value
                    yield from recurse(child, pos + 1, partial)
                del partial[index]
            else:
                for value in (False, True):
                    partial[index] = value
                    yield from recurse(node, pos + 1, partial)
                del partial[index]

        yield from recurse(f, 0, {})

    def cube(self, assignment: Dict[int | str, bool]) -> int:
        """The conjunction of literals described by ``assignment``."""
        result = self.TRUE
        for var, value in assignment.items():
            literal = self.var(var) if value else self.nvar(var)
            result = self.and_(result, literal)
        return result

    def eval(self, f: int, assignment: Dict[int | str, bool]) -> bool:
        """Evaluate ``f`` under a total assignment of its support."""
        fixed = {
            (self.var_index(var) if isinstance(var, str) else var): bool(value)
            for var, value in assignment.items()
        }
        node = f
        while node > 1:
            level = self._level[node]
            if level not in fixed:
                raise BddError(
                    f"assignment does not cover variable {self._var_names[level]!r}"
                )
            node = self._hi[node] if fixed[level] else self._lo[node]
        return node == self.TRUE

    # ------------------------------------------------------------------
    # Maintenance / statistics
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop all operation caches (node table is kept)."""
        self._and_cache.clear()
        self._or_cache.clear()
        self._xor_cache.clear()
        self._ite_cache.clear()
        self._not_cache.clear()
        self._exists_cache.clear()
        self._forall_cache.clear()
        self._and_exists_cache.clear()
        self._rename_cache.clear()

    def reset_stats(self) -> None:
        """Zero every hit/miss counter (cache contents are untouched)."""
        for op in self._hits:
            self._hits[op] = 0
            self._misses[op] = 0
        self._rename_fast = 0
        self._rename_slow = 0

    def stats(self) -> Dict[str, object]:
        """Operation counters, cache hit rates and table sizes for this manager.

        The node table never shrinks, so ``nodes`` is also the peak table
        size of the run.
        """
        ops: Dict[str, Dict[str, float]] = {}
        for op in self._hits:
            hits = self._hits[op]
            misses = self._misses[op]
            total = hits + misses
            ops[op] = {
                "hits": hits,
                "misses": misses,
                "hit_rate": (hits / total) if total else 0.0,
            }
        cache_sizes = {
            "and": len(self._and_cache),
            "or": len(self._or_cache),
            "xor": len(self._xor_cache),
            "ite": len(self._ite_cache),
            "not": len(self._not_cache),
            "exists": len(self._exists_cache),
            "forall": len(self._forall_cache),
            "and_exists": len(self._and_exists_cache),
            "rename": len(self._rename_cache),
        }
        return {
            "nodes": len(self._level),
            "peak_nodes": len(self._level),
            "vars": len(self._var_names),
            "quant_cubes": len(self._cube_table),
            "rename_maps": len(self._rename_table),
            "rename_fast_path": self._rename_fast,
            "rename_fallback": self._rename_slow,
            "ops": ops,
            "cache_sizes": cache_sizes,
        }

    def to_expr(self, f: int) -> str:
        """A (dense) textual if-then-else rendering, for debugging small BDDs."""
        if f == self.FALSE:
            return "FALSE"
        if f == self.TRUE:
            return "TRUE"
        name = self._var_names[self._level[f]]
        return f"ite({name}, {self.to_expr(self._hi[f])}, {self.to_expr(self._lo[f])})"


class _RenameMap:
    """An interned variable-renaming mapping (identity-hashed cache key)."""

    __slots__ = ("mapping",)

    def __init__(self, mapping: Dict[int, int]) -> None:
        self.mapping = mapping

    def __repr__(self) -> str:
        return f"_RenameMap({self.mapping})"
