"""Read-only shared-memory snapshots of solved BDD node tables.

The struct-of-arrays store (:class:`repro.bdd._array.ArrayBddManager`) keeps
its node table in three flat int64 vectors, which makes a *snapshot* a plain
``memcpy``: :func:`freeze` copies the (GC-compacted) vectors plus a frozen
open-addressing image of the unique table into a named
:mod:`multiprocessing.shared_memory` segment.  Other processes attach
**copy-free** — the segment is mapped, never deserialised — and run query
post-passes (``check`` / ``check_all`` / ``count_sat``) against the solved
table through a :class:`SnapshotOverlayManager`.

Why an overlay and not a bare read-only view: a query post-pass still
*allocates* (the Target template and the query plan's intermediate BDDs are
new nodes).  The overlay therefore chains a private, process-local tail onto
the immutable base prefix and — crucially — probes the frozen unique table
in ``_mk`` before allocating, so every node that already exists in the base
is found, canonicity holds across the base/tail boundary, and signed-edge
equality keeps meaning function equality.  Without that probe a
semantically-constant result could materialise as a fresh non-terminal node
and a ``result == TRUE`` verdict would silently go wrong.

Segment lifecycle contract
--------------------------
* The **freezer** creates the segment; its ``resource_tracker`` registration
  is kept as a crash-safety net (a killed freezer's tracker unlinks the
  segment) until ownership is handed off with :func:`disown` — after that,
  exactly one owner (the shard driver or the service daemon) is responsible
  for :func:`unlink`.
* **Attachers** never own the segment: :class:`SnapshotView` unregisters
  itself from its process's tracker immediately (Python registers on attach
  too, and an exiting attacher's tracker would otherwise unlink the segment
  under everyone else — the classic ``shared_memory`` wart) and only ever
  ``close()``\\ s.
* :func:`unlink` is idempotent (a missing segment is not an error), so
  drain paths, chaos recovery and ``finally`` blocks can all call it.
"""

from __future__ import annotations

import os
import pickle
import secrets
from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import NodeBudgetExceeded
from . import _vector
from ._array import EDGE_BITS, LEVEL_SHIFT, MAX_NODE_INDEX, ArrayBddManager
from .manager import BddError, BddManager

__all__ = [
    "SEGMENT_PREFIX",
    "SnapshotView",
    "SnapshotOverlayManager",
    "freeze",
    "disown",
    "unlink",
    "list_segments",
]

#: Every snapshot segment name starts with this (tests and drain sweeps key
#: on it; /dev/shm listing is the ground truth for leak assertions).
SEGMENT_PREFIX = "repro-snap-"

_MAGIC = 0x52505230_534E4150  # "RPR0SNAP"
_VERSION = 1
_HEADER_WORDS = 8
_HEADER_BYTES = _HEADER_WORDS * 8


def _mix(key: int) -> int:
    """Cheap avalanche for open-addressing probes (keys are structured)."""
    return key ^ (key >> 29)


def _pad8(n: int) -> int:
    return (n + 7) & ~7


def segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"


def freeze(manager: BddManager, name: Optional[str] = None) -> str:
    """Copy a manager's node table into a new shared-memory segment.

    The manager must use the array store and should be GC-swept first so
    the frozen image is compact (``AnalysisSession.freeze`` does both).
    Returns the segment name.  The calling process keeps the
    resource-tracker registration (crash-safety) until :func:`disown`.
    """
    from multiprocessing import shared_memory

    if not isinstance(manager, ArrayBddManager):
        raise BddError(
            f"snapshots need the array node store (manager uses {manager.STORE!r})"
        )
    if isinstance(manager, SnapshotOverlayManager):
        raise BddError("cannot freeze a snapshot overlay manager")
    capacity = len(manager._level)
    unique = manager._unique
    table_size = 8
    while table_size < 2 * len(unique) + 1:
        table_size <<= 1
    meta = pickle.dumps(
        {"var_names": manager.var_names, "live": manager._live},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    meta_len = len(meta)
    arrays_off = _HEADER_BYTES + _pad8(meta_len)
    total = arrays_off + 3 * capacity * 8 + 2 * table_size * 8
    if name is None:
        name = segment_name()
    shm = shared_memory.SharedMemory(create=True, size=total, name=name)
    try:
        header = array(
            "q",
            [
                _MAGIC,
                _VERSION,
                capacity,
                manager.num_vars,
                manager._live,
                table_size,
                meta_len,
                0,
            ],
        )
        buf = shm.buf
        buf[:_HEADER_BYTES] = header.tobytes()
        buf[_HEADER_BYTES : _HEADER_BYTES + meta_len] = meta
        off = arrays_off
        for vec in (manager._level, manager._lo, manager._hi):
            raw = vec.tobytes()
            buf[off : off + len(raw)] = raw
            off += capacity * 8
        # Frozen open-addressing unique table: parallel key/value int64
        # arrays, linear probing, key 0 = empty (the packed key 0 would be
        # the node (0, FALSE, FALSE), which reduction makes unrepresentable).
        keys = array("q", bytes(table_size * 8))
        vals = array("q", bytes(table_size * 8))
        mask = table_size - 1
        for key, index in unique.items():
            i = _mix(key) & mask
            while keys[i]:
                i = (i + 1) & mask
            keys[i] = key
            vals[i] = index
        raw = keys.tobytes()
        buf[off : off + len(raw)] = raw
        off += table_size * 8
        raw = vals.tobytes()
        buf[off : off + len(raw)] = raw
        shm.close()
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    return name


def disown(name: str) -> None:
    """Drop this process's resource-tracker registration for a segment.

    Called by the freezer once another process has accepted ownership (the
    name was delivered in a result/outcome): from then on the owner's
    :func:`unlink` is the cleanup path and the freezer's exit must not
    destroy — or warn about — the segment.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:
        pass


def unlink(name: str) -> bool:
    """Destroy a segment by name; idempotent (False when already gone)."""
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        shm.unlink()  # also unregisters the attach-registration just made
    finally:
        shm.close()
    return True


def list_segments() -> List[str]:
    """Snapshot segments currently present in /dev/shm (leak assertions)."""
    try:
        return sorted(
            entry for entry in os.listdir("/dev/shm") if entry.startswith(SEGMENT_PREFIX)
        )
    except OSError:
        return []


class SnapshotView:
    """A copy-free attachment to a frozen node table.

    Exposes the three node vectors as read-only int64 memoryviews (plus
    numpy aliases when numpy is available), the frozen unique-table probe,
    and the metadata needed to rebuild a manager around the image.  Views
    only ever ``close()``; they never unlink (see the module docstring).
    """

    def __init__(self, name: str) -> None:
        from multiprocessing import shared_memory

        self.name = name
        self._shm = shared_memory.SharedMemory(name=name)
        # Python registers attachments with the resource tracker as if they
        # were creations; undo that immediately or this process's exit
        # would unlink the segment under its real owner.
        disown(name)
        header = array("q", bytes(self._shm.buf[:_HEADER_BYTES]))
        if header[0] != _MAGIC or header[1] != _VERSION:
            self._shm.close()
            raise BddError(f"segment {name!r} is not a compatible snapshot")
        self.capacity = header[2]
        self.num_vars = header[3]
        self.live = header[4]
        self._table_size = header[5]
        meta_len = header[6]
        meta = pickle.loads(bytes(self._shm.buf[_HEADER_BYTES : _HEADER_BYTES + meta_len]))
        self.var_names: Tuple[str, ...] = tuple(meta["var_names"])
        off = _HEADER_BYTES + _pad8(meta_len)
        cap_b = self.capacity * 8
        tab_b = self._table_size * 8
        buf = self._shm.buf
        self._views: List[memoryview] = []

        def span(start: int, nbytes: int) -> memoryview:
            view = buf[start : start + nbytes].toreadonly().cast("q")
            self._views.append(view)
            return view

        self.level = span(off, cap_b)
        self.lo = span(off + cap_b, cap_b)
        self.hi = span(off + 2 * cap_b, cap_b)
        self._keys = span(off + 3 * cap_b, tab_b)
        self._vals = span(off + 3 * cap_b + tab_b, tab_b)
        self.level_np = self.lo_np = self.hi_np = None
        if _vector.HAVE_NUMPY:
            import numpy as np

            self.level_np = np.frombuffer(self.level, dtype=np.int64)
            self.lo_np = np.frombuffer(self.lo, dtype=np.int64)
            self.hi_np = np.frombuffer(self.hi, dtype=np.int64)
        self._closed = False

    def lookup(self, key: int) -> Optional[int]:
        """Probe the frozen unique table for a packed ``(level, lo, hi)`` key."""
        keys = self._keys
        mask = self._table_size - 1
        i = _mix(key) & mask
        while True:
            k = keys[i]
            if k == key:
                return self._vals[i]
            if k == 0:
                return None
            i = (i + 1) & mask

    def close(self) -> None:
        """Detach from the segment (idempotent).  Never unlinks."""
        if self._closed:
            return
        self._closed = True
        self.level_np = self.lo_np = self.hi_np = None
        self.level = self.lo = self.hi = self._keys = self._vals = None
        for view in self._views:
            view.release()
        self._views.clear()
        self._shm.close()

    def __enter__(self) -> "SnapshotView":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _ChainVec:
    """A node vector = immutable base prefix + private growable tail."""

    __slots__ = ("base", "base_len", "tail")

    def __init__(self, base, tail: array) -> None:
        self.base = base
        self.base_len = len(base)
        self.tail = tail

    def __len__(self) -> int:
        return self.base_len + len(self.tail)

    def __getitem__(self, index: int) -> int:
        if index < self.base_len:
            return self.base[index]
        return self.tail[index - self.base_len]

    def __setitem__(self, index: int, value: int) -> None:
        # Writes below base_len would corrupt the shared image for every
        # attached process; the overlay's GC never frees base slots, so
        # this can only be a bug.
        self.tail[index - self.base_len] = value

    def append(self, value: int) -> None:
        self.tail.append(value)


class SnapshotOverlayManager(ArrayBddManager):
    """An allocation-capable manager over a frozen base table.

    Shares the base's node index space (indices below ``view.capacity`` are
    the frozen nodes; frozen signed edges stay valid verbatim) and allocates
    query-time nodes into a private tail.  ``_mk`` probes the local unique
    dict, then the frozen open-addressing table, then allocates — so
    canonicity spans both halves.  GC sweeps only the tail (base nodes are
    immortal here; the owner of the segment decides its lifetime), and
    ``_live``/``len()`` count only terminal + tail nodes: an attached
    overlay *is* cheap, and session-pool LRU pricing must see it that way.
    """

    def __init__(self, view: SnapshotView, **kwargs) -> None:
        self._view = view
        super().__init__(list(view.var_names), **kwargs)
        self._base_len = view.capacity
        self._level = _ChainVec(view.level, array("q"))
        self._lo = _ChainVec(view.lo, array("q"))
        self._hi = _ChainVec(view.hi, array("q"))
        self._unique = {}
        self._free = []

    # -- node creation ---------------------------------------------------
    def _mk(self, level: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        sign = hi & 1
        if sign:
            lo ^= 1
            hi ^= 1
        key = (level << LEVEL_SHIFT) | (lo << EDGE_BITS) | hi
        index = self._unique.get(key)
        if index is None:
            index = self._view.lookup(key)
            if index is not None:
                # A frozen node: cache the hit locally so repeat lookups
                # skip the shared-memory probe.
                self._unique[key] = index
                return (index << 1) | sign
            free = self._free
            if free:
                index = free.pop()
                self._level[index] = level
                self._lo[index] = lo
                self._hi[index] = hi
            else:
                index = len(self._level)
                if index > MAX_NODE_INDEX:
                    raise BddError(
                        f"array store supports at most {MAX_NODE_INDEX} node "
                        "slots (packed-key bound); construct the manager with "
                        "store='dict'"
                    )
                self._level.append(level)
                self._lo.append(lo)
                self._hi.append(hi)
            self._unique[key] = index
            self._live += 1
            if self._live > self._peak_live:
                self._peak_live = self._live
            if self._node_budget is not None and self._live > self._node_budget:
                raise NodeBudgetExceeded(consumed=self._live, budget=self._node_budget)
            if self._deadline is not None:
                self._deadline_countdown -= 1
                if self._deadline_countdown <= 0:
                    self._deadline_countdown = self._deadline_interval
                    self._check_deadline()
        return (index << 1) | sign

    # -- garbage collection (tail-only) ----------------------------------
    def collect_garbage(self, roots: Iterable[int] = ()) -> int:
        base_len = self._base_len
        tail_len = len(self._level) - base_len
        marked = bytearray(tail_len)
        stack: List[int] = list(self._extref)
        for edge in roots:
            stack.append(edge >> 1)
        level = self._level
        lo = self._lo
        hi = self._hi
        while stack:
            index = stack.pop()
            if index < base_len:
                # Frozen nodes are immortal and closed under reachability:
                # nothing below them can be a tail node.
                continue
            local = index - base_len
            if marked[local]:
                continue
            marked[local] = 1
            stack.append(lo[index] >> 1)
            stack.append(hi[index] >> 1)
        reclaimed = 0
        free_level = self._FREE_LEVEL
        unique = self._unique
        for local in range(tail_len):
            index = base_len + local
            if marked[local] or level[index] == free_level:
                continue
            del unique[
                (level[index] << LEVEL_SHIFT) | (lo[index] << EDGE_BITS) | hi[index]
            ]
            level[index] = free_level
            lo[index] = 0
            hi[index] = 0
            self._free.append(index)
            reclaimed += 1
        self._gc_collections += 1
        if reclaimed:
            self._live -= reclaimed
            self._gc_reclaimed += reclaimed
            self._trim_tail_scalar()
            self._drop_op_caches()
            for hook in self._gc_hooks:
                hook()
        if self._debug_checks:
            self._debug_validate()
        return reclaimed

    def _trim_tail_scalar(self) -> None:
        tail = self._level.tail
        last = len(tail) - 1
        free_level = self._FREE_LEVEL
        while last >= 0 and tail[last] == free_level:
            last -= 1
        keep = last + 1
        if keep == len(tail):
            return
        del self._level.tail[keep:]
        del self._lo.tail[keep:]
        del self._hi.tail[keep:]
        boundary = self._base_len + keep
        self._free = sorted((i for i in self._free if i < boundary), reverse=True)

    # -- kernel sanitizer (overlay-aware) --------------------------------
    def _debug_validate(self) -> None:
        """Overlay variant of the sanitizer (see ``BddManager._debug_validate``).

        Frozen base slots are immutable and were validated by their freezer,
        so the checks cover what this process can corrupt: the private tail
        (structure, level order, liveness), the local unique cache — whose
        entries may legitimately point at *either* half — the free list, the
        external references and the operation caches.
        """
        level = self._level
        lo = self._lo
        hi = self._hi
        base_len = self._base_len
        capacity = len(level)
        free_level = self._FREE_LEVEL
        free_slots = set()
        for index in range(base_len, capacity):
            if level[index] == free_level:
                if lo[index] or hi[index]:
                    raise BddError(
                        f"sanitizer: free tail slot {index} has dangling children"
                    )
                free_slots.add(index)
        if len(self._free) != len(set(self._free)):
            raise BddError("sanitizer: duplicate slots on the overlay free list")
        if set(self._free) != free_slots:
            raise BddError(
                "sanitizer: overlay free list does not match the free-marked "
                f"tail slots (listed={len(self._free)}, marked={len(free_slots)})"
            )
        # The overlay counts only terminal + tail nodes (attached bases are
        # priced as free by the session pool).
        live = 1 + (capacity - base_len) - len(free_slots)
        if live != self._live:
            raise BddError(
                f"sanitizer: overlay live counter {self._live} != {live} "
                "(terminal + non-free tail slots)"
            )
        for key, index in self._unique.items():
            if not 0 < index < capacity or level[index] == free_level:
                raise BddError(
                    f"sanitizer: overlay unique cache maps {key!r} to dead "
                    f"slot {index}"
                )
            if key != self._unique_key(index):
                raise BddError(
                    f"sanitizer: overlay unique key {key!r} does not match "
                    f"node {index}"
                )
        num_levels = len(self._var_names)
        unique = self._unique
        for index in range(base_len, capacity):
            node_level = level[index]
            if node_level == free_level:
                continue
            if not 0 <= node_level < num_levels:
                raise BddError(
                    f"sanitizer: tail node {index} has out-of-range level "
                    f"{node_level}"
                )
            if hi[index] & 1:
                raise BddError(
                    f"sanitizer: tail node {index} stores a complemented "
                    "then-edge"
                )
            if lo[index] == hi[index]:
                raise BddError(
                    f"sanitizer: tail node {index} is unreduced (lo == hi)"
                )
            if unique.get(self._unique_key(index)) != index:
                raise BddError(
                    f"sanitizer: tail node {index} missing from the overlay "
                    "unique cache"
                )
            for child in (lo[index], hi[index]):
                child_index = child >> 1
                if not 0 <= child_index < capacity or level[child_index] == free_level:
                    raise BddError(
                        f"sanitizer: tail node {index} points at dead child "
                        f"edge {child}"
                    )
                if child_index and level[child_index] <= node_level:
                    raise BddError(
                        f"sanitizer: tail node {index} (level {node_level}) "
                        f"violates the level order via child {child_index}"
                    )
        for index, count in self._extref.items():
            if count <= 0:
                raise BddError(
                    f"sanitizer: non-positive external refcount {count} on "
                    f"node {index}"
                )
            if not 0 < index < capacity or level[index] == free_level:
                raise BddError(
                    f"sanitizer: external reference to dead slot {index}"
                )
        for op, edge in self._debug_cache_edges():
            index = edge >> 1
            if not 0 <= index < capacity or level[index] == free_level:
                raise BddError(f"sanitizer: {op} cache mentions dead edge {edge}")

    # -- vectorised counting over the frozen image -----------------------
    def count_sat(self, f: int, variables: Optional[Iterable[int | str]] = None) -> int:
        view = self._view
        if (
            f > 1
            and (f >> 1) < self._base_len
            and view.level_np is not None
            and not self._closed_view()
        ):
            # Frozen roots are closed over frozen nodes, so the vectorised
            # bottom-up pass can run directly on the shared image.
            if variables is None:
                var_set = frozenset(range(len(self._var_names)))
            else:
                var_set = self._var_set(variables)
                missing = self.support(f) - var_set
                if missing:
                    names = sorted(self._var_names[i] for i in missing)
                    raise BddError(
                        f"count_sat variables must cover the support; missing {names}"
                    )
            order = sorted(var_set)
            total_levels = len(order)
            if total_levels <= _vector.MAX_VECTOR_COUNT_LEVELS:
                import numpy as np

                pos_of = np.full(max(len(self._var_names), 1), -1, dtype=np.int64)
                for pos, lvl in enumerate(order):
                    pos_of[lvl] = pos
                return _vector.count_sat_vector(
                    view.level_np, view.lo_np, view.hi_np, f, pos_of, total_levels
                )
        # Tail-rooted (or numpy-less) counts walk the chain vector with the
        # dict store's exact memoised recursion.
        return BddManager.count_sat(self, f, variables)

    def _closed_view(self) -> bool:
        return getattr(self._view, "_closed", True)

    # -- lifecycle / stats -----------------------------------------------
    def detach(self) -> None:
        """Release the underlying view (the manager must not be used after)."""
        self._view.close()

    def stats(self) -> Dict[str, object]:
        data = super().stats()
        data["store"] = "array-snapshot-overlay"
        data["snapshot"] = {
            "segment": self._view.name,
            "base_capacity": self._base_len,
            "base_live": self._view.live,
            "overlay_nodes": self._live,
        }
        return data
