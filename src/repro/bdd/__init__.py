"""Pure-Python ROBDD library (the symbolic substrate of the reproduction).

Public API
----------
:class:`BddManager`
    The node table and operation layer (integer node handles).
:class:`Function`
    Ergonomic wrapper with operator overloading for user code.
:func:`interleave`, :func:`order_from_affinity`
    Static variable-ordering heuristics ("allocation constraints").
"""

from .manager import BddError, BddManager, QuantCube
from .function import Function
from .ordering import interleave, order_from_affinity, validate_order

__all__ = [
    "BddError",
    "BddManager",
    "QuantCube",
    "Function",
    "interleave",
    "order_from_affinity",
    "validate_order",
]
