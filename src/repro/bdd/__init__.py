"""Pure-Python ROBDD library (the symbolic substrate of the reproduction).

The node layer uses *complement edges* — a function handle is a signed edge
``(node << 1) | complement`` with a single shared terminal, so negation is an
O(1) edge flip and a function shares every node with its complement — and a
mark-and-sweep garbage collector with external-reference tracking (see
:mod:`repro.bdd.manager`).

Public API
----------
:class:`BddManager`
    The node table and operation layer (integer signed-edge handles),
    including ``ref``/``deref`` external-root tracking, ``collect_garbage``
    / ``maybe_collect`` and GC hooks.
:class:`Function` (alias :class:`BddFunction`)
    Ergonomic wrapper with operator overloading for user code; wrappers are
    the collector's external references (ref on construction, deref on
    release/finalisation, context-manager scoped).
:func:`interleave`, :func:`order_from_affinity`
    Static variable-ordering heuristics ("allocation constraints").
"""

from .manager import BddError, BddManager, QuantCube
from .function import BddFunction, Function
from .ordering import interleave, order_from_affinity, validate_order

__all__ = [
    "BddError",
    "BddManager",
    "QuantCube",
    "BddFunction",
    "Function",
    "interleave",
    "order_from_affinity",
    "validate_order",
]
