"""Pure-Python ROBDD library (the symbolic substrate of the reproduction).

The node layer uses *complement edges* — a function handle is a signed edge
``(node << 1) | complement`` with a single shared terminal, so negation is an
O(1) edge flip and a function shares every node with its complement — and a
mark-and-sweep garbage collector with external-reference tracking (see
:mod:`repro.bdd.manager`).

Public API
----------
:class:`BddManager`
    The node table and operation layer (integer signed-edge handles),
    including ``ref``/``deref`` external-root tracking, ``collect_garbage``
    / ``maybe_collect`` and GC hooks.  Two interchangeable node stores sit
    behind the same API: the default struct-of-arrays layout
    (``store="array"``, :class:`ArrayBddManager`) with flat int64 node
    vectors, packed integer cache keys and vectorised GC/counting, and the
    original dict-of-tuples layout (``store="dict"``) kept as a
    config-switchable fallback (also via ``REPRO_BDD_STORE``).
:class:`Function` (alias :class:`BddFunction`)
    Ergonomic wrapper with operator overloading for user code; wrappers are
    the collector's external references (ref on construction, deref on
    release/finalisation, context-manager scoped).
:mod:`repro.bdd.snapshot`
    Read-only shared-memory snapshots of solved array-store node tables:
    :func:`freeze` publishes a segment, :class:`SnapshotView` attaches
    copy-free, :class:`SnapshotOverlayManager` runs query post-passes over
    the frozen image.
:func:`interleave`, :func:`order_from_affinity`
    Static variable-ordering heuristics ("allocation constraints").
"""

from .manager import BddError, BddManager, QuantCube
from ._array import ArrayBddManager
from .function import BddFunction, Function
from .ordering import interleave, order_from_affinity, validate_order
from .snapshot import SnapshotOverlayManager, SnapshotView, freeze

__all__ = [
    "BddError",
    "BddManager",
    "ArrayBddManager",
    "QuantCube",
    "BddFunction",
    "Function",
    "SnapshotOverlayManager",
    "SnapshotView",
    "freeze",
    "interleave",
    "order_from_affinity",
    "validate_order",
]
