"""Static BDD variable-ordering heuristics.

The original Getafix tool hands MUCKE a set of *allocation constraints*: a
suggestion of which BDD variables should live next to each other, derived from
the assignments in the Boolean program (variables assigned together are
allocated together), which is the same heuristic used by BEBOP and MOPED v1.

This module implements that heuristic in two layers:

* :func:`interleave` — given groups of related variable names (for example the
  current/primed/entry copies of the same program variable), produce a single
  order in which the members of each group are adjacent.
* :func:`order_from_affinity` — given pairwise affinities (how often two
  variables occur in the same assignment/expression), greedily chain variables
  so that strongly related variables end up close together.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["interleave", "order_from_affinity", "validate_order"]


def interleave(groups: Sequence[Sequence[str]]) -> List[str]:
    """Interleave variable groups so members of each group stay adjacent.

    ``groups`` is a sequence of variable-name groups; the result lists the
    groups in order with each group's members consecutive.  Duplicate names
    (a variable appearing in more than one group) keep their first position.

    >>> interleave([["x", "x'"], ["y", "y'"]])
    ['x', "x'", 'y', "y'"]
    """
    order: List[str] = []
    seen: set = set()
    for group in groups:
        for name in group:
            if name not in seen:
                seen.add(name)
                order.append(name)
    return order


def order_from_affinity(
    variables: Iterable[str],
    affinities: Dict[Tuple[str, str], int],
) -> List[str]:
    """Order variables so that pairs with high affinity are close together.

    ``affinities`` maps unordered pairs ``(a, b)`` (in either orientation) to a
    non-negative weight; higher means "keep closer".  The algorithm greedily
    merges chains of variables, joining the two chains linked by the heaviest
    remaining affinity edge at their nearest ends.  Variables with no
    affinities are appended at the end in their input order.
    """
    variables = list(dict.fromkeys(variables))
    index = {name: position for position, name in enumerate(variables)}
    # Normalise affinity keys and drop self/unknown pairs.
    edges: List[Tuple[int, str, str]] = []
    for (a, b), weight in affinities.items():
        if a == b or a not in index or b not in index or weight <= 0:
            continue
        edges.append((weight, a, b))
    edges.sort(key=lambda edge: (-edge[0], index[edge[1]], index[edge[2]]))

    # Union-find over chains, each chain kept as an explicit list.
    chain_of: Dict[str, List[str]] = {name: [name] for name in variables}

    def join(left: List[str], right: List[str], a: str, b: str) -> List[str]:
        # Orient the chains so that ``a`` and ``b`` end up adjacent when possible.
        if left[0] == a:
            left = list(reversed(left))
        if right[-1] == b:
            right = list(reversed(right))
        return left + right

    for _, a, b in edges:
        chain_a = chain_of[a]
        chain_b = chain_of[b]
        if chain_a is chain_b:
            continue
        # Only join at chain endpoints; interior variables stay where they are.
        if a not in (chain_a[0], chain_a[-1]) or b not in (chain_b[0], chain_b[-1]):
            continue
        merged = join(chain_a, chain_b, a, b)
        for name in merged:
            chain_of[name] = merged

    ordered: List[str] = []
    seen: set = set()
    for name in variables:
        chain = chain_of[name]
        if id(chain) in seen:
            continue
        seen.add(id(chain))
        ordered.extend(chain)
    return ordered


def validate_order(order: Sequence[str]) -> List[str]:
    """Check that an order has no duplicates and return it as a list."""
    result = list(order)
    if len(set(result)) != len(result):
        duplicates = sorted({name for name in result if result.count(name) > 1})
        raise ValueError(f"duplicate variables in order: {duplicates}")
    return result
