"""Tokenizer for the Boolean program concrete syntax."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from .errors import ParseError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "decl",
    "begin",
    "end",
    "skip",
    "call",
    "return",
    "if",
    "then",
    "else",
    "fi",
    "while",
    "do",
    "od",
    "goto",
    "assert",
    "assume",
    "shared",
    "thread",
    "init",
    "T",
    "F",
}

_TOKEN_SPEC = [
    ("COMMENT", r"//[^\n]*|/\*.*?\*/"),
    ("WS", r"[ \t\r\n]+"),
    ("ASSIGN", r":="),
    ("NEQ", r"!="),
    ("EQEQ", r"=="),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("PUNCT", r"[():,;]"),
    ("OP", r"[!&|^*]"),
    ("LABEL", r":"),
]

_MASTER = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC), re.DOTALL)


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position (1-based line/column)."""

    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenize Boolean-program source text.

    Keywords are reported with kind ``KEYWORD``; identifiers with ``IDENT``;
    punctuation and operators with their literal text as kind.  Comments and
    whitespace are dropped.  An :class:`~repro.boolprog.errors.ParseError` is
    raised on unexpected characters.
    """
    tokens: List[Token] = []
    line = 1
    line_start = 0
    position = 0
    while position < len(source):
        match = _MASTER.match(source, position)
        if match is None:
            column = position - line_start + 1
            raise ParseError(f"unexpected character {source[position]!r}", line, column)
        kind = match.lastgroup
        text = match.group()
        column = position - line_start + 1
        if kind not in ("WS", "COMMENT"):
            if kind == "IDENT" and text in KEYWORDS:
                tokens.append(Token("KEYWORD", text, line, column))
            elif kind in ("PUNCT", "OP", "ASSIGN", "NEQ", "EQEQ"):
                tokens.append(Token(text, text, line, column))
            else:
                tokens.append(Token(kind, text, line, column))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = position + text.rfind("\n") + 1
        position = match.end()
    tokens.append(Token("EOF", "", line, position - line_start + 1))
    return tokens
