"""Static checks for Boolean programs.

The checks mirror the "obvious restrictions" of Section 2 of the paper:
globals and locals are disjoint, formal parameters are locals, bodies only
mention declared variables, return statements agree with the procedure's
return arity, calls match the callee's signature, and ``main`` exists, takes
no parameters and is never called.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .ast import (
    Assert,
    Assign,
    Assume,
    Call,
    CallAssign,
    Expr,
    Goto,
    If,
    Procedure,
    Program,
    Return,
    Skip,
    Stmt,
    While,
)
from .concurrent import ConcurrentProgram
from .errors import StaticError

__all__ = ["check_program", "check_concurrent_program"]


def check_program(program: Program) -> None:
    """Validate a sequential program; raise :class:`StaticError` on problems."""
    errors: List[str] = []
    global_set = set(program.globals)
    if len(global_set) != len(program.globals):
        errors.append("duplicate global variable declarations")
    if program.main not in program.procedures:
        errors.append(f"program has no {program.main!r} procedure")
    else:
        main = program.procedures[program.main]
        if main.params:
            errors.append(f"{program.main!r} must not take parameters")
    for procedure in program.procedures.values():
        errors.extend(_check_procedure(program, procedure, global_set))
    if errors:
        raise StaticError("; ".join(errors))


def check_concurrent_program(program: ConcurrentProgram) -> None:
    """Validate a concurrent program thread by thread."""
    errors: List[str] = []
    if len(set(program.shared)) != len(program.shared):
        errors.append("duplicate shared variable declarations")
    unknown_init = set(program.init) - set(program.shared)
    if unknown_init:
        errors.append(f"init mentions non-shared variables {sorted(unknown_init)}")
    for thread in program.threads:
        shared_plus_private = list(program.shared) + list(thread.program.globals)
        widened = Program(
            globals=shared_plus_private,
            procedures=thread.program.procedures,
            main=thread.program.main,
            name=thread.program.name,
        )
        try:
            check_program(widened)
        except StaticError as error:
            errors.append(f"thread {thread.name!r}: {error}")
    if errors:
        raise StaticError("; ".join(errors))


def _check_procedure(program: Program, procedure: Procedure, global_set: Set[str]) -> List[str]:
    errors: List[str] = []
    prefix = f"procedure {procedure.name!r}"
    locals_ = procedure.all_locals()
    local_set = set(locals_)
    if len(local_set) != len(locals_):
        errors.append(f"{prefix}: duplicate local/parameter declarations")
    shadowed = local_set & global_set
    if shadowed:
        errors.append(f"{prefix}: locals shadow globals {sorted(shadowed)}")
    visible = local_set | global_set
    labels: Set[str] = set()
    label_targets: Set[str] = set()

    def check_expr(expression: Expr, where: str) -> None:
        unknown = expression.variables() - visible
        if unknown:
            errors.append(f"{prefix}: {where} uses undeclared variables {sorted(unknown)}")

    def check_call(callee_name: str, args: List[Expr], targets: List[str], is_plain: bool) -> None:
        if callee_name == program.main:
            errors.append(f"{prefix}: calls {program.main!r}, which is not allowed")
        callee = program.procedures.get(callee_name)
        if callee is None:
            errors.append(f"{prefix}: calls unknown procedure {callee_name!r}")
            return
        if len(args) != len(callee.params):
            errors.append(
                f"{prefix}: call to {callee_name!r} passes {len(args)} arguments, "
                f"expected {len(callee.params)}"
            )
        if is_plain:
            if callee.num_returns != 0:
                errors.append(
                    f"{prefix}: 'call {callee_name}' discards {callee.num_returns} return values"
                )
        elif len(targets) != callee.num_returns:
            errors.append(
                f"{prefix}: call to {callee_name!r} assigns {len(targets)} values, "
                f"the procedure returns {callee.num_returns}"
            )
        for expression in args:
            check_expr(expression, f"call to {callee_name!r}")

    def check_targets(targets: List[str], where: str) -> None:
        unknown = set(targets) - visible
        if unknown:
            errors.append(f"{prefix}: {where} assigns undeclared variables {sorted(unknown)}")

    def walk(statements: List[Stmt]) -> None:
        for statement in statements:
            if statement.label is not None:
                if statement.label in labels:
                    errors.append(f"{prefix}: duplicate label {statement.label!r}")
                labels.add(statement.label)
            if isinstance(statement, Skip):
                continue
            if isinstance(statement, Assign):
                check_targets(statement.targets, "assignment")
                for expression in statement.values:
                    check_expr(expression, "assignment")
            elif isinstance(statement, CallAssign):
                check_targets(statement.targets, "call assignment")
                check_call(statement.callee, statement.args, statement.targets, is_plain=False)
            elif isinstance(statement, Call):
                check_call(statement.callee, statement.args, [], is_plain=True)
            elif isinstance(statement, Return):
                if len(statement.values) != procedure.num_returns:
                    errors.append(
                        f"{prefix}: return with {len(statement.values)} values, "
                        f"procedure returns {procedure.num_returns}"
                    )
                for expression in statement.values:
                    check_expr(expression, "return")
            elif isinstance(statement, (Assert, Assume)):
                check_expr(statement.condition, type(statement).__name__.lower())
            elif isinstance(statement, Goto):
                label_targets.add(statement.target)
            elif isinstance(statement, If):
                check_expr(statement.condition, "if condition")
                walk(statement.then_branch)
                walk(statement.else_branch)
            elif isinstance(statement, While):
                check_expr(statement.condition, "while condition")
                walk(statement.body)
            else:
                errors.append(f"{prefix}: unknown statement {statement!r}")

    walk(procedure.body)
    missing = label_targets - labels
    if missing:
        errors.append(f"{prefix}: goto targets {sorted(missing)} are not defined")
    return errors
