"""Recursive-descent parser for Boolean programs (sequential and concurrent)."""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast import (
    Assert,
    Assign,
    Assume,
    BinOp,
    Call,
    CallAssign,
    Expr,
    Goto,
    If,
    Lit,
    Nondet,
    NotE,
    Procedure,
    Program,
    Return,
    Skip,
    Stmt,
    VarRef,
    While,
)
from .concurrent import ConcurrentProgram, Thread
from .errors import ParseError
from .lexer import Token, tokenize

__all__ = ["parse_program", "parse_concurrent_program", "parse_expression"]


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token helpers ---------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "EOF":
            self.position += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.peek()
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if not self.check(kind, text):
            expected = text if text is not None else kind
            raise ParseError(
                f"expected {expected!r} but found {token.text!r}", token.line, token.column
            )
        return self.advance()

    def keyword(self, word: str) -> bool:
        return self.check("KEYWORD", word)

    def expect_keyword(self, word: str) -> Token:
        return self.expect("KEYWORD", word)

    # -- declarations ------------------------------------------------------
    def parse_decl(self) -> List[str]:
        self.expect_keyword("decl")
        names = [self.expect("IDENT").text]
        while self.accept(","):
            names.append(self.expect("IDENT").text)
        self.expect(";")
        return names

    # -- programs ----------------------------------------------------------
    def parse_program(self, name: str = "program") -> Program:
        globals_: List[str] = []
        while self.keyword("decl"):
            globals_.extend(self.parse_decl())
        procedures = {}
        while self.check("IDENT"):
            procedure = self.parse_procedure()
            if procedure.name in procedures:
                raise ParseError(f"procedure {procedure.name!r} defined twice")
            procedures[procedure.name] = procedure
        self.expect("EOF")
        return Program(globals=globals_, procedures=procedures, name=name)

    def parse_concurrent_program(self, name: str = "program") -> ConcurrentProgram:
        shared: List[str] = []
        while self.keyword("shared"):
            self.advance()
            shared.extend(self.parse_decl())
        init: dict = {}
        while self.keyword("init"):
            self.advance()
            while True:
                variable = self.expect("IDENT").text
                self.expect(":=")
                if self.accept("KEYWORD", "T"):
                    init[variable] = True
                elif self.accept("KEYWORD", "F"):
                    init[variable] = False
                else:
                    token = self.peek()
                    raise ParseError(
                        "init values must be T or F", token.line, token.column
                    )
                if not self.accept(","):
                    break
            self.expect(";")
        threads: List[Thread] = []
        while self.keyword("thread"):
            self.advance()
            thread_name = self.expect("IDENT").text
            self.expect_keyword("begin")
            globals_: List[str] = []
            while self.keyword("decl"):
                globals_.extend(self.parse_decl())
            procedures = {}
            while self.check("IDENT"):
                procedure = self.parse_procedure()
                if procedure.name in procedures:
                    raise ParseError(
                        f"procedure {procedure.name!r} defined twice in thread {thread_name!r}"
                    )
                procedures[procedure.name] = procedure
            self.expect_keyword("end")
            threads.append(
                Thread(
                    name=thread_name,
                    program=Program(globals=globals_, procedures=procedures, name=thread_name),
                )
            )
        self.expect("EOF")
        if not threads:
            raise ParseError("a concurrent program needs at least one thread")
        unknown = set(init) - set(shared)
        if unknown:
            raise ParseError(f"init mentions non-shared variables {sorted(unknown)}")
        return ConcurrentProgram(shared=shared, threads=threads, name=name, init=init)

    # -- procedures ----------------------------------------------------------
    def parse_procedure(self) -> Procedure:
        name = self.expect("IDENT").text
        self.expect("(")
        params: List[str] = []
        if self.check("IDENT"):
            params.append(self.advance().text)
            while self.accept(","):
                params.append(self.expect("IDENT").text)
        self.expect(")")
        self.expect_keyword("begin")
        locals_: List[str] = []
        while self.keyword("decl"):
            locals_.extend(self.parse_decl())
        body = self.parse_statements(terminators=("end",))
        self.expect_keyword("end")
        num_returns = self._infer_returns(name, body)
        return Procedure(name=name, params=params, locals=locals_, body=body, num_returns=num_returns)

    def _infer_returns(self, name: str, body: List[Stmt]) -> int:
        counts = set()

        def walk(statements: List[Stmt]) -> None:
            for statement in statements:
                if isinstance(statement, Return):
                    counts.add(len(statement.values))
                elif isinstance(statement, If):
                    walk(statement.then_branch)
                    walk(statement.else_branch)
                elif isinstance(statement, While):
                    walk(statement.body)

        walk(body)
        if not counts:
            return 0
        if len(counts) > 1:
            raise ParseError(
                f"procedure {name!r} has return statements with different arities {sorted(counts)}"
            )
        return counts.pop()

    # -- statements -------------------------------------------------------------
    def parse_statements(self, terminators: Tuple[str, ...]) -> List[Stmt]:
        statements: List[Stmt] = []
        while not (self.check("KEYWORD") and self.peek().text in terminators):
            if self.check("EOF"):
                token = self.peek()
                raise ParseError("unexpected end of input inside a block", token.line, token.column)
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> Stmt:
        label = None
        if self.check("IDENT") and self.peek(1).kind == ":":
            label = self.advance().text
            self.advance()  # the ':'
        statement = self._parse_unlabelled()
        statement.label = label
        return statement

    def _parse_unlabelled(self) -> Stmt:
        token = self.peek()
        if self.keyword("skip"):
            self.advance()
            self.expect(";")
            return Skip()
        if self.keyword("call"):
            self.advance()
            callee = self.expect("IDENT").text
            args = self.parse_call_args()
            self.expect(";")
            return Call(callee=callee, args=args)
        if self.keyword("return"):
            self.advance()
            values: List[Expr] = []
            if not self.check(";"):
                values.append(self.parse_expression())
                while self.accept(","):
                    values.append(self.parse_expression())
            self.expect(";")
            return Return(values=values)
        if self.keyword("if"):
            return self.parse_if()
        if self.keyword("while"):
            return self.parse_while()
        if self.keyword("goto"):
            self.advance()
            target = self.expect("IDENT").text
            self.expect(";")
            return Goto(target=target)
        if self.keyword("assert"):
            self.advance()
            self.expect("(")
            condition = self.parse_expression()
            self.expect(")")
            self.expect(";")
            return Assert(condition=condition)
        if self.keyword("assume"):
            self.advance()
            self.expect("(")
            condition = self.parse_expression()
            self.expect(")")
            self.expect(";")
            return Assume(condition=condition)
        if self.check("IDENT"):
            return self.parse_assignment()
        raise ParseError(f"unexpected token {token.text!r}", token.line, token.column)

    def parse_if(self) -> If:
        self.expect_keyword("if")
        self.expect("(")
        condition = self.parse_expression()
        self.expect(")")
        self.expect_keyword("then")
        then_branch = self.parse_statements(terminators=("else", "fi"))
        else_branch: List[Stmt] = []
        if self.keyword("else"):
            self.advance()
            else_branch = self.parse_statements(terminators=("fi",))
        self.expect_keyword("fi")
        self.accept(";")
        return If(condition=condition, then_branch=then_branch, else_branch=else_branch)

    def parse_while(self) -> While:
        self.expect_keyword("while")
        self.expect("(")
        condition = self.parse_expression()
        self.expect(")")
        self.expect_keyword("do")
        body = self.parse_statements(terminators=("od",))
        self.expect_keyword("od")
        self.accept(";")
        return While(condition=condition, body=body)

    def parse_assignment(self) -> Stmt:
        targets = [self.expect("IDENT").text]
        while self.accept(","):
            targets.append(self.expect("IDENT").text)
        self.expect(":=")
        # Call-assign when the right-hand side is `proc(...)`.
        if self.check("IDENT") and self.peek(1).kind == "(":
            callee = self.advance().text
            args = self.parse_call_args()
            self.expect(";")
            return CallAssign(targets=targets, callee=callee, args=args)
        values = [self.parse_expression()]
        while self.accept(","):
            values.append(self.parse_expression())
        self.expect(";")
        if len(values) != len(targets):
            raise ParseError(
                f"assignment to {len(targets)} variables needs {len(targets)} expressions, "
                f"got {len(values)}"
            )
        return Assign(targets=targets, values=values)

    def parse_call_args(self) -> List[Expr]:
        self.expect("(")
        args: List[Expr] = []
        if not self.check(")"):
            args.append(self.parse_expression())
            while self.accept(","):
                args.append(self.parse_expression())
        self.expect(")")
        return args

    # -- expressions --------------------------------------------------------------
    # Precedence (tightest first): ! , & , ^ , | , == / !=
    def parse_expression(self) -> Expr:
        return self.parse_equality()

    def parse_equality(self) -> Expr:
        left = self.parse_or()
        while self.check("==") or self.check("!="):
            op = self.advance().kind
            right = self.parse_or()
            left = BinOp(op=op, left=left, right=right)
        return left

    def parse_or(self) -> Expr:
        left = self.parse_xor()
        while self.check("|"):
            self.advance()
            right = self.parse_xor()
            left = BinOp(op="|", left=left, right=right)
        return left

    def parse_xor(self) -> Expr:
        left = self.parse_and()
        while self.check("^"):
            self.advance()
            right = self.parse_and()
            left = BinOp(op="^", left=left, right=right)
        return left

    def parse_and(self) -> Expr:
        left = self.parse_unary()
        while self.check("&"):
            self.advance()
            right = self.parse_unary()
            left = BinOp(op="&", left=left, right=right)
        return left

    def parse_unary(self) -> Expr:
        if self.check("!"):
            self.advance()
            return NotE(self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.peek()
        if self.keyword("T"):
            self.advance()
            return Lit(True)
        if self.keyword("F"):
            self.advance()
            return Lit(False)
        if self.check("*"):
            self.advance()
            return Nondet()
        if self.check("("):
            self.advance()
            inner = self.parse_expression()
            self.expect(")")
            return inner
        if self.check("IDENT"):
            return VarRef(self.advance().text)
        raise ParseError(f"unexpected token {token.text!r} in expression", token.line, token.column)


def parse_program(source: str, name: str = "program") -> Program:
    """Parse a sequential Boolean program from source text."""
    return _Parser(tokenize(source)).parse_program(name=name)


def parse_concurrent_program(source: str, name: str = "program") -> ConcurrentProgram:
    """Parse a concurrent Boolean program (shared decls + thread blocks)."""
    return _Parser(tokenize(source)).parse_concurrent_program(name=name)


def parse_expression(source: str) -> Expr:
    """Parse a single Boolean expression (used in tests and tooling)."""
    parser = _Parser(tokenize(source))
    expression = parser.parse_expression()
    parser.expect("EOF")
    return expression
