"""Concurrent Boolean programs: a set of threads sharing global variables.

The paper extends the sequential syntax with a list of component programs
("threads") that share the globally declared variables; execution interleaves
the threads, one being active at a time (Section 5).  Here a concurrent
program is a list of named :class:`Thread` objects plus the shared globals.
Thread-private globals (the per-program globals of the paper) are supported
and are simply globals no other thread mentions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .ast import Program

__all__ = ["Thread", "ConcurrentProgram"]


@dataclass
class Thread:
    """One component program of a concurrent Boolean program."""

    name: str
    program: Program


@dataclass
class ConcurrentProgram:
    """A concurrent Boolean program: shared globals plus a list of threads.

    ``init`` gives the initial value of (some of) the shared globals; shared
    globals without an entry start with a nondeterministic value, like every
    other Boolean-program variable.
    """

    shared: List[str]
    threads: List[Thread]
    name: str = "program"
    init: Dict[str, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [thread.name for thread in self.threads]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate thread names: {names}")

    @property
    def num_threads(self) -> int:
        """Number of threads."""
        return len(self.threads)

    def thread(self, name: str) -> Thread:
        """Look up a thread by name."""
        for thread in self.threads:
            if thread.name == name:
                return thread
        raise KeyError(f"no thread named {name!r}")

    def all_globals(self) -> List[str]:
        """Shared globals followed by every thread's private globals.

        Thread-private global names are prefixed with the thread name to keep
        them distinct across threads.
        """
        names = list(self.shared)
        for thread in self.threads:
            for private in thread.program.globals:
                names.append(f"{thread.name}::{private}")
        return names

    def replicate(self, template: Thread, copies: int) -> "ConcurrentProgram":
        """Return a new program with ``copies`` instances of ``template`` added.

        Each copy gets a fresh thread name (``name_1``, ``name_2``, ...); the
        procedures themselves are shared (they contain no thread-identifying
        state), so re-using the same :class:`Program` object is safe.
        """
        threads = list(self.threads)
        for index in range(copies):
            threads.append(Thread(name=f"{template.name}_{index + 1}", program=template.program))
        return ConcurrentProgram(
            shared=list(self.shared), threads=threads, name=self.name, init=dict(self.init)
        )
