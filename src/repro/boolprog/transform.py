"""Program transformations: variable/call renaming and thread merging.

Two consumers need source-to-source rewrites:

* the concurrent encoder and the Lal–Reps sequentialisation merge the threads
  of a concurrent program into one sequential program whose procedures carry
  the thread name as a prefix (:func:`merge_threads`);
* generators and the sequentialisation rename variables inside statements and
  expressions (:func:`rename_in_expr`, :func:`rename_in_stmt`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .ast import (
    Assert,
    Assign,
    Assume,
    BinOp,
    Call,
    CallAssign,
    Expr,
    Goto,
    If,
    Lit,
    Nondet,
    NotE,
    Procedure,
    Program,
    Return,
    Skip,
    Stmt,
    VarRef,
    While,
)
from .concurrent import ConcurrentProgram

__all__ = ["rename_in_expr", "rename_in_stmt", "rename_procedure", "merge_threads"]


def rename_in_expr(expression: Expr, variables: Dict[str, str]) -> Expr:
    """Return a copy of the expression with variables renamed."""
    if isinstance(expression, (Lit, Nondet)):
        return expression
    if isinstance(expression, VarRef):
        return VarRef(variables.get(expression.name, expression.name))
    if isinstance(expression, NotE):
        return NotE(rename_in_expr(expression.operand, variables))
    if isinstance(expression, BinOp):
        return BinOp(
            op=expression.op,
            left=rename_in_expr(expression.left, variables),
            right=rename_in_expr(expression.right, variables),
        )
    raise TypeError(f"cannot rename in expression {expression!r}")


def rename_in_stmt(
    statement: Stmt,
    variables: Dict[str, str],
    calls: Dict[str, str],
) -> Stmt:
    """Return a copy of the statement with variables and callees renamed."""

    def expr(expression: Expr) -> Expr:
        return rename_in_expr(expression, variables)

    def name(variable: str) -> str:
        return variables.get(variable, variable)

    if isinstance(statement, Skip):
        result: Stmt = Skip()
    elif isinstance(statement, Assign):
        result = Assign(
            targets=[name(target) for target in statement.targets],
            values=[expr(value) for value in statement.values],
        )
    elif isinstance(statement, CallAssign):
        result = CallAssign(
            targets=[name(target) for target in statement.targets],
            callee=calls.get(statement.callee, statement.callee),
            args=[expr(argument) for argument in statement.args],
        )
    elif isinstance(statement, Call):
        result = Call(
            callee=calls.get(statement.callee, statement.callee),
            args=[expr(argument) for argument in statement.args],
        )
    elif isinstance(statement, Return):
        result = Return(values=[expr(value) for value in statement.values])
    elif isinstance(statement, If):
        result = If(
            condition=expr(statement.condition),
            then_branch=[rename_in_stmt(s, variables, calls) for s in statement.then_branch],
            else_branch=[rename_in_stmt(s, variables, calls) for s in statement.else_branch],
        )
    elif isinstance(statement, While):
        result = While(
            condition=expr(statement.condition),
            body=[rename_in_stmt(s, variables, calls) for s in statement.body],
        )
    elif isinstance(statement, Goto):
        result = Goto(target=statement.target)
    elif isinstance(statement, Assert):
        result = Assert(condition=expr(statement.condition))
    elif isinstance(statement, Assume):
        result = Assume(condition=expr(statement.condition))
    else:
        raise TypeError(f"cannot rename in statement {statement!r}")
    result.label = statement.label
    return result


def rename_procedure(
    procedure: Procedure,
    new_name: str,
    variables: Dict[str, str],
    calls: Dict[str, str],
) -> Procedure:
    """Return a renamed copy of a procedure (locals keep their names).

    A parameter or declared local that *shadows* a name in ``variables``
    binds every occurrence in the body to the local, so the map entry must
    not apply inside this procedure — renaming only the uses (but not the
    declaration) would silently rebind them to the outer variable.
    """
    shadowed = set(procedure.all_locals())
    scoped = {
        old: new for old, new in variables.items() if old not in shadowed
    }
    return Procedure(
        name=new_name,
        params=list(procedure.params),
        locals=list(procedure.locals),
        body=[rename_in_stmt(statement, scoped, calls) for statement in procedure.body],
        num_returns=procedure.num_returns,
    )


def merge_threads(program: ConcurrentProgram) -> Tuple[Program, List[str]]:
    """Merge a concurrent program's threads into one sequential program.

    Every procedure of thread ``T`` becomes ``T__<proc>``; thread-private
    globals become ``T__<name>``.  The returned pair is the merged program and
    the list of merged main-procedure names, one per thread (in thread order).
    The merged program's own ``main`` is the first thread's main, which is
    only relevant for consumers that need a syntactically complete sequential
    program.
    """
    globals_: List[str] = list(program.shared)
    procedures: Dict[str, Procedure] = {}
    thread_mains: List[str] = []
    for thread in program.threads:
        prefix = thread.name
        private_map = {name: f"{prefix}__{name}" for name in thread.program.globals}
        globals_.extend(private_map.values())
        call_map = {name: f"{prefix}__{name}" for name in thread.program.procedures}
        for proc_name, procedure in thread.program.procedures.items():
            merged_name = call_map[proc_name]
            procedures[merged_name] = rename_procedure(
                procedure, merged_name, private_map, call_map
            )
        thread_mains.append(call_map[thread.program.main])
    merged = Program(
        globals=globals_,
        procedures=procedures,
        main=thread_mains[0],
        name=f"{program.name}__merged",
    )
    return merged, thread_mains
