"""Control-flow graphs and program-counter labelling for Boolean programs.

Every procedure is compiled into a graph whose nodes are program counters and
whose edges are either *internal* (guarded simultaneous assignments, covering
``skip``, assignments, ``assume``, branch conditions, ``goto`` and ``return``)
or *call* edges (recording the callee, the actual arguments and the variables
assigned from the return values).  The conventions match the paper's encoding:

* program counter ``0`` is the procedure entry,
* a single designated *exit* program counter collects all returns and the
  fall-off-the-end of the body,
* a designated *error* program counter is the target of failed ``assert``
  statements,
* return values are threaded through dedicated ``__ret_i`` local slots written
  by ``return`` statements and read by the caller's return edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .ast import (
    Assert,
    Assign,
    Assume,
    Call,
    CallAssign,
    Expr,
    Goto,
    If,
    Lit,
    NotE,
    Procedure,
    Program,
    Return,
    Skip,
    Stmt,
    While,
)
from .errors import StaticError

__all__ = [
    "InternalEdge",
    "CallEdge",
    "ProcedureCfg",
    "ProgramCfg",
    "build_cfg",
    "RETURN_SLOT_PREFIX",
]

#: Prefix of the synthetic local slots that carry return values.
RETURN_SLOT_PREFIX = "__ret"

#: Reserved program counters (same in every procedure).
ENTRY_PC = 0
EXIT_PC = 1
ERROR_PC = 2


@dataclass
class InternalEdge:
    """A guarded simultaneous assignment between two program counters."""

    source: int
    target: int
    guard: Optional[Expr] = None
    assigns: Dict[str, Expr] = field(default_factory=dict)


@dataclass
class CallEdge:
    """A procedure call: control transfers to ``callee`` and later resumes."""

    source: int
    return_pc: int
    callee: str
    args: List[Expr] = field(default_factory=list)
    targets: List[str] = field(default_factory=list)


@dataclass
class ProcedureCfg:
    """The control-flow graph of one procedure."""

    name: str
    entry: int
    exit: int
    error: int
    num_pcs: int
    internal_edges: List[InternalEdge]
    call_edges: List[CallEdge]
    labels: Dict[str, int]
    slot_of: Dict[str, int]
    has_asserts: bool

    def label_pc(self, label: str) -> int:
        """Program counter of a statement label."""
        try:
            return self.labels[label]
        except KeyError:
            raise KeyError(f"procedure {self.name!r} has no label {label!r}") from None


@dataclass
class ProgramCfg:
    """Control-flow graphs and numbering for a whole program."""

    program: Program
    procedures: Dict[str, ProcedureCfg]
    module_index: Dict[str, int]
    max_pc: int
    max_slots: int

    def module_of(self, name: str) -> int:
        """Numeric module index of a procedure name."""
        return self.module_index[name]

    def procedure_cfg(self, name: str) -> ProcedureCfg:
        """CFG of a procedure by name."""
        return self.procedures[name]

    def error_locations(self) -> List[Tuple[int, int]]:
        """(module, pc) pairs of the error locations of procedures with asserts."""
        return [
            (self.module_index[name], cfg.error)
            for name, cfg in self.procedures.items()
            if cfg.has_asserts
        ]

    def label_location(self, procedure: str, label: str) -> Tuple[int, int]:
        """(module, pc) of a labelled statement."""
        cfg = self.procedures[procedure]
        return self.module_index[procedure], cfg.label_pc(label)


class _ProcedureBuilder:
    def __init__(self, procedure: Procedure) -> None:
        self.procedure = procedure
        self.next_pc = 3  # 0 = entry, 1 = exit, 2 = error
        self.internal_edges: List[InternalEdge] = []
        self.call_edges: List[CallEdge] = []
        self.labels: Dict[str, int] = {}
        self.pending_gotos: List[Tuple[int, str]] = []
        self.has_asserts = False

    def new_pc(self) -> int:
        pc = self.next_pc
        self.next_pc += 1
        return pc

    def internal(
        self,
        source: int,
        target: int,
        guard: Optional[Expr] = None,
        assigns: Optional[Dict[str, Expr]] = None,
    ) -> None:
        self.internal_edges.append(
            InternalEdge(source=source, target=target, guard=guard, assigns=dict(assigns or {}))
        )

    # -- statement compilation -------------------------------------------
    def build(self) -> ProcedureCfg:
        procedure = self.procedure
        body_exit = self.block(procedure.body, ENTRY_PC)
        # Falling off the end of the body reaches the exit location.
        self.internal(body_exit, EXIT_PC)
        for source, label in self.pending_gotos:
            if label not in self.labels:
                raise StaticError(
                    f"procedure {procedure.name!r}: goto target {label!r} is not defined"
                )
            self.internal(source, self.labels[label])
        slot_of = self._slot_map()
        return ProcedureCfg(
            name=procedure.name,
            entry=ENTRY_PC,
            exit=EXIT_PC,
            error=ERROR_PC,
            num_pcs=self.next_pc,
            internal_edges=self.internal_edges,
            call_edges=self.call_edges,
            labels=self.labels,
            slot_of=slot_of,
            has_asserts=self.has_asserts,
        )

    def _slot_map(self) -> Dict[str, int]:
        slot_of: Dict[str, int] = {}
        for name in self.procedure.all_locals():
            slot_of[name] = len(slot_of)
        for index in range(self.procedure.num_returns):
            slot_of[f"{RETURN_SLOT_PREFIX}{index}"] = len(slot_of)
        return slot_of

    def block(self, statements: List[Stmt], entry: int) -> int:
        current = entry
        for statement in statements:
            current = self.statement(statement, current)
        return current

    def statement(self, statement: Stmt, entry: int) -> int:
        if statement.label is not None:
            if statement.label in self.labels:
                raise StaticError(
                    f"procedure {self.procedure.name!r}: duplicate label {statement.label!r}"
                )
            self.labels[statement.label] = entry
        if isinstance(statement, Skip):
            exit_pc = self.new_pc()
            self.internal(entry, exit_pc)
            return exit_pc
        if isinstance(statement, Assign):
            exit_pc = self.new_pc()
            self.internal(entry, exit_pc, assigns=dict(zip(statement.targets, statement.values)))
            return exit_pc
        if isinstance(statement, Assume):
            exit_pc = self.new_pc()
            self.internal(entry, exit_pc, guard=statement.condition)
            return exit_pc
        if isinstance(statement, Assert):
            self.has_asserts = True
            exit_pc = self.new_pc()
            self.internal(entry, exit_pc, guard=statement.condition)
            self.internal(entry, ERROR_PC, guard=NotE(statement.condition))
            return exit_pc
        if isinstance(statement, Goto):
            self.pending_gotos.append((entry, statement.target))
            return self.new_pc()  # fall-through location (unreachable)
        if isinstance(statement, Return):
            assigns = {
                f"{RETURN_SLOT_PREFIX}{index}": value
                for index, value in enumerate(statement.values)
            }
            self.internal(entry, EXIT_PC, assigns=assigns)
            return self.new_pc()  # fall-through location (unreachable)
        if isinstance(statement, (Call, CallAssign)):
            exit_pc = self.new_pc()
            targets = statement.targets if isinstance(statement, CallAssign) else []
            self.call_edges.append(
                CallEdge(
                    source=entry,
                    return_pc=exit_pc,
                    callee=statement.callee,
                    args=list(statement.args),
                    targets=list(targets),
                )
            )
            return exit_pc
        if isinstance(statement, If):
            join = self.new_pc()
            then_entry = self.new_pc()
            self.internal(entry, then_entry, guard=statement.condition)
            then_exit = self.block(statement.then_branch, then_entry)
            self.internal(then_exit, join)
            if statement.else_branch:
                else_entry = self.new_pc()
                self.internal(entry, else_entry, guard=NotE(statement.condition))
                else_exit = self.block(statement.else_branch, else_entry)
                self.internal(else_exit, join)
            else:
                self.internal(entry, join, guard=NotE(statement.condition))
            return join
        if isinstance(statement, While):
            body_entry = self.new_pc()
            self.internal(entry, body_entry, guard=statement.condition)
            body_exit = self.block(statement.body, body_entry)
            self.internal(body_exit, entry)
            exit_pc = self.new_pc()
            self.internal(entry, exit_pc, guard=NotE(statement.condition))
            return exit_pc
        raise StaticError(f"cannot compile statement {statement!r}")


def build_cfg(program: Program) -> ProgramCfg:
    """Build the control-flow graphs and numbering for a whole program."""
    procedures: Dict[str, ProcedureCfg] = {}
    for name, procedure in program.procedures.items():
        procedures[name] = _ProcedureBuilder(procedure).build()
    module_index = {name: index for index, name in enumerate(program.procedures)}
    max_pc = max(cfg.num_pcs for cfg in procedures.values()) if procedures else 1
    max_slots = max((len(cfg.slot_of) for cfg in procedures.values()), default=0)
    return ProgramCfg(
        program=program,
        procedures=procedures,
        module_index=module_index,
        max_pc=max_pc,
        max_slots=max_slots,
    )
