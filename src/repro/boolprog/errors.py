"""Errors raised by the Boolean-program front end."""

from __future__ import annotations

from typing import Optional

__all__ = ["BoolProgError", "ParseError", "StaticError"]


class BoolProgError(Exception):
    """Base class for Boolean-program front-end errors."""


class ParseError(BoolProgError):
    """A syntax error, with an optional source position."""

    def __init__(self, message: str, line: Optional[int] = None, column: Optional[int] = None):
        location = "" if line is None else f" at line {line}" + (
            "" if column is None else f", column {column}"
        )
        super().__init__(message + location)
        self.line = line
        self.column = column


class StaticError(BoolProgError):
    """A static-semantics error (undeclared variable, arity mismatch, ...)."""
