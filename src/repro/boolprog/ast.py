"""Abstract syntax of recursive Boolean programs (Section 2 of the paper).

A program is a list of global variable declarations followed by procedures;
every variable ranges over the Booleans, expressions may be nondeterministic
(``*``), procedures take call-by-value parameters and may return multiple
values.  The syntax here also includes the small extensions needed by the
benchmark suites: labels, ``goto``, ``assert`` and ``assume``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Expr",
    "Lit",
    "Nondet",
    "VarRef",
    "NotE",
    "BinOp",
    "Stmt",
    "Skip",
    "Assign",
    "CallAssign",
    "Call",
    "Return",
    "If",
    "While",
    "Goto",
    "Assert",
    "Assume",
    "Procedure",
    "Program",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
class Expr:
    """Base class of Boolean expressions."""

    def variables(self) -> set:
        """Names of the program variables read by this expression."""
        raise NotImplementedError


@dataclass(frozen=True)
class Lit(Expr):
    """A Boolean literal (``T`` or ``F``)."""

    value: bool

    def variables(self) -> set:
        return set()

    def __str__(self) -> str:
        return "T" if self.value else "F"


@dataclass(frozen=True)
class Nondet(Expr):
    """The nondeterministic expression ``*``."""

    def variables(self) -> set:
        return set()

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class VarRef(Expr):
    """A reference to a global, local or formal-parameter variable."""

    name: str

    def variables(self) -> set:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class NotE(Expr):
    """Negation."""

    operand: Expr

    def variables(self) -> set:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"!{self.operand}"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary Boolean operation: ``&``, ``|``, ``^``, ``==`` or ``!=``."""

    op: str
    left: Expr
    right: Expr

    OPS = ("&", "|", "^", "==", "!=")

    def __post_init__(self) -> None:
        if self.op not in self.OPS:
            raise ValueError(f"unknown operator {self.op!r}")

    def variables(self) -> set:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------
class Stmt:
    """Base class of statements.  Every statement may carry a label."""

    label: Optional[str] = None


@dataclass
class Skip(Stmt):
    """``skip;``"""

    label: Optional[str] = None


@dataclass
class Assign(Stmt):
    """Simultaneous assignment ``x1, ..., xm := e1, ..., em;``"""

    targets: List[str]
    values: List[Expr]
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.targets) != len(self.values):
            raise ValueError("assignment arity mismatch")
        if len(set(self.targets)) != len(self.targets):
            raise ValueError("assignment targets must be distinct")


@dataclass
class CallAssign(Stmt):
    """Call with return values: ``x1, ..., xk := f(e1, ..., eh);``"""

    targets: List[str]
    callee: str
    args: List[Expr]
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if len(set(self.targets)) != len(self.targets):
            raise ValueError("call targets must be distinct")


@dataclass
class Call(Stmt):
    """Plain call ``call f(e1, ..., eh);`` (no return values)."""

    callee: str
    args: List[Expr]
    label: Optional[str] = None


@dataclass
class Return(Stmt):
    """``return;`` or ``return e1, ..., ek;``"""

    values: List[Expr]
    label: Optional[str] = None


@dataclass
class If(Stmt):
    """``if (e) then ... else ... fi`` (else branch optional)."""

    condition: Expr
    then_branch: List[Stmt]
    else_branch: List[Stmt]
    label: Optional[str] = None


@dataclass
class While(Stmt):
    """``while (e) do ... od``"""

    condition: Expr
    body: List[Stmt]
    label: Optional[str] = None


@dataclass
class Goto(Stmt):
    """``goto L;``"""

    target: str
    label: Optional[str] = None


@dataclass
class Assert(Stmt):
    """``assert(e);`` — violating the assertion reaches the error location."""

    condition: Expr
    label: Optional[str] = None


@dataclass
class Assume(Stmt):
    """``assume(e);`` — execution continues only when ``e`` holds."""

    condition: Expr
    label: Optional[str] = None


# ---------------------------------------------------------------------------
# Procedures and programs
# ---------------------------------------------------------------------------
@dataclass
class Procedure:
    """A procedure ``f(params) begin decl locals; body end``.

    ``num_returns`` is the number of values every ``return`` in the body must
    produce (0 when the procedure returns nothing).
    """

    name: str
    params: List[str]
    locals: List[str]
    body: List[Stmt]
    num_returns: int = 0

    def all_locals(self) -> List[str]:
        """Formal parameters followed by declared locals (no return slots)."""
        return list(self.params) + list(self.locals)


@dataclass
class Program:
    """A sequential recursive Boolean program."""

    globals: List[str]
    procedures: Dict[str, Procedure]
    main: str = "main"
    name: str = "program"

    def procedure(self, name: str) -> Procedure:
        """Look up a procedure by name."""
        try:
            return self.procedures[name]
        except KeyError:
            raise KeyError(f"program has no procedure {name!r}") from None

    def procedure_names(self) -> List[str]:
        """Procedure names in declaration order."""
        return list(self.procedures)

    def max_locals(self) -> int:
        """Largest number of local slots needed by any procedure.

        Slots cover formal parameters, declared locals and return-value
        registers (``__ret_i``).
        """
        best = 0
        for proc in self.procedures.values():
            best = max(best, len(proc.all_locals()) + proc.num_returns)
        return best
