"""Resource envelopes for analysis queries.

:class:`ResourceLimits` is the single spec object threaded from the CLI
through :func:`repro.algorithms.engine.run_sequential`, the batch scheduler
(:mod:`repro.parallel.shards`) and :class:`repro.api.session.AnalysisSession`
down to the BDD kernel, which enforces it cooperatively (see
:meth:`repro.bdd.manager.BddManager.set_deadline` /
:meth:`~repro.bdd.manager.BddManager.set_node_budget`).

The object is a frozen, hashable, picklable dataclass so it can ride inside
a :class:`~repro.parallel.shards.BatchQuery` across a process-pool boundary
and participate in shard group keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ResourceLimits", "DEGRADATION_LADDER"]

#: Cheaper-algorithm fallback used when ``ResourceLimits.degrade`` is set:
#: the entry/forward variants retry as the plain summary algorithm (smaller
#: interpretation, no Relevant/opt machinery).  The summary algorithm has no
#: cheaper sibling, so exhaustion there is final.
DEGRADATION_LADDER = {
    "ef-opt": "summary",
    "ef": "summary",
}


@dataclass(frozen=True)
class ResourceLimits:
    """Per-query resource envelope.

    Attributes
    ----------
    deadline_seconds:
        Wall-clock budget per query.  Armed on the owning manager when the
        query starts and checked at allocation checkpoints and GC safe
        points; expiry raises :class:`repro.errors.AnalysisTimeout`.  A value
        of ``0`` is a valid (immediately expiring) deadline; ``None`` means
        unbounded.
    node_budget:
        Upper bound on *live* BDD nodes in the query's manager.  The kernel
        pulls its GC trigger below the budget so a sweep gets a chance to
        reclaim before the hard bound; crossing it raises
        :class:`repro.errors.NodeBudgetExceeded`.
    max_iterations:
        Outer fixed-point iteration budget.  Overrides the engine default
        when set; exhaustion raises
        :class:`repro.fixedpoint.evaluator.EvaluationError` (a
        ``ResourceExhausted`` subclass).
    degrade:
        When True, a query that exhausts its envelope is retried once with
        the cheaper algorithm from :data:`DEGRADATION_LADDER` (same limits);
        a successful retry records the original algorithm in
        ``ReachabilityResult.degraded_from``.
    """

    deadline_seconds: Optional[float] = None
    node_budget: Optional[int] = None
    max_iterations: Optional[int] = None
    degrade: bool = False

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise ValueError("deadline_seconds must be >= 0")
        if self.node_budget is not None and self.node_budget <= 0:
            raise ValueError("node_budget must be positive")
        if self.max_iterations is not None and self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")

    @property
    def bounded(self) -> bool:
        """True when at least one budget is set."""
        return (
            self.deadline_seconds is not None
            or self.node_budget is not None
            or self.max_iterations is not None
        )
