"""Sharded multi-process evaluation over per-shard BDD managers.

Each shard of a batch owns a complete private solver stack (manager, backend,
encoder); see :mod:`repro.parallel.shards` for the scheduler and the
ownership contract, and :mod:`repro.parallel.merge` for the batch report.
The high-level entry point is :func:`repro.algorithms.run_batch`.
"""

from .merge import BatchReport, merge_shards
from .shards import (
    BatchQuery,
    ShardResult,
    group_queries,
    run_shard,
    run_shard_group,
    run_shards,
    run_shards_snapshot,
)

__all__ = [
    "BatchQuery",
    "BatchReport",
    "ShardResult",
    "group_queries",
    "merge_shards",
    "run_shard",
    "run_shard_group",
    "run_shards",
    "run_shards_snapshot",
]
