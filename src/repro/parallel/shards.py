"""Process-pool shard scheduler for batches of reachability queries.

The paper's Figure 2/3 experiments are embarrassingly parallel: dozens of
independent reachability checks (program x target x algorithm), each owning
its own MUCKE-style solver instance.  Since the signed-edge representation
and the GC safe-point protocol are *manager-local* (see
:mod:`repro.bdd.manager`), every shard can construct a private
:class:`~repro.bdd.BddManager` + :class:`~repro.fixedpoint.symbolic.SymbolicBackend`
with no shared state whatsoever — which makes process-level sharding the
natural parallelism unit in CPython (threads would fight the GIL for zero
gain on this pure-Python kernel).

Ownership contract
------------------
* A :class:`BatchQuery` is plain picklable data: the parsed program (or its
  source text), a friendly target spec, and algorithm/engine options.
* :func:`run_shard` is the *worker entry point*.  It runs in the worker
  process, builds the entire solver stack from scratch, and returns a
  :class:`ShardResult` whose :class:`~repro.algorithms.ReachabilityResult`
  carries the shard's own kernel/GC statistics snapshot.  No BDD edge, plan,
  manager or backend ever crosses a process boundary — only programs,
  targets and result records do.
* :func:`run_shards` fans a batch out over a process pool (``jobs`` workers)
  and preserves query order in the returned list.  With ``jobs <= 1``, or
  when the batch cannot be pickled, or when the platform refuses to start a
  pool, it degrades to an in-process sequential loop with identical
  semantics (same results, same ordering, errors captured the same way).

Interpretation exchange (per-shard session reuse)
-------------------------------------------------
Queries that target *the same program* with the same algorithm no longer
each rebuild the solver stack: :func:`run_shards` groups them (see
``group_by_program``) and ships each multi-query group to
:func:`run_shard_group`, which opens ONE
:class:`repro.api.AnalysisSession` in the worker, solves the
target-independent summary fixed point once and answers every target of
the group as a query post-pass over the retained interpretations.  This is
how fixed-point summaries are shared across queries: *within* a shard,
through the session; never *across* process boundaries — the ownership
contract above is unchanged, and ``ShardResult.reused_solve`` records
which queries rode an already-solved session.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..algorithms.result import ReachabilityResult
from ..analysis.passes import normalise_slice_targets
from ..errors import AnalysisTimeout, ResourceExhausted
from ..limits import DEGRADATION_LADDER, ResourceLimits
from ..testing import faults

__all__ = [
    "BatchQuery",
    "ShardResult",
    "run_shard",
    "run_shard_group",
    "run_shards",
    "run_shards_snapshot",
]


@dataclass
class BatchQuery:
    """One reachability query of a batch, as plain picklable data.

    Attributes
    ----------
    name:
        Row label in batch reports (e.g. ``"Driver 3 handlers (pos)"``).
    program:
        A parsed :class:`~repro.boolprog.Program` /
        :class:`~repro.boolprog.ConcurrentProgram`, or the program source
        text (parsed in the worker).
    target:
        A friendly target spec: ``"error"``, ``"proc:label"``
        (``"thread:proc:label"`` for concurrent programs), a list of such
        strings, or explicit ``(module, pc)`` pairs.
    algorithm:
        Sequential algorithm name (``"summary"``, ``"ef"``, ``"ef-opt"``);
        ignored when ``concurrent`` is set.
    concurrent:
        Use the bounded context-switching engine on a concurrent program.
    context_switches:
        Context-switch bound for the concurrent engine.
    early_stop:
        Stop the fixed point as soon as the target is known reachable.
    expected:
        Optional known verdict; merged reports flag mismatches.
    limits:
        Optional :class:`~repro.limits.ResourceLimits` envelope enforced in
        the worker (deadline, node budget, iteration budget, degradation
        ladder).  Part of the session-sharing group key: queries under
        different envelopes never share a session.
    optimize:
        Static pre-analysis level (0–2, :mod:`repro.analysis`) applied in
        the worker before encoding.  Part of the group key — sessions at
        different levels compile different programs.  A group slices
        (level 2) towards the union of its string target specs; any
        numeric ``(module, pc)`` target in the group caps the level at 1.
        Ignored for concurrent queries.
    witness:
        Attach a replay-validated counterexample trace to every reachable
        verdict (``result.witness``, sequential queries only).  Not part of
        the group key — extraction is a post-pass on the shared session's
        retained summary; a replay failure records the typed error under
        ``details["witness_error"]`` without changing the verdict.
    """

    name: str
    program: Union[str, object]
    target: Union[str, Sequence[str], Sequence[Tuple[int, int]]] = "error"
    algorithm: str = "ef-opt"
    concurrent: bool = False
    context_switches: int = 2
    early_stop: bool = True
    expected: Optional[bool] = None
    limits: Optional[ResourceLimits] = None
    optimize: int = 0
    witness: bool = False


@dataclass
class ShardResult:
    """Outcome of one shard: the query's result plus worker-side telemetry.

    ``result`` is ``None`` exactly when ``error`` is set; ``error`` carries
    the worker-side exception rendered as ``"ExcType: message"`` so a batch
    survives individual shard failures.  ``pid`` identifies the worker
    process that ran the shard (the driver process itself in sequential
    mode) and ``elapsed_seconds`` is the shard-local wall clock, which a
    merged report compares against the batch wall clock to compute speedup.
    ``reused_solve`` is True when the query was answered as a post-pass over
    a session's already-solved fixed point instead of its own evaluation
    (see :func:`run_shard_group`); the report's ``queries_per_solve``
    aggregates it.

    ``status`` is the failure/recovery taxonomy the batch layer reports:

    ``"ok"``
        Clean success on the first attempt.
    ``"retried"``
        Success, but only after the scheduler rebuilt a broken pool and
        re-ran this shard (``retries`` counts the extra attempts).
    ``"timeout"``
        The query hit its wall-clock envelope — either the worker raised
        :class:`~repro.errors.AnalysisTimeout` or the driver-side
        ``shard_timeout`` expired.
    ``"resource"``
        Any other :class:`~repro.errors.ResourceExhausted` (node budget,
        iteration budget, a baseline's exploration budget); ``error_detail``
        carries the consumed-vs-budget record.
    ``"crashed"``
        The worker process died or raised an unexpected exception;
        repeatedly-crashing shards are quarantined with this status.
    """

    name: str
    result: Optional[ReachabilityResult] = None
    error: Optional[str] = None
    pid: int = 0
    elapsed_seconds: float = 0.0
    expected: Optional[bool] = None
    reused_solve: bool = False
    status: str = "ok"
    retries: int = 0
    error_detail: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def mismatch(self) -> bool:
        """True when an expected verdict was given and the shard disagrees."""
        return (
            self.ok
            and self.expected is not None
            and self.result is not None
            and self.result.reachable != self.expected
        )

    def live_nodes(self) -> Optional[int]:
        """The shard kernel's live BDD node count, or None."""
        return self.result.live_nodes() if self.result is not None else None

    def gc_collections(self) -> Optional[int]:
        """The shard kernel's collection count, or None."""
        if self.result is None:
            return None
        gc = self.result.gc_stats()
        if not gc:
            return 0
        count = gc.get("collections")
        return count if isinstance(count, int) else 0


def _classify(exc: BaseException) -> Tuple[str, Optional[Dict[str, object]]]:
    """Map a worker-side exception to the ShardResult status taxonomy."""
    if isinstance(exc, AnalysisTimeout):
        return "timeout", exc.detail()
    if isinstance(exc, ResourceExhausted):
        return "resource", exc.detail()
    return "crashed", None


def _failure_shard(query: BatchQuery, exc: BaseException, elapsed: float) -> ShardResult:
    """A structured error result for one query (status + budget detail)."""
    status, detail = _classify(exc)
    return ShardResult(
        name=query.name,
        error=f"{type(exc).__name__}: {exc}",
        pid=os.getpid(),
        elapsed_seconds=elapsed,
        expected=query.expected,
        status=status,
        error_detail=detail,
    )


def _group_optimize(
    queries: Sequence[BatchQuery],
) -> Tuple[int, Optional[Tuple[str, ...]]]:
    """The (level, slice_targets) a shared session for this group may use.

    Level 2 slices towards the union of the group's string target specs —
    every query of the group is then inside the sliced set, so the shared
    session's slice guard admits all of them.  A numeric ``(module, pc)``
    target anywhere in the group pins the raw pc numbering and caps the
    level at 1 (the pc-stable pipeline).
    """
    level = int(queries[0].optimize)
    if level < 2:
        return level, None
    specs: set = set()
    for query in queries:
        normalised = normalise_slice_targets(query.target)
        if normalised is None:
            return min(level, 1), None
        specs.update(normalised)
    return level, tuple(sorted(specs))


def _session_check(session, query: BatchQuery):
    """One session query with the optional degradation ladder applied."""
    try:
        result = session.check(
            query.target, algorithm=query.algorithm, early_stop=query.early_stop
        )
        algorithm = query.algorithm
    except ResourceExhausted:
        fallback = (
            DEGRADATION_LADDER.get(query.algorithm)
            if query.limits is not None and query.limits.degrade
            else None
        )
        if fallback is None:
            raise
        result = session.check(
            query.target, algorithm=fallback, early_stop=query.early_stop
        )
        result.degraded_from = query.algorithm
        algorithm = fallback
    if query.witness and result.reachable:
        _attach_witness(result, session, query.target, algorithm)
    return result


def _attach_witness(result, session, target, algorithm: str) -> None:
    """Post-pass witness extraction; never lets a failure change the verdict."""
    from ..witness import WitnessError

    try:
        trace = session.explain(target, algorithm=algorithm)
    except WitnessError as exc:
        result.details["witness_error"] = f"{type(exc).__name__}: {exc}"
    else:
        result.witness = trace.to_dict() if trace is not None else None


def run_shard(query: BatchQuery) -> ShardResult:
    """Worker entry point: run one query with a private solver stack.

    Imports the front end lazily (workers under ``spawn`` re-import this
    module) and builds a fresh ``SymbolicBackend``/``BddManager`` pair via
    the engine — nothing is shared with the driver process or any sibling
    shard, so the per-shard ``result.stats`` snapshot is exactly the kernel
    activity of this one query.  A :class:`~repro.errors.ResourceExhausted`
    failure is reported with status ``timeout``/``resource`` and its
    consumed-vs-budget detail; anything else is ``crashed``.
    """
    from ..frontends.getafix import check_concurrent_reachability, check_reachability

    started = time.perf_counter()
    try:
        if query.concurrent:
            result = check_concurrent_reachability(
                query.program,
                target=query.target,
                context_switches=query.context_switches,
                early_stop=query.early_stop,
                limits=query.limits,
            )
        else:
            result = check_reachability(
                query.program,
                target=query.target,
                algorithm=query.algorithm,
                early_stop=query.early_stop,
                limits=query.limits,
                optimize=query.optimize,
                witness=query.witness,
            )
        return ShardResult(
            name=query.name,
            result=result,
            pid=os.getpid(),
            elapsed_seconds=time.perf_counter() - started,
            expected=query.expected,
        )
    except Exception as exc:  # noqa: BLE001 — a shard failure must not kill the batch
        return _failure_shard(query, exc, time.perf_counter() - started)


def run_shard_group(queries: Sequence[BatchQuery]) -> List[ShardResult]:
    """Worker entry point for a group of queries on ONE program.

    A singleton group degrades to :func:`run_shard` (no session overhead
    for one-off queries).  Larger groups open a single
    :class:`repro.api.AnalysisSession`, which validates, builds the CFG,
    encodes the templates and solves the summary fixed point once; every
    query of the group is then answered against the retained
    interpretations.  The first result of the group carries the solve
    (``reused_solve=False``); the rest are post-passes
    (``reused_solve=True``).  A session-construction failure (parse/type
    error) fails every query of the group the same way each would have
    failed alone.

    Kernel-statistics caveat: grouped queries share one manager, and a
    session's stats snapshots are cumulative, so the ``live``/``gc``
    numbers of a grouped row describe the session *up to and including*
    that query — not that query alone, as on singleton shards.  Summing
    those columns across the rows of one group double-counts.
    """
    queries = list(queries)
    try:
        # Fault-injection hook: may sleep, raise, or (in a pool worker only)
        # kill the process, exercising the scheduler's recovery paths.
        faults.on_shard([query.name for query in queries])
    except Exception as exc:  # noqa: BLE001 — an injected raise fails the group cleanly
        return [_failure_shard(query, exc, 0.0) for query in queries]
    if len(queries) == 1:
        return [run_shard(queries[0])]
    from ..api.session import SessionSpec

    head = queries[0]
    started = time.perf_counter()
    try:
        level, slice_specs = _group_optimize(queries)
        session = SessionSpec(
            program=head.program,
            default_algorithm=head.algorithm,
            limits=head.limits,
            optimize=level,
            slice_targets=slice_specs,
        ).open()
    except Exception as exc:  # noqa: BLE001 — group setup failure hits every query
        elapsed = time.perf_counter() - started
        return [
            _failure_shard(query, exc, elapsed if index == 0 else 0.0)
            for index, query in enumerate(queries)
        ]
    # Session construction (parse/validate/CFG) is shared cost the singleton
    # path would have timed inside run_shard; charge it — like the solve —
    # to the group's first query so shard_seconds/speedup stay honest.
    setup_seconds = time.perf_counter() - started
    results: List[ShardResult] = []
    try:
        # Solve the target-independent summary once up front so EVERY query
        # of the group — not just those after the first full fixed point —
        # is a post-pass.  The first query carries the solve in its clock,
        # the first *successful* query carries its attribution
        # (reused_solve=False: it "paid" for the solve); failure to
        # pre-solve (iteration budget, target-dependent system) degrades to
        # the lazy per-query behaviour.
        solve_seconds = 0.0
        presolved = False
        try:
            solve_started = time.perf_counter()
            session.solve(head.algorithm)
            solve_seconds = time.perf_counter() - solve_started
            presolved = True
        except Exception:  # noqa: BLE001 — lazy checks may still succeed/report
            pass
        solve_attributed = not presolved
        first_query_overhead = setup_seconds + solve_seconds
        for index, query in enumerate(queries):
            query_started = time.perf_counter()
            try:
                result = _session_check(session, query)
                reused = bool(result.details.get("reused_solve"))
                if not solve_attributed:
                    reused = False
                    solve_attributed = True
                # Keep the two exposed reuse flags consistent: the result's
                # details must agree with the shard-level attribution.
                result.details["reused_solve"] = reused
                results.append(
                    ShardResult(
                        name=query.name,
                        result=result,
                        pid=os.getpid(),
                        elapsed_seconds=time.perf_counter()
                        - query_started
                        + (first_query_overhead if index == 0 else 0.0),
                        expected=query.expected,
                        reused_solve=reused,
                    )
                )
            except Exception as exc:  # noqa: BLE001 — one bad target, not the group
                # Index 0 still carries the setup/solve wall time so the
                # report's shard_seconds/speedup accounting does not lose it
                # when the first query errors.
                results.append(
                    _failure_shard(
                        query,
                        exc,
                        time.perf_counter()
                        - query_started
                        + (first_query_overhead if index == 0 else 0.0),
                    )
                )
    finally:
        session.close()
    return results


def _snapshot_pool_entry(
    handle, queries: List[BatchQuery], fault_plan: Optional[faults.FaultPlan] = None
) -> List[ShardResult]:
    """Pool worker entry point for the snapshot fan-out path.

    Attaches to the driver's frozen solved table copy-free
    (:meth:`repro.api.AnalysisSession.from_snapshot`) and answers its chunk
    of targets as query post-passes — no fixed-point iteration runs in any
    worker.  The attachment is read-only shared memory, so every worker of
    the fan-out shares ONE copy of the solved node table.
    """
    if fault_plan is not None:
        faults.install(fault_plan, worker=True)
    try:
        faults.on_shard([query.name for query in queries])
    except Exception as exc:  # noqa: BLE001 — an injected raise fails the chunk cleanly
        return [_failure_shard(query, exc, 0.0) for query in queries]
    from ..api.session import AnalysisSession

    started = time.perf_counter()
    try:
        session = AnalysisSession.from_snapshot(handle, limits=queries[0].limits)
    except Exception as exc:  # noqa: BLE001 — a vanished/corrupt segment fails the chunk
        elapsed = time.perf_counter() - started
        return [
            _failure_shard(query, exc, elapsed if index == 0 else 0.0)
            for index, query in enumerate(queries)
        ]
    results: List[ShardResult] = []
    try:
        for query in queries:
            query_started = time.perf_counter()
            try:
                result = _session_check(session, query)
                results.append(
                    ShardResult(
                        name=query.name,
                        result=result,
                        pid=os.getpid(),
                        elapsed_seconds=time.perf_counter() - query_started,
                        expected=query.expected,
                        reused_solve=True,
                    )
                )
            except Exception as exc:  # noqa: BLE001 — one bad target, not the chunk
                results.append(
                    _failure_shard(query, exc, time.perf_counter() - query_started)
                )
    finally:
        session.close()
    return results


def _snapshot_eligible(queries: Sequence[BatchQuery]) -> Optional[str]:
    """None when the batch can ride one snapshot; else the blocking reason."""
    head = queries[0]
    if head.concurrent:
        return "concurrent queries have no session/snapshot support"
    key = _group_key(head, 0)
    for index, query in enumerate(queries[1:], start=1):
        if query.concurrent or _group_key(query, index) != key:
            return "queries span multiple programs/algorithms/envelopes"
    return None


def _chunk(indices: Sequence[int], parts: int) -> List[List[int]]:
    """Split indices into at most ``parts`` contiguous, near-equal chunks."""
    parts = max(1, min(parts, len(indices)))
    size, extra = divmod(len(indices), parts)
    chunks: List[List[int]] = []
    start = 0
    for part in range(parts):
        stop = start + size + (1 if part < extra else 0)
        chunks.append(list(indices[start:stop]))
        start = stop
    return chunks


def run_shards_snapshot(
    queries: Sequence[BatchQuery],
    jobs: int = 2,
    start_method: Optional[str] = None,
    shard_timeout: Optional[float] = None,
    fault_plan: Optional[faults.FaultPlan] = None,
) -> Tuple[List[ShardResult], str, Optional[str]]:
    """Fan one program's targets out over workers sharing ONE solved table.

    The classic grouped path (:func:`run_shards`) collapses a same-program
    batch onto one worker: the session — manager, plans, retained fixed
    point — cannot cross a process boundary, so neither can the
    parallelism.  The snapshot path decouples the two: the driver solves
    the summary fixed point once, freezes it into a shared-memory segment
    (:meth:`repro.api.AnalysisSession.freeze`), and every worker attaches
    copy-free to run its chunk of targets as post-passes.  Verdicts are
    identical to the classic path by the overlay's canonicity contract.

    Fault tolerance: a chunk whose worker dies (or times out against
    ``shard_timeout``) is re-run *inline in the driver* by re-attaching the
    same segment — the solve is never repeated.  The driver owns the
    segment and unlinks it in a ``finally``, so neither worker kills nor
    driver exceptions leak ``/dev/shm`` entries.

    Falls back to :func:`run_shards` (same return contract) when the batch
    is not snapshot-eligible — mixed programs/algorithms/envelopes,
    concurrent queries, ``jobs <= 1``, unpicklable batch — or when the
    solve/freeze itself fails (e.g. the session runs the dict store).
    Returns ``(results, mode, reason)`` with mode ``"snapshot-pool"`` on
    the fan-out path.
    """
    queries = list(queries)
    if not queries:
        return [], "sequential", None
    reason = _snapshot_eligible(queries)
    if reason is None and (jobs <= 1 or len(queries) <= 1):
        reason = "nothing to fan out"
    if reason is None and not _group_is_picklable(queries):
        reason = "batch is not picklable"
    if reason is not None:
        results, mode, fallback = run_shards(
            queries,
            jobs=jobs,
            start_method=start_method,
            shard_timeout=shard_timeout,
            fault_plan=fault_plan,
        )
        return results, mode, fallback or reason

    from ..api.session import SessionSpec

    head = queries[0]
    solve_started = time.perf_counter()
    try:
        # The snapshot handle carries no slice pedigree (freeze() refuses
        # sliced sessions), so the fan-out path optimizes without slicing;
        # workers resolve string specs against the frozen optimized CFG.
        level, _ = _group_optimize(queries)
        session = SessionSpec(
            program=head.program,
            default_algorithm=head.algorithm,
            limits=head.limits,
            optimize=level,
        ).open()
        try:
            session.solve(head.algorithm)
            handle = session.freeze(head.algorithm)
        finally:
            session.close()
    except Exception as exc:  # noqa: BLE001 — no snapshot support: classic path
        results, mode, fallback = run_shards(
            queries,
            jobs=jobs,
            start_method=start_method,
            shard_timeout=shard_timeout,
            fault_plan=fault_plan,
        )
        return (
            results,
            mode,
            fallback or f"solve/freeze failed: {type(exc).__name__}: {exc}",
        )
    solve_seconds = time.perf_counter() - solve_started

    chunks = _chunk(range(len(queries)), jobs)
    per_chunk: Dict[int, List[ShardResult]] = {}
    recovered_inline = 0
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures import TimeoutError as FutureTimeout
        from concurrent.futures.process import BrokenProcessPool

        import multiprocessing

        context = multiprocessing.get_context(start_method) if start_method else None
        try:
            pool = ProcessPoolExecutor(max_workers=len(chunks), mp_context=context)
        except Exception:  # noqa: BLE001 — no pool: every chunk runs inline
            pool = None
        futures: Dict[int, object] = {}
        if pool is not None:
            try:
                for ci, chunk in enumerate(chunks):
                    futures[ci] = pool.submit(
                        _snapshot_pool_entry,
                        handle,
                        [queries[i] for i in chunk],
                        fault_plan,
                    )
            except Exception:  # noqa: BLE001 — pool broke during submission
                pass
        abandoned = False
        for ci, chunk in enumerate(chunks):
            future = futures.get(ci)
            outcome: Optional[List[ShardResult]] = None
            if future is not None and not abandoned:
                try:
                    outcome = future.result(timeout=shard_timeout)  # type: ignore[attr-defined]
                except (BrokenProcessPool, FutureTimeout):
                    # Dead or stuck worker — and, for BrokenProcessPool, a
                    # condemned pool whose remaining futures will all fail.
                    # The solve is already banked in the segment: recover
                    # inline, copy-free, and stop waiting on this pool.
                    abandoned = True
                except Exception:  # noqa: BLE001 — transport/entry failure
                    outcome = None
            if outcome is None:
                outcome = _snapshot_pool_entry(handle, [queries[i] for i in chunk])
                recovered_inline += 1
            per_chunk[ci] = outcome
        if pool is not None:
            if abandoned:
                _terminate_pool(pool)
            else:
                pool.shutdown(wait=True)
    finally:
        handle.unlink()

    ordered: List[ShardResult] = [None] * len(queries)  # type: ignore[list-item]
    for ci, chunk in enumerate(chunks):
        for index, shard in zip(chunk, per_chunk[ci]):
            ordered[index] = shard
    # The solve/freeze is shared cost; like the classic grouped path, the
    # first successful shard carries its wall time and attribution.
    for shard in ordered:
        if shard.ok:
            shard.reused_solve = False
            if shard.result is not None:
                shard.result.details["reused_solve"] = False
            shard.elapsed_seconds += solve_seconds
            break
    reason = (
        f"{recovered_inline} chunk(s) re-attached inline after worker failure"
        if recovered_inline
        else None
    )
    return ordered, "snapshot-pool", reason


def _group_key(query: BatchQuery, index: int):
    """Queries land in one group iff they can share an analysis session.

    Concurrent queries use a different engine (no session support) and stay
    singletons, as does anything whose program cannot be compared cheaply:
    parsed programs group by object identity, source texts by content.
    """
    if query.concurrent:
        return ("solo", index)
    program_key = query.program if isinstance(query.program, str) else id(query.program)
    # Limits are frozen (hashable) and govern the shared session, so queries
    # under different envelopes must not share one; likewise the optimize
    # level, which decides which program the session compiles.
    return ("session", program_key, query.algorithm, query.limits, query.optimize)


def group_queries(queries: Sequence[BatchQuery]) -> List[List[int]]:
    """Partition query indices into session-shareable groups (order kept).

    Group order follows first appearance; indices inside a group keep
    submission order, so flattening group results in group-then-member
    order never reorders a batch that was already grouped.
    """
    groups: Dict[object, List[int]] = {}
    for index, query in enumerate(queries):
        groups.setdefault(_group_key(query, index), []).append(index)
    return list(groups.values())


def _group_is_picklable(queries: Sequence[BatchQuery]) -> bool:
    """Feasibility probe: can this shard group cross a process boundary?"""
    try:
        pickle.dumps(list(queries))
        return True
    except Exception:
        return False


def _pool_entry(
    queries: List[BatchQuery], fault_plan: Optional[faults.FaultPlan] = None
) -> List[ShardResult]:
    """Pool worker entry point: install the fault plan, run the group.

    Workers are reused across groups, so the plan is (re)installed on every
    call; ``worker=True`` marks the process as a pool worker, which is the
    only place injected kills are allowed to fire.
    """
    if fault_plan is not None:
        faults.install(fault_plan, worker=True)
    return run_shard_group(queries)


def _mark_retried(results: List[ShardResult], attempts: int) -> List[ShardResult]:
    """Record that a group only completed after ``attempts`` re-runs."""
    if attempts > 0:
        for shard in results:
            shard.retries = attempts
            if shard.status == "ok":
                shard.status = "retried"
    return results


def _timeout_results(
    queries: Sequence[BatchQuery], timeout_seconds: float, attempts: int
) -> List[ShardResult]:
    """Quarantine a group whose worker exceeded the driver-side timeout."""
    detail = {
        "type": "AnalysisTimeout",
        "resource": "wall-clock",
        "consumed": timeout_seconds,
        "budget": timeout_seconds,
    }
    return [
        ShardResult(
            name=query.name,
            error=(
                f"AnalysisTimeout: shard exceeded the driver-side "
                f"{timeout_seconds:g}s timeout"
            ),
            elapsed_seconds=timeout_seconds if index == 0 else 0.0,
            expected=query.expected,
            status="timeout",
            retries=attempts,
            error_detail=dict(detail),
        )
        for index, query in enumerate(queries)
    ]


def _crashed_results(queries: Sequence[BatchQuery], attempts: int) -> List[ShardResult]:
    """Quarantine a group whose worker died on every attempt."""
    return [
        ShardResult(
            name=query.name,
            error=(
                "BrokenProcessPool: worker process died running this shard "
                f"({attempts} attempt(s))"
            ),
            expected=query.expected,
            status="crashed",
            retries=max(0, attempts - 1),
        )
        for query in queries
    ]


def _terminate_pool(pool) -> None:
    """Tear a pool down without waiting on stuck or dead workers."""
    processes = getattr(pool, "_processes", None)
    for process in list((processes or {}).values()):
        try:
            process.terminate()
        except Exception:  # noqa: BLE001 — already-dead workers are fine
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _run_pool_groups(
    grouped: Dict[int, List[BatchQuery]],
    jobs: int,
    context,
    shard_timeout: Optional[float],
    max_retries: int,
    retry_backoff: float,
    fault_plan: Optional[faults.FaultPlan],
) -> Dict[int, List[ShardResult]]:
    """Run picklable groups over a process pool with crash containment.

    Returns ``{group index: [ShardResult, ...]}`` for every group in
    ``grouped``.  Failure handling, per round:

    * A dead worker (``BrokenProcessPool``) fails every in-flight future of
      the pool; finished groups keep their results, the rest are re-run in a
      rebuilt pool after a bounded exponential backoff.  Once the
      ``max_retries`` shared-pool rounds are spent, remaining groups run
      one-per-pool; only a group that crashes *alone* in its own pool is
      quarantined as structured ``"crashed"`` results — a shared-round crash
      is ambiguous (the broken pool fails innocents alongside the culprit)
      and never convicts.
    * A group exceeding the driver-side ``shard_timeout`` is quarantined as
      ``"timeout"`` results and its (presumed stuck) pool is torn down;
      unfinished siblings are re-run, finished ones are harvested first.

    A round that neither completes nor convicts any group raises, which the
    caller turns into the whole-batch sequential fallback.
    """
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures import TimeoutError as FutureTimeout
    from concurrent.futures.process import BrokenProcessPool

    completed: Dict[int, List[ShardResult]] = {}
    crash_counts: Dict[int, int] = {index: 0 for index in grouped}
    pending: List[int] = sorted(grouped)
    round_number = 0
    while pending:
        round_number += 1
        attempts_so_far = round_number - 1
        # After max_retries shared rounds, isolate: one group per pool.
        isolate = round_number > max_retries + 1
        batches = [[index] for index in pending] if isolate else [pending]
        next_pending: List[int] = []
        progress = False
        crashed_this_round = False
        for batch in batches:
            pool = ProcessPoolExecutor(
                max_workers=min(jobs, len(batch)), mp_context=context
            )
            pool_closed = False
            try:
                futures: Dict[object, int] = {}
                try:
                    for index in batch:
                        futures[pool.submit(_pool_entry, grouped[index], fault_plan)] = index
                except Exception:  # noqa: BLE001 — pool broke during submission
                    crashed_this_round = True
                crashed_now: List[int] = []
                abandon = False
                for future, index in futures.items():
                    if abandon:
                        # The pool is condemned (stuck or broken): harvest what
                        # finished, requeue the rest without penalty.
                        if future.done():  # type: ignore[attr-defined]
                            try:
                                completed[index] = _mark_retried(
                                    future.result(), attempts_so_far  # type: ignore[attr-defined]
                                )
                                progress = True
                            except BrokenProcessPool:
                                crashed_now.append(index)
                            except Exception as exc:  # noqa: BLE001
                                completed[index] = [
                                    _failure_shard(query, exc, 0.0)
                                    for query in grouped[index]
                                ]
                                progress = True
                        else:
                            next_pending.append(index)
                        continue
                    try:
                        completed[index] = _mark_retried(
                            future.result(timeout=shard_timeout),  # type: ignore[attr-defined]
                            attempts_so_far,
                        )
                        progress = True
                    except FutureTimeout:
                        completed[index] = _timeout_results(
                            grouped[index], shard_timeout or 0.0, attempts_so_far
                        )
                        progress = True
                        abandon = True
                    except BrokenProcessPool:
                        crashed_now.append(index)
                        abandon = True
                    except Exception as exc:  # noqa: BLE001 — transport/entry failure
                        completed[index] = [
                            _failure_shard(query, exc, 0.0) for query in grouped[index]
                        ]
                        progress = True
                submitted = set(futures.values())
                for index in batch:
                    if index not in submitted and index not in completed:
                        next_pending.append(index)
                if abandon or crashed_this_round:
                    _terminate_pool(pool)
                else:
                    pool.shutdown(wait=True)
                pool_closed = True
            finally:
                if not pool_closed:
                    # A driver-side interrupt (SIGTERM/SIGINT, see run_shards)
                    # or an unexpected error must not leave worker processes
                    # orphaned behind a pool nobody will ever join.
                    _terminate_pool(pool)
            for index in crashed_now:
                crash_counts[index] += 1
                progress = True
                crashed_this_round = True
                # A crash in a shared pool is ambiguous — BrokenProcessPool
                # fails every in-flight future, so innocents crash alongside
                # the culprit.  Only a group that crashed ALONE in its own
                # pool (an isolation round) is convicted; shared-round
                # crashes are retried until the isolation rounds begin.
                if isolate:
                    completed[index] = _crashed_results(
                        grouped[index], crash_counts[index]
                    )
                else:
                    next_pending.append(index)
        if not progress:
            raise RuntimeError("process pool made no progress on the batch")
        pending = sorted(set(next_pending) - set(completed))
        if pending and crashed_this_round:
            time.sleep(min(retry_backoff * (2 ** (round_number - 1)), 2.0))
    return completed


def run_shards(
    queries: Sequence[BatchQuery],
    jobs: int = 1,
    start_method: Optional[str] = None,
    group_by_program: bool = True,
    shard_timeout: Optional[float] = None,
    max_retries: int = 2,
    retry_backoff: float = 0.05,
    fault_plan: Optional[faults.FaultPlan] = None,
) -> Tuple[List[ShardResult], str, Optional[str]]:
    """Run a batch of queries, fanning out over ``jobs`` worker processes.

    With ``group_by_program`` (the default), queries sharing a program and
    algorithm form one scheduling unit served by a single analysis session
    (see :func:`run_shard_group`); the pool then maps over *groups*, and
    the returned results are flattened back into submission order.

    Fault tolerance (``jobs > 1``): a dead pool worker triggers a pool
    rebuild and a bounded-backoff retry of only the unfinished groups
    (completed :class:`ShardResult` lists are preserved, never re-run);
    groups still crashing after ``max_retries`` shared rounds are re-run in
    isolation (one per pool) and quarantined as structured ``"crashed"``
    results only if they crash there too; a group exceeding the driver-side
    ``shard_timeout`` is quarantined as ``"timeout"`` results — in both
    cases the rest of the batch completes normally.  Groups that cannot be pickled run inline in
    the driver instead of demoting the whole batch to the sequential
    fallback.  ``fault_plan`` ships a deterministic
    :class:`~repro.testing.faults.FaultPlan` into the workers (tests/CI
    only).

    Returns ``(results, mode, fallback_reason)``: ``results`` preserves
    query order; ``mode`` records how the batch actually ran —
    ``"process-pool"``, ``"sequential"`` (requested with ``jobs <= 1`` or a
    trivial batch) or ``"sequential-fallback"`` (pool unavailable);
    ``fallback_reason`` names the cause of a fallback (unpicklable batch,
    the exception that broke the pool, or a note that some unpicklable
    groups ran inline) and is None otherwise.
    """
    queries = list(queries)
    if group_by_program:
        groups = group_queries(queries)
    else:
        groups = [[index] for index in range(len(queries))]

    def flatten(per_group: Sequence[List[ShardResult]]) -> List[ShardResult]:
        ordered: List[ShardResult] = [None] * len(queries)  # type: ignore[list-item]
        for indices, results in zip(groups, per_group):
            for index, shard in zip(indices, results):
                ordered[index] = shard
        return ordered

    def run_inline(group_indices: Sequence[int]) -> Dict[int, List[ShardResult]]:
        """Run groups in the driver process, with any fault plan installed
        (kills stay disabled outside pool workers)."""
        if fault_plan is not None:
            faults.install(fault_plan)
        try:
            return {
                gi: run_shard_group([queries[i] for i in groups[gi]])
                for gi in group_indices
            }
        finally:
            if fault_plan is not None:
                faults.clear()

    def sequential() -> List[ShardResult]:
        per_group = run_inline(range(len(groups)))
        return flatten([per_group[gi] for gi in range(len(groups))])

    if jobs <= 1 or len(groups) <= 1:
        reason = None
        if jobs > 1 and len(queries) > 1:
            # The caller asked for a pool but grouping collapsed the batch
            # into one session; say so rather than silently dropping the
            # fan-out (group_by_program=False / --no-group restores it).
            reason = (
                "all queries grouped onto one session; pass "
                "group_by_program=False to fan out instead"
            )
        return sequential(), "sequential", reason

    grouped_queries = [[queries[i] for i in group] for group in groups]
    pool_groups: List[int] = []
    inline_groups: List[int] = []
    for gi, group_batch in enumerate(grouped_queries):
        (pool_groups if _group_is_picklable(group_batch) else inline_groups).append(gi)
    if not pool_groups:
        return sequential(), "sequential-fallback", "batch is not picklable"
    # While a pool is up, SIGTERM must run the same cleanup path SIGINT gets
    # for free (KeyboardInterrupt -> the pool's finally -> _terminate_pool);
    # the default SIGTERM disposition would kill the driver and orphan every
    # worker mid-query.  Signal handlers are a main-thread-only facility, so
    # embedders driving run_shards from another thread keep their own
    # handling.
    import signal
    import threading

    previous_sigterm = None
    if threading.current_thread() is threading.main_thread():
        def _sigterm_to_interrupt(signum, frame):  # pragma: no cover — exercised via subprocess test
            raise KeyboardInterrupt(f"signal {signum}")

        try:
            previous_sigterm = signal.signal(signal.SIGTERM, _sigterm_to_interrupt)
        except (ValueError, OSError):  # platform without SIGTERM delivery
            previous_sigterm = None
    try:
        import multiprocessing

        context = multiprocessing.get_context(start_method) if start_method else None
        per_group_map = _run_pool_groups(
            {gi: grouped_queries[gi] for gi in pool_groups},
            jobs=jobs,
            context=context,
            shard_timeout=shard_timeout,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            fault_plan=fault_plan,
        )
    except Exception as exc:  # pool start-up or transport failure: degrade, don't die
        reason = f"process pool failed: {type(exc).__name__}: {exc}"
        return sequential(), "sequential-fallback", reason
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
    if inline_groups:
        per_group_map.update(run_inline(inline_groups))
    fallback_reason = None
    if inline_groups:
        fallback_reason = (
            f"{len(inline_groups)} unpicklable group(s) ran inline in the driver"
        )
    return (
        flatten([per_group_map[gi] for gi in range(len(groups))]),
        "process-pool",
        fallback_reason,
    )
